"""Verilog source generation from AST nodes.

Round-trips the subset accepted by :mod:`repro.hdl.parser`; instrumentation
tools use it both to emit debuggable instrumented designs and to measure
"lines of generated Verilog" (paper §6.3).
"""

from __future__ import annotations

from . import ast_nodes as ast

_INDENT = "    "


def _escape(text):
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\t", "\\t")
    )


def generate_expression(expr):
    """Render an expression node as Verilog source text."""
    if isinstance(expr, ast.Number):
        return str(expr)
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.Index):
        return "%s[%s]" % (generate_expression(expr.var), generate_expression(expr.index))
    if isinstance(expr, ast.PartSelect):
        return "%s[%s:%s]" % (
            generate_expression(expr.var),
            generate_expression(expr.msb),
            generate_expression(expr.lsb),
        )
    if isinstance(expr, ast.IndexedPartSelect):
        return "%s[%s %s %s]" % (
            generate_expression(expr.var),
            generate_expression(expr.base),
            "+:" if expr.ascending else "-:",
            generate_expression(expr.width),
        )
    if isinstance(expr, ast.Concat):
        return "{%s}" % ", ".join(generate_expression(p) for p in expr.parts)
    if isinstance(expr, ast.Repeat):
        return "{%s{%s}}" % (
            generate_expression(expr.count),
            generate_expression(expr.expr),
        )
    if isinstance(expr, ast.UnaryOp):
        return "%s(%s)" % (expr.op, generate_expression(expr.operand))
    if isinstance(expr, ast.BinaryOp):
        return "(%s %s %s)" % (
            generate_expression(expr.left),
            expr.op,
            generate_expression(expr.right),
        )
    if isinstance(expr, ast.Ternary):
        return "(%s ? %s : %s)" % (
            generate_expression(expr.cond),
            generate_expression(expr.iftrue),
            generate_expression(expr.iffalse),
        )
    if isinstance(expr, ast.SizeCast):
        return "%d'(%s)" % (expr.width, generate_expression(expr.expr))
    raise TypeError("cannot generate code for %r" % (expr,))


def _width_text(width):
    if width is None:
        return ""
    return "[%s:%s] " % (
        generate_expression(width.msb),
        generate_expression(width.lsb),
    )


def generate_statement(stmt, indent=1):
    """Render a procedural statement as a list of indented source lines."""
    pad = _INDENT * indent
    if isinstance(stmt, ast.Block):
        lines = [pad + "begin"]
        for inner in stmt.statements:
            lines.extend(generate_statement(inner, indent + 1))
        lines.append(pad + "end")
        return lines
    if isinstance(stmt, ast.NonblockingAssign):
        return [
            pad
            + "%s <= %s;" % (generate_expression(stmt.lhs), generate_expression(stmt.rhs))
        ]
    if isinstance(stmt, ast.BlockingAssign):
        return [
            pad
            + "%s = %s;" % (generate_expression(stmt.lhs), generate_expression(stmt.rhs))
        ]
    if isinstance(stmt, ast.If):
        then_stmt = stmt.then_stmt
        if stmt.else_stmt is not None and isinstance(then_stmt, ast.If):
            # Dangling-else hazard: an unbracketed nested if would
            # capture this statement's else on re-parse.
            then_stmt = ast.Block(statements=[then_stmt])
        lines = [pad + "if (%s)" % generate_expression(stmt.cond)]
        lines.extend(generate_statement(then_stmt, indent + 1))
        if stmt.else_stmt is not None:
            lines.append(pad + "else")
            lines.extend(generate_statement(stmt.else_stmt, indent + 1))
        return lines
    if isinstance(stmt, ast.Case):
        keyword = "casez" if stmt.casez else "case"
        lines = [pad + "%s (%s)" % (keyword, generate_expression(stmt.subject))]
        for item in stmt.items:
            if item.labels:
                label = ", ".join(generate_expression(l) for l in item.labels)
            else:
                label = "default"
            lines.append(pad + _INDENT + label + ":")
            lines.extend(generate_statement(item.stmt, indent + 2))
        lines.append(pad + "endcase")
        return lines
    if isinstance(stmt, ast.For):
        header = "for (%s = %s; %s; %s = %s)" % (
            generate_expression(stmt.init.lhs),
            generate_expression(stmt.init.rhs),
            generate_expression(stmt.cond),
            generate_expression(stmt.step.lhs),
            generate_expression(stmt.step.rhs),
        )
        return [pad + header] + generate_statement(stmt.body, indent + 1)
    if isinstance(stmt, ast.Display):
        args = "".join(", " + generate_expression(a) for a in stmt.args)
        return [pad + '$display("%s"%s);' % (_escape(stmt.format), args)]
    if isinstance(stmt, ast.Finish):
        return [pad + "$finish;"]
    raise TypeError("cannot generate code for %r" % (stmt,))


def _generate_item(item):
    if isinstance(item, ast.Declaration):
        text = item.kind.value
        if item.signed:
            text += " signed"
        if item.width is not None and item.kind is not ast.NetKind.INTEGER:
            text += " " + _width_text(item.width).rstrip()
        text += " " + item.name
        if item.array is not None:
            text += " [%s:%s]" % (
                generate_expression(item.array.msb),
                generate_expression(item.array.lsb),
            )
        return [_INDENT + text + ";"]
    if isinstance(item, ast.ParameterDecl):
        keyword = "localparam" if item.local else "parameter"
        return [
            _INDENT
            + "%s %s = %s;" % (keyword, item.name, generate_expression(item.value))
        ]
    if isinstance(item, ast.ContinuousAssign):
        return [
            _INDENT
            + "assign %s = %s;"
            % (generate_expression(item.lhs), generate_expression(item.rhs))
        ]
    if isinstance(item, ast.Always):
        sens_parts = []
        for sens in item.sens:
            if sens.edge is ast.Edge.STAR and sens.signal is None:
                sens_parts.append("*")
            elif sens.edge is ast.Edge.STAR:
                sens_parts.append(sens.signal)
            else:
                sens_parts.append("%s %s" % (sens.edge.value, sens.signal))
        lines = [_INDENT + "always @(%s)" % " or ".join(sens_parts)]
        lines.extend(generate_statement(item.body, 2))
        return lines
    if isinstance(item, ast.Instance):
        lines = [_INDENT + item.module_name]
        if item.params:
            overrides = ", ".join(
                ".%s(%s)" % (p.name, generate_expression(p.value)) for p in item.params
            )
            lines[0] += " #(%s)" % overrides
        lines[0] += " " + item.instance_name + " ("
        for position, conn in enumerate(item.ports):
            expr = generate_expression(conn.expr) if conn.expr is not None else ""
            comma = "," if position + 1 < len(item.ports) else ""
            lines.append(_INDENT * 2 + ".%s(%s)%s" % (conn.port, expr, comma))
        lines.append(_INDENT + ");")
        return lines
    raise TypeError("cannot generate code for %r" % (item,))


def generate_module(module):
    """Render a :class:`Module` as Verilog source text."""
    lines = []
    header = "module " + module.name
    if module.params:
        overrides = ", ".join(
            "parameter %s = %s" % (p.name, generate_expression(p.value))
            for p in module.params
        )
        header += " #(%s)" % overrides
    header += " ("
    lines.append(header)
    port_names = {p.name for p in module.ports}
    for position, port in enumerate(module.ports):
        text = port.direction.value
        if port.kind is ast.NetKind.REG:
            text += " reg"
        if port.signed:
            text += " signed"
        if port.width is not None:
            text += " " + _width_text(port.width).rstrip()
        text += " " + port.name
        comma = "," if position + 1 < len(module.ports) else ""
        lines.append(_INDENT + text + comma)
    lines.append(");")
    for item in module.items:
        # Skip the implicit re-declaration of ANSI ports.
        if isinstance(item, ast.Declaration) and item.name in port_names:
            continue
        lines.extend(_generate_item(item))
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def generate_source(source):
    """Render a :class:`Source` (all modules) as Verilog text."""
    return "\n".join(generate_module(m) for m in source.modules)
