"""HDL front end: lexer, parser, AST, code generation, elaboration.

Typical usage::

    from repro.hdl import parse, elaborate, generate_module

    source = parse(verilog_text)
    design = elaborate(source, top="my_top")
    print(generate_module(design.top))
"""

from . import ast_nodes as ast
from .ast_nodes import ast_diff, ast_equal
from .codegen import (
    generate_expression,
    generate_module,
    generate_source,
    generate_statement,
)
from .elaborate import DEFAULT_BLACKBOXES, Design, ElaborationError, elaborate
from .lexer import LexerError, Token, tokenize
from .parser import ParseError, parse, parse_expression, parse_module, parse_statement
from .transform import (
    NotConstantError,
    const_eval,
    fold_constants,
    map_expression,
    map_statement,
    rename_identifiers,
    substitute,
    try_const_eval,
)

__all__ = [
    "ast",
    "ast_equal",
    "ast_diff",
    "parse",
    "parse_module",
    "parse_expression",
    "parse_statement",
    "ParseError",
    "tokenize",
    "Token",
    "LexerError",
    "generate_expression",
    "generate_statement",
    "generate_module",
    "generate_source",
    "elaborate",
    "Design",
    "ElaborationError",
    "DEFAULT_BLACKBOXES",
    "const_eval",
    "try_const_eval",
    "fold_constants",
    "substitute",
    "map_expression",
    "map_statement",
    "rename_identifiers",
    "NotConstantError",
]
