"""Recursive-descent parser for the synthesizable Verilog subset.

The grammar covers what the paper's testbed designs and generated
instrumentation need: ANSI-style modules with parameters, vector and memory
declarations, continuous assigns, ``always`` blocks (edge-triggered and
combinational), if/case/casez/for statements, blocking and nonblocking
assignments, ``$display``/``$finish``, module instantiation with named
connections, and the SystemVerilog size-cast ``N'(expr)``.

Error handling is *recovering*: every syntax error becomes a
:class:`repro.diag.Diagnostic` (stable ``P02xx`` rule code, span with
file/line/column) and the parser re-synchronizes at the next ``;``,
``end``, ``endcase`` or ``endmodule`` — panic-mode recovery — so a
single run reports every error in a file. With no caller-provided sink,
:func:`parse` keeps its historical contract and raises
:class:`ParseError` (carrying all collected diagnostics) once parsing
finishes with errors; with a :class:`~repro.diag.DiagnosticSink` it
returns the partial AST and leaves the reporting to the caller.

Entry point: :func:`parse` (text -> :class:`repro.hdl.ast_nodes.Source`).
"""

from __future__ import annotations

from ..diag.model import DiagnosticSink, SourceSpan
from . import ast_nodes as ast
from .lexer import Token, tokenize


class ParseError(ValueError):
    """Raised on input the subset grammar does not accept.

    ``code`` is the stable rule code of the first error and
    ``diagnostics`` every structured finding from the recovering run.
    """

    def __init__(self, message, code="P0201", diagnostics=None):
        super().__init__(message)
        self.code = code
        self.diagnostics = list(diagnostics or [])


class _Recover(Exception):
    """Internal: unwind to the nearest synchronization point."""


_UNARY_OPS = frozenset(["~", "!", "-", "+", "&", "|", "^", "~&", "~|", "~^"])

# Binary operator precedence levels, lowest binding first.
_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^", "~^", "^~"],
    ["&"],
    ["==", "!=", "===", "!=="],
    ["<", "<=", ">", ">="],
    ["<<", ">>", "<<<", ">>>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class _Parser:
    def __init__(self, tokens, filename="<input>", sink=None, eof_line=None):
        self._tokens = tokens
        self._pos = 0
        self._filename = filename
        self._sink = sink if sink is not None else DiagnosticSink()
        if tokens:
            last = tokens[-1]
            self._eof_token = Token(
                "eof", "<eof>", last.lineno, col=last.col + len(last.text)
            )
        else:
            # Empty token list (blank or comment-only input): the EOF
            # token still points at the last real source line, not 0.
            self._eof_token = Token("eof", "<eof>", eof_line or 1, col=1)

    # -- token helpers ----------------------------------------------------

    def _peek(self, ahead=0):
        index = self._pos + ahead
        if index < len(self._tokens):
            return self._tokens[index]
        return self._eof_token

    def _next(self):
        token = self._peek()
        self._pos += 1
        return token

    def _at(self, kind, text=None, ahead=0):
        token = self._peek(ahead)
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind, text=None):
        if self._at(kind, text):
            return self._next()
        return None

    def _expect(self, kind, text=None):
        token = self._peek()
        if not self._at(kind, text):
            self._error(
                "P0201",
                "expected %r, got %r" % (text or kind, token.text),
                token,
            )
        return self._next()

    # -- diagnostics and recovery -----------------------------------------

    def _span(self, token):
        return SourceSpan(file=self._filename, line=token.lineno, col=token.col)

    def _emit_error(self, code, message, token, hint=""):
        """Record an error diagnostic without unwinding."""
        return self._sink.error(code, message, self._span(token), hint=hint)

    def _error(self, code, message, token=None, hint=""):
        """Record an error diagnostic and unwind to the nearest sync point."""
        self._emit_error(code, message, token or self._peek(), hint=hint)
        raise _Recover()

    def _sync(self, stop_before=()):
        """Panic-mode resync: skip tokens until after a ``;`` (consumed),
        before a keyword in *stop_before*, or end of input."""
        while not self._at("eof"):
            token = self._peek()
            if token.kind == "keyword" and token.text in stop_before:
                return
            self._next()
            if token.kind == "op" and token.text == ";":
                return

    def _recovering(self, parse_fn, stop_before):
        """Run *parse_fn*; on a syntax error, resync and return None.

        Guarantees forward progress: if the failed attempt consumed no
        tokens, one token is skipped before resynchronizing, so
        recovery loops always terminate.
        """
        before = self._pos
        try:
            return parse_fn()
        except _Recover:
            if self._pos == before and not self._at("eof"):
                self._next()
            self._sync(stop_before=stop_before)
            return None

    def _give_up(self):
        """True once the sink overflowed its error budget."""
        return self._sink.overflowed

    # -- top level ---------------------------------------------------------

    def parse_source(self):
        modules = []

        def sync_to_module():
            while not self._at("eof") and not self._at("keyword", "module"):
                self._next()

        while not self._at("eof") and not self._give_up():
            before = self._pos
            try:
                modules.append(self.parse_module())
            except _Recover:
                if self._pos == before and not self._at("eof"):
                    self._next()
                sync_to_module()
        if self._give_up():
            self._sink.note(
                "P0211",
                "too many syntax errors (%d); giving up on the rest of %s"
                % (self._sink.error_count, self._filename),
                self._span(self._peek()),
            )
        return ast.Source(modules=modules)

    def parse_module(self):
        self._expect("keyword", "module")
        name = self._expect("ident").text
        params = []
        if self._accept("op", "#"):
            self._expect("op", "(")
            while not self._at("op", ")") and not self._at("eof"):
                self._accept("keyword", "parameter")
                pname = self._expect("ident").text
                self._expect("op", "=")
                params.append(
                    ast.ParameterDecl(name=pname, value=self.parse_expression())
                )
                if not self._accept("op", ","):
                    break
            self._expect("op", ")")
        ports = []
        self._expect("op", "(")
        while not self._at("op", ")") and not self._at("eof"):
            ports.append(self._parse_port())
            if not self._accept("op", ","):
                break
        self._expect("op", ")")
        self._expect("op", ";")
        items = []
        while not self._at("keyword", "endmodule"):
            if self._at("eof") or self._give_up():
                self._emit_error(
                    "P0210",
                    "missing 'endmodule' before end of input "
                    "(module %r)" % name,
                    self._peek(),
                )
                break
            parsed = self._recovering(
                self._parse_item, stop_before=("endmodule",)
            )
            if parsed is not None:
                items.extend(parsed)
        self._accept("keyword", "endmodule")
        return self._with_port_declarations(
            ast.Module(name=name, params=params, ports=ports, items=items)
        )

    @staticmethod
    def _with_port_declarations(module):
        """Add implicit Declarations for ports not declared in the body."""
        declared = {d.name for d in module.declarations()}
        implicit = []
        for port in module.ports:
            if port.name in declared:
                continue
            implicit.append(
                ast.Declaration(
                    kind=port.kind,
                    name=port.name,
                    width=port.width,
                    signed=port.signed,
                )
            )
        module.items = implicit + module.items
        return module

    def _parse_port(self):
        token = self._next()
        if token.text not in ("input", "output", "inout"):
            self._error(
                "P0204",
                "expected port direction, got %r" % token.text,
                token,
                hint="ports are declared 'input wire x' / 'output reg y'",
            )
        direction = ast.PortDirection(token.text)
        kind = ast.NetKind.WIRE
        if self._at("keyword", "reg") or self._at("keyword", "wire"):
            kind = ast.NetKind(self._next().text)
        signed = bool(self._accept("keyword", "signed"))
        width = self._parse_optional_width()
        name = self._expect("ident").text
        return ast.Port(
            direction=direction, kind=kind, name=name, width=width, signed=signed
        )

    def _parse_optional_width(self):
        if not self._at("op", "["):
            return None
        self._next()
        msb = self.parse_expression()
        self._expect("op", ":")
        lsb = self.parse_expression()
        self._expect("op", "]")
        return ast.Width(msb=msb, lsb=lsb)

    # -- module items -------------------------------------------------------

    def _parse_item(self):
        token = self._peek()
        if token.kind == "keyword":
            if token.text in ("reg", "wire", "integer"):
                return self._parse_declaration()
            if token.text in ("parameter", "localparam"):
                return self._parse_parameter_item()
            if token.text == "assign":
                return [self._parse_continuous_assign()]
            if token.text == "always":
                return [self._parse_always()]
        if token.kind == "ident":
            return [self._parse_instance()]
        self._error(
            "P0202",
            "unexpected token %r in module body" % token.text,
            token,
        )

    def _parse_declaration(self):
        start = self._peek()
        lineno, col = start.lineno, start.col
        kind = ast.NetKind(self._next().text)
        signed = bool(self._accept("keyword", "signed"))
        width = None if kind is ast.NetKind.INTEGER else self._parse_optional_width()
        items = []
        while True:
            name = self._expect("ident").text
            array = self._parse_optional_width()
            decl = ast.Declaration(
                kind=kind,
                name=name,
                width=width,
                array=array,
                signed=signed,
                lineno=lineno,
                col=col,
            )
            items.append(decl)
            if self._accept("op", "="):
                if kind is not ast.NetKind.WIRE:
                    self._error(
                        "P0205",
                        "initializer only allowed on wire, not %s %s"
                        % (kind.value, name),
                        start,
                        hint="initialize regs inside an always block",
                    )
                items.append(
                    ast.ContinuousAssign(
                        lhs=ast.Identifier(name=name),
                        rhs=self.parse_expression(),
                        lineno=lineno,
                        col=col,
                    )
                )
            if not self._accept("op", ","):
                break
        self._expect("op", ";")
        return items

    def _parse_parameter_item(self):
        local = self._next().text == "localparam"
        items = []
        while True:
            name = self._expect("ident").text
            self._expect("op", "=")
            items.append(
                ast.ParameterDecl(name=name, value=self.parse_expression(), local=local)
            )
            if not self._accept("op", ","):
                break
        self._expect("op", ";")
        return items

    def _parse_continuous_assign(self):
        token = self._expect("keyword", "assign")
        lhs = self.parse_expression()
        self._expect("op", "=")
        rhs = self.parse_expression()
        self._expect("op", ";")
        return ast.ContinuousAssign(
            lhs=lhs, rhs=rhs, lineno=token.lineno, col=token.col
        )

    def _parse_always(self):
        token = self._expect("keyword", "always")
        self._expect("op", "@")
        self._expect("op", "(")
        sens = []
        if self._accept("op", "*"):
            sens.append(ast.SensItem(edge=ast.Edge.STAR))
        else:
            while True:
                if self._accept("keyword", "posedge"):
                    edge = ast.Edge.POSEDGE
                elif self._accept("keyword", "negedge"):
                    edge = ast.Edge.NEGEDGE
                else:
                    # Plain signal in sensitivity list: treat as combinational.
                    edge = ast.Edge.STAR
                signal = None
                if edge is not ast.Edge.STAR or self._at("ident"):
                    signal = self._expect("ident").text
                sens.append(ast.SensItem(edge=edge, signal=signal))
                if not (self._accept("keyword", "or") or self._accept("op", ",")):
                    break
        self._expect("op", ")")
        body = self.parse_statement()
        return ast.Always(
            sens=sens, body=body, lineno=token.lineno, col=token.col
        )

    def _parse_instance(self):
        start = self._peek()
        module_name = self._expect("ident").text
        params = []
        if self._accept("op", "#"):
            self._expect("op", "(")
            while not self._at("op", ")") and not self._at("eof"):
                self._expect("op", ".")
                pname = self._expect("ident").text
                self._expect("op", "(")
                params.append(
                    ast.ParamOverride(name=pname, value=self.parse_expression())
                )
                self._expect("op", ")")
                if not self._accept("op", ","):
                    break
            self._expect("op", ")")
        instance_name = self._expect("ident").text
        ports = []
        self._expect("op", "(")
        while not self._at("op", ")") and not self._at("eof"):
            self._expect("op", ".")
            port_name = self._expect("ident").text
            self._expect("op", "(")
            expr = None
            if not self._at("op", ")"):
                expr = self.parse_expression()
            self._expect("op", ")")
            ports.append(ast.PortConnection(port=port_name, expr=expr))
            if not self._accept("op", ","):
                break
        self._expect("op", ")")
        self._expect("op", ";")
        return ast.Instance(
            module_name=module_name,
            instance_name=instance_name,
            params=params,
            ports=ports,
            lineno=start.lineno,
            col=start.col,
        )

    # -- statements ----------------------------------------------------------

    def parse_statement(self):
        token = self._peek()
        if token.kind == "keyword":
            if token.text == "begin":
                return self._parse_block()
            if token.text == "if":
                return self._parse_if()
            if token.text in ("case", "casez"):
                return self._parse_case()
            if token.text == "for":
                return self._parse_for()
        if token.kind == "sysname":
            return self._parse_system_call()
        if self._accept("op", ";"):
            return ast.Block(statements=[])
        return self._parse_assignment()

    def _parse_block(self):
        self._expect("keyword", "begin")
        # Optional block label: "begin : name".
        if self._accept("op", ":"):
            self._expect("ident")
        statements = []
        terminators = ("end", "endmodule", "endcase")
        while not (
            self._peek().kind == "keyword" and self._peek().text in terminators
        ):
            if self._at("eof") or self._give_up():
                break
            stmt = self._recovering(self.parse_statement, terminators)
            if stmt is not None:
                statements.append(stmt)
        self._expect("keyword", "end")
        return ast.Block(statements=statements)

    def _parse_if(self):
        self._expect("keyword", "if")
        self._expect("op", "(")
        cond = self.parse_expression()
        self._expect("op", ")")
        then_stmt = self.parse_statement()
        else_stmt = None
        if self._accept("keyword", "else"):
            else_stmt = self.parse_statement()
        return ast.If(cond=cond, then_stmt=then_stmt, else_stmt=else_stmt)

    def _parse_case(self):
        start = self._next()
        casez = start.text == "casez"
        self._expect("op", "(")
        subject = self.parse_expression()
        self._expect("op", ")")
        items = []

        def parse_arm():
            if self._accept("keyword", "default"):
                self._accept("op", ":")
                return ast.CaseItem(labels=[], stmt=self.parse_statement())
            labels = [self.parse_expression()]
            while self._accept("op", ","):
                labels.append(self.parse_expression())
            self._expect("op", ":")
            return ast.CaseItem(labels=labels, stmt=self.parse_statement())

        while not self._at("keyword", "endcase"):
            if (
                self._at("eof")
                or self._at("keyword", "endmodule")
                or self._give_up()
            ):
                self._emit_error(
                    "P0201",
                    "expected 'endcase', got %r" % self._peek().text,
                    self._peek(),
                )
                break
            arm = self._recovering(parse_arm, ("endcase", "endmodule"))
            if arm is not None:
                items.append(arm)
        self._accept("keyword", "endcase")
        return ast.Case(
            subject=subject,
            items=items,
            casez=casez,
            lineno=start.lineno,
            col=start.col,
        )

    def _parse_for(self):
        token = self._expect("keyword", "for")
        self._expect("op", "(")
        init = self._parse_assignment(terminated=False)
        self._expect("op", ";")
        cond = self.parse_expression()
        self._expect("op", ";")
        step = self._parse_assignment(terminated=False)
        self._expect("op", ")")
        body = self.parse_statement()
        if not isinstance(init, ast.BlockingAssign) or not isinstance(
            step, ast.BlockingAssign
        ):
            self._error(
                "P0206",
                "for loop init/step must be blocking assignments",
                token,
                hint="use 'i = 0' / 'i = i + 1', not '<='",
            )
        return ast.For(init=init, cond=cond, step=step, body=body)

    def _parse_system_call(self):
        token = self._expect("sysname")
        name = token.text
        if name in ("$finish", "$stop"):
            if self._accept("op", "("):
                self._expect("op", ")")
            self._expect("op", ";")
            return ast.Finish()
        if name not in ("$display", "$write"):
            self._error(
                "P0207",
                "unsupported system task %s" % name,
                token,
                hint="only $display/$write/$finish/$stop are simulated",
            )
        self._expect("op", "(")
        fmt = self._expect("string")
        args = []
        while self._accept("op", ","):
            args.append(self.parse_expression())
        self._expect("op", ")")
        self._expect("op", ";")
        return ast.Display(
            format=fmt.text, args=args, lineno=token.lineno, col=token.col
        )

    def _parse_assignment(self, terminated=True):
        start = self._peek()
        lhs = self._parse_primary()
        if self._accept("op", "<="):
            rhs = self.parse_expression()
            stmt = ast.NonblockingAssign(
                lhs=lhs, rhs=rhs, lineno=start.lineno, col=start.col
            )
        elif self._accept("op", "="):
            rhs = self.parse_expression()
            stmt = ast.BlockingAssign(
                lhs=lhs, rhs=rhs, lineno=start.lineno, col=start.col
            )
        else:
            token = self._peek()
            self._error(
                "P0208",
                "expected assignment, got %r" % token.text,
                token,
            )
        if terminated:
            self._expect("op", ";")
        return stmt

    # -- expressions -----------------------------------------------------------

    def parse_expression(self):
        return self._parse_ternary()

    def _parse_ternary(self):
        cond = self._parse_binary(0)
        if self._accept("op", "?"):
            iftrue = self.parse_expression()
            self._expect("op", ":")
            iffalse = self.parse_expression()
            return ast.Ternary(cond=cond, iftrue=iftrue, iffalse=iffalse)
        return cond

    def _parse_binary(self, level):
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        ops = _BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while self._peek().kind == "op" and self._peek().text in ops:
            op = self._next().text
            right = self._parse_binary(level + 1)
            left = ast.BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_unary(self):
        token = self._peek()
        if token.kind == "op" and token.text in _UNARY_OPS:
            self._next()
            operand = self._parse_unary()
            if token.text == "+":
                return operand
            return ast.UnaryOp(op=token.text, operand=operand)
        return self._parse_primary()

    def _parse_primary(self):
        token = self._peek()
        if token.kind == "number":
            self._next()
            # SystemVerilog size cast: N'(expr).
            if token.width is None and self._at("op", "'") and self._at("op", "(", 1):
                self._next()
                self._next()
                expr = self.parse_expression()
                self._expect("op", ")")
                return self._parse_postfix(
                    ast.SizeCast(width=token.value, expr=expr)
                )
            return ast.Number(
                value=token.value, width=token.width, signed=token.signed
            )
        if token.kind == "ident":
            self._next()
            return self._parse_postfix(ast.Identifier(name=token.text))
        if token.kind == "sysname" and token.text in ("$signed", "$unsigned"):
            self._next()
            self._expect("op", "(")
            expr = self.parse_expression()
            self._expect("op", ")")
            # Two-state simplification: treat as identity.
            return expr
        if self._accept("op", "("):
            expr = self.parse_expression()
            self._expect("op", ")")
            return self._parse_postfix(expr)
        if self._at("op", "{"):
            return self._parse_concat()
        self._error(
            "P0203",
            "unexpected token %r in expression" % token.text,
            token,
        )

    def _parse_concat(self):
        self._expect("op", "{")
        first = self.parse_expression()
        if self._at("op", "{"):
            self._next()
            expr = self.parse_expression()
            self._expect("op", "}")
            self._expect("op", "}")
            return ast.Repeat(count=first, expr=expr)
        parts = [first]
        while self._accept("op", ","):
            parts.append(self.parse_expression())
        self._expect("op", "}")
        return self._parse_postfix(ast.Concat(parts=parts))

    def _parse_postfix(self, expr):
        while self._at("op", "["):
            self._next()
            index = self.parse_expression()
            if self._accept("op", ":"):
                msb = index
                lsb = self.parse_expression()
                self._expect("op", "]")
                expr = ast.PartSelect(var=expr, msb=msb, lsb=lsb)
            elif self._accept("op", "+:"):
                width = self.parse_expression()
                self._expect("op", "]")
                expr = ast.IndexedPartSelect(
                    var=expr, base=index, width=width, ascending=True
                )
            elif self._accept("op", "-:"):
                width = self.parse_expression()
                self._expect("op", "]")
                expr = ast.IndexedPartSelect(
                    var=expr, base=index, width=width, ascending=False
                )
            else:
                self._expect("op", "]")
                expr = ast.Index(var=expr, index=index)
        return expr


def _raise_from_sink(sink):
    """Raise :class:`ParseError` for the first collected error."""
    first = sink.errors()[0]
    raise ParseError(
        first.format(), code=first.code, diagnostics=sink.diagnostics
    )


def _source_lines(text):
    return text.count("\n") + 1


def parse(text, filename="<input>", sink=None):
    """Parse Verilog source *text* into a :class:`repro.hdl.ast_nodes.Source`.

    With no *sink*, raises :class:`LexerError`/:class:`ParseError` on
    bad input (after collecting *all* errors via panic-mode recovery;
    the exception carries them on ``.diagnostics``). With a
    :class:`~repro.diag.DiagnosticSink`, records every error in the
    sink and returns the partial AST instead of raising.
    """
    strict = sink is None
    if strict:
        sink = DiagnosticSink()
        tokens = tokenize(text, filename=filename)
    else:
        tokens = tokenize(text, filename=filename, sink=sink)
    parser = _Parser(
        tokens, filename=filename, sink=sink, eof_line=_source_lines(text)
    )
    source = parser.parse_source()
    if strict and sink.has_errors:
        _raise_from_sink(sink)
    return source


def parse_module(text, filename="<input>"):
    """Parse source containing exactly one module and return it."""
    source = parse(text, filename=filename)
    if len(source.modules) != 1:
        raise ParseError(
            "expected exactly one module, got %d" % len(source.modules),
            code="P0209",
        )
    return source.modules[0]


def _parse_fragment(text, filename, parse_fn_name):
    """Shared driver for the standalone expression/statement helpers."""
    sink = DiagnosticSink()
    parser = _Parser(
        tokenize(text, filename=filename, sink=sink),
        filename=filename,
        sink=sink,
        eof_line=_source_lines(text),
    )
    try:
        node = getattr(parser, parse_fn_name)()
    except _Recover:
        node = None
    if sink.has_errors:
        _raise_from_sink(sink)
    if not parser._at("eof"):
        raise ParseError(
            "trailing input after %s: %r"
            % (parse_fn_name.replace("parse_", ""), parser._peek().text),
            code="P0209",
        )
    return node


def parse_expression(text, filename="<input>"):
    """Parse a standalone expression (used by tools and tests)."""
    return _parse_fragment(text, filename, "parse_expression")


def parse_statement(text, filename="<input>"):
    """Parse a standalone procedural statement (used by tools and tests)."""
    return _parse_fragment(text, filename, "parse_statement")
