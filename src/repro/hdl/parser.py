"""Recursive-descent parser for the synthesizable Verilog subset.

The grammar covers what the paper's testbed designs and generated
instrumentation need: ANSI-style modules with parameters, vector and memory
declarations, continuous assigns, ``always`` blocks (edge-triggered and
combinational), if/case/casez/for statements, blocking and nonblocking
assignments, ``$display``/``$finish``, module instantiation with named
connections, and the SystemVerilog size-cast ``N'(expr)``.

Entry point: :func:`parse` (text -> :class:`repro.hdl.ast_nodes.Source`).
"""

from __future__ import annotations

from . import ast_nodes as ast
from .lexer import Token, tokenize


class ParseError(ValueError):
    """Raised on input the subset grammar does not accept."""


_UNARY_OPS = frozenset(["~", "!", "-", "+", "&", "|", "^", "~&", "~|", "~^"])

# Binary operator precedence levels, lowest binding first.
_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^", "~^", "^~"],
    ["&"],
    ["==", "!=", "===", "!=="],
    ["<", "<=", ">", ">="],
    ["<<", ">>", "<<<", ">>>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class _Parser:
    def __init__(self, tokens):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ----------------------------------------------------

    def _peek(self, ahead=0):
        index = self._pos + ahead
        if index < len(self._tokens):
            return self._tokens[index]
        return Token("eof", "<eof>", self._tokens[-1].lineno if self._tokens else 0)

    def _next(self):
        token = self._peek()
        self._pos += 1
        return token

    def _at(self, kind, text=None, ahead=0):
        token = self._peek(ahead)
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind, text=None):
        if self._at(kind, text):
            return self._next()
        return None

    def _expect(self, kind, text=None):
        token = self._peek()
        if not self._at(kind, text):
            raise ParseError(
                "line %d: expected %s, got %r"
                % (token.lineno, text or kind, token.text)
            )
        return self._next()

    # -- top level ---------------------------------------------------------

    def parse_source(self):
        modules = []
        while not self._at("eof"):
            modules.append(self.parse_module())
        return ast.Source(modules=modules)

    def parse_module(self):
        self._expect("keyword", "module")
        name = self._expect("ident").text
        params = []
        if self._accept("op", "#"):
            self._expect("op", "(")
            while not self._at("op", ")"):
                self._accept("keyword", "parameter")
                pname = self._expect("ident").text
                self._expect("op", "=")
                params.append(
                    ast.ParameterDecl(name=pname, value=self.parse_expression())
                )
                if not self._accept("op", ","):
                    break
            self._expect("op", ")")
        ports = []
        self._expect("op", "(")
        while not self._at("op", ")"):
            ports.append(self._parse_port())
            if not self._accept("op", ","):
                break
        self._expect("op", ")")
        self._expect("op", ";")
        items = []
        while not self._at("keyword", "endmodule"):
            items.extend(self._parse_item())
        self._expect("keyword", "endmodule")
        return self._with_port_declarations(
            ast.Module(name=name, params=params, ports=ports, items=items)
        )

    @staticmethod
    def _with_port_declarations(module):
        """Add implicit Declarations for ports not declared in the body."""
        declared = {d.name for d in module.declarations()}
        implicit = []
        for port in module.ports:
            if port.name in declared:
                continue
            implicit.append(
                ast.Declaration(
                    kind=port.kind,
                    name=port.name,
                    width=port.width,
                    signed=port.signed,
                )
            )
        module.items = implicit + module.items
        return module

    def _parse_port(self):
        token = self._next()
        if token.text not in ("input", "output", "inout"):
            raise ParseError(
                "line %d: expected port direction, got %r" % (token.lineno, token.text)
            )
        direction = ast.PortDirection(token.text)
        kind = ast.NetKind.WIRE
        if self._at("keyword", "reg") or self._at("keyword", "wire"):
            kind = ast.NetKind(self._next().text)
        signed = bool(self._accept("keyword", "signed"))
        width = self._parse_optional_width()
        name = self._expect("ident").text
        return ast.Port(
            direction=direction, kind=kind, name=name, width=width, signed=signed
        )

    def _parse_optional_width(self):
        if not self._at("op", "["):
            return None
        self._next()
        msb = self.parse_expression()
        self._expect("op", ":")
        lsb = self.parse_expression()
        self._expect("op", "]")
        return ast.Width(msb=msb, lsb=lsb)

    # -- module items -------------------------------------------------------

    def _parse_item(self):
        token = self._peek()
        if token.kind == "keyword":
            if token.text in ("reg", "wire", "integer"):
                return self._parse_declaration()
            if token.text in ("parameter", "localparam"):
                return self._parse_parameter_item()
            if token.text == "assign":
                return [self._parse_continuous_assign()]
            if token.text == "always":
                return [self._parse_always()]
        if token.kind == "ident":
            return [self._parse_instance()]
        raise ParseError(
            "line %d: unexpected token %r in module body" % (token.lineno, token.text)
        )

    def _parse_declaration(self):
        lineno = self._peek().lineno
        kind = ast.NetKind(self._next().text)
        signed = bool(self._accept("keyword", "signed"))
        width = None if kind is ast.NetKind.INTEGER else self._parse_optional_width()
        items = []
        while True:
            name = self._expect("ident").text
            array = self._parse_optional_width()
            decl = ast.Declaration(
                kind=kind,
                name=name,
                width=width,
                array=array,
                signed=signed,
                lineno=lineno,
            )
            items.append(decl)
            if self._accept("op", "="):
                if kind is not ast.NetKind.WIRE:
                    raise ParseError(
                        "line %d: initializer only allowed on wire" % lineno
                    )
                items.append(
                    ast.ContinuousAssign(
                        lhs=ast.Identifier(name=name),
                        rhs=self.parse_expression(),
                        lineno=lineno,
                    )
                )
            if not self._accept("op", ","):
                break
        self._expect("op", ";")
        return items

    def _parse_parameter_item(self):
        local = self._next().text == "localparam"
        items = []
        while True:
            name = self._expect("ident").text
            self._expect("op", "=")
            items.append(
                ast.ParameterDecl(name=name, value=self.parse_expression(), local=local)
            )
            if not self._accept("op", ","):
                break
        self._expect("op", ";")
        return items

    def _parse_continuous_assign(self):
        lineno = self._expect("keyword", "assign").lineno
        lhs = self.parse_expression()
        self._expect("op", "=")
        rhs = self.parse_expression()
        self._expect("op", ";")
        return ast.ContinuousAssign(lhs=lhs, rhs=rhs, lineno=lineno)

    def _parse_always(self):
        lineno = self._expect("keyword", "always").lineno
        self._expect("op", "@")
        self._expect("op", "(")
        sens = []
        if self._accept("op", "*"):
            sens.append(ast.SensItem(edge=ast.Edge.STAR))
        else:
            while True:
                if self._accept("keyword", "posedge"):
                    edge = ast.Edge.POSEDGE
                elif self._accept("keyword", "negedge"):
                    edge = ast.Edge.NEGEDGE
                else:
                    # Plain signal in sensitivity list: treat as combinational.
                    edge = ast.Edge.STAR
                signal = None
                if edge is not ast.Edge.STAR or self._at("ident"):
                    signal = self._expect("ident").text
                sens.append(ast.SensItem(edge=edge, signal=signal))
                if not (self._accept("keyword", "or") or self._accept("op", ",")):
                    break
        self._expect("op", ")")
        body = self.parse_statement()
        return ast.Always(sens=sens, body=body, lineno=lineno)

    def _parse_instance(self):
        lineno = self._peek().lineno
        module_name = self._expect("ident").text
        params = []
        if self._accept("op", "#"):
            self._expect("op", "(")
            while not self._at("op", ")"):
                self._expect("op", ".")
                pname = self._expect("ident").text
                self._expect("op", "(")
                params.append(
                    ast.ParamOverride(name=pname, value=self.parse_expression())
                )
                self._expect("op", ")")
                if not self._accept("op", ","):
                    break
            self._expect("op", ")")
        instance_name = self._expect("ident").text
        ports = []
        self._expect("op", "(")
        while not self._at("op", ")"):
            self._expect("op", ".")
            port_name = self._expect("ident").text
            self._expect("op", "(")
            expr = None
            if not self._at("op", ")"):
                expr = self.parse_expression()
            self._expect("op", ")")
            ports.append(ast.PortConnection(port=port_name, expr=expr))
            if not self._accept("op", ","):
                break
        self._expect("op", ")")
        self._expect("op", ";")
        return ast.Instance(
            module_name=module_name,
            instance_name=instance_name,
            params=params,
            ports=ports,
            lineno=lineno,
        )

    # -- statements ----------------------------------------------------------

    def parse_statement(self):
        token = self._peek()
        if token.kind == "keyword":
            if token.text == "begin":
                return self._parse_block()
            if token.text == "if":
                return self._parse_if()
            if token.text in ("case", "casez"):
                return self._parse_case()
            if token.text == "for":
                return self._parse_for()
        if token.kind == "sysname":
            return self._parse_system_call()
        if self._accept("op", ";"):
            return ast.Block(statements=[])
        return self._parse_assignment()

    def _parse_block(self):
        self._expect("keyword", "begin")
        # Optional block label: "begin : name".
        if self._accept("op", ":"):
            self._expect("ident")
        statements = []
        while not self._at("keyword", "end"):
            statements.append(self.parse_statement())
        self._expect("keyword", "end")
        return ast.Block(statements=statements)

    def _parse_if(self):
        self._expect("keyword", "if")
        self._expect("op", "(")
        cond = self.parse_expression()
        self._expect("op", ")")
        then_stmt = self.parse_statement()
        else_stmt = None
        if self._accept("keyword", "else"):
            else_stmt = self.parse_statement()
        return ast.If(cond=cond, then_stmt=then_stmt, else_stmt=else_stmt)

    def _parse_case(self):
        casez = self._next().text == "casez"
        self._expect("op", "(")
        subject = self.parse_expression()
        self._expect("op", ")")
        items = []
        while not self._at("keyword", "endcase"):
            if self._accept("keyword", "default"):
                self._accept("op", ":")
                items.append(ast.CaseItem(labels=[], stmt=self.parse_statement()))
                continue
            labels = [self.parse_expression()]
            while self._accept("op", ","):
                labels.append(self.parse_expression())
            self._expect("op", ":")
            items.append(ast.CaseItem(labels=labels, stmt=self.parse_statement()))
        self._expect("keyword", "endcase")
        return ast.Case(subject=subject, items=items, casez=casez)

    def _parse_for(self):
        self._expect("keyword", "for")
        self._expect("op", "(")
        init = self._parse_assignment(terminated=False)
        self._expect("op", ";")
        cond = self.parse_expression()
        self._expect("op", ";")
        step = self._parse_assignment(terminated=False)
        self._expect("op", ")")
        body = self.parse_statement()
        if not isinstance(init, ast.BlockingAssign) or not isinstance(
            step, ast.BlockingAssign
        ):
            raise ParseError("for loop init/step must be blocking assignments")
        return ast.For(init=init, cond=cond, step=step, body=body)

    def _parse_system_call(self):
        token = self._expect("sysname")
        name = token.text
        if name in ("$finish", "$stop"):
            if self._accept("op", "("):
                self._expect("op", ")")
            self._expect("op", ";")
            return ast.Finish()
        if name not in ("$display", "$write"):
            raise ParseError(
                "line %d: unsupported system task %s" % (token.lineno, name)
            )
        self._expect("op", "(")
        fmt = self._expect("string")
        args = []
        while self._accept("op", ","):
            args.append(self.parse_expression())
        self._expect("op", ")")
        self._expect("op", ";")
        return ast.Display(format=fmt.text, args=args, lineno=token.lineno)

    def _parse_assignment(self, terminated=True):
        lineno = self._peek().lineno
        lhs = self._parse_primary()
        if self._accept("op", "<="):
            rhs = self.parse_expression()
            stmt = ast.NonblockingAssign(lhs=lhs, rhs=rhs, lineno=lineno)
        elif self._accept("op", "="):
            rhs = self.parse_expression()
            stmt = ast.BlockingAssign(lhs=lhs, rhs=rhs, lineno=lineno)
        else:
            token = self._peek()
            raise ParseError(
                "line %d: expected assignment, got %r" % (token.lineno, token.text)
            )
        if terminated:
            self._expect("op", ";")
        return stmt

    # -- expressions -----------------------------------------------------------

    def parse_expression(self):
        return self._parse_ternary()

    def _parse_ternary(self):
        cond = self._parse_binary(0)
        if self._accept("op", "?"):
            iftrue = self.parse_expression()
            self._expect("op", ":")
            iffalse = self.parse_expression()
            return ast.Ternary(cond=cond, iftrue=iftrue, iffalse=iffalse)
        return cond

    def _parse_binary(self, level):
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        ops = _BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while self._peek().kind == "op" and self._peek().text in ops:
            op = self._next().text
            right = self._parse_binary(level + 1)
            left = ast.BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_unary(self):
        token = self._peek()
        if token.kind == "op" and token.text in _UNARY_OPS:
            self._next()
            operand = self._parse_unary()
            if token.text == "+":
                return operand
            return ast.UnaryOp(op=token.text, operand=operand)
        return self._parse_primary()

    def _parse_primary(self):
        token = self._peek()
        if token.kind == "number":
            self._next()
            # SystemVerilog size cast: N'(expr).
            if token.width is None and self._at("op", "'") and self._at("op", "(", 1):
                self._next()
                self._next()
                expr = self.parse_expression()
                self._expect("op", ")")
                return self._parse_postfix(
                    ast.SizeCast(width=token.value, expr=expr)
                )
            return ast.Number(
                value=token.value, width=token.width, signed=token.signed
            )
        if token.kind == "ident":
            self._next()
            return self._parse_postfix(ast.Identifier(name=token.text))
        if token.kind == "sysname" and token.text in ("$signed", "$unsigned"):
            self._next()
            self._expect("op", "(")
            expr = self.parse_expression()
            self._expect("op", ")")
            # Two-state simplification: treat as identity.
            return expr
        if self._accept("op", "("):
            expr = self.parse_expression()
            self._expect("op", ")")
            return self._parse_postfix(expr)
        if self._at("op", "{"):
            return self._parse_concat()
        raise ParseError(
            "line %d: unexpected token %r in expression" % (token.lineno, token.text)
        )

    def _parse_concat(self):
        self._expect("op", "{")
        first = self.parse_expression()
        if self._at("op", "{"):
            self._next()
            expr = self.parse_expression()
            self._expect("op", "}")
            self._expect("op", "}")
            return ast.Repeat(count=first, expr=expr)
        parts = [first]
        while self._accept("op", ","):
            parts.append(self.parse_expression())
        self._expect("op", "}")
        return self._parse_postfix(ast.Concat(parts=parts))

    def _parse_postfix(self, expr):
        while self._at("op", "["):
            self._next()
            index = self.parse_expression()
            if self._accept("op", ":"):
                msb = index
                lsb = self.parse_expression()
                self._expect("op", "]")
                expr = ast.PartSelect(var=expr, msb=msb, lsb=lsb)
            elif self._accept("op", "+:"):
                width = self.parse_expression()
                self._expect("op", "]")
                expr = ast.IndexedPartSelect(
                    var=expr, base=index, width=width, ascending=True
                )
            elif self._accept("op", "-:"):
                width = self.parse_expression()
                self._expect("op", "]")
                expr = ast.IndexedPartSelect(
                    var=expr, base=index, width=width, ascending=False
                )
            else:
                self._expect("op", "]")
                expr = ast.Index(var=expr, index=index)
        return expr


def parse(text):
    """Parse Verilog source *text* into a :class:`repro.hdl.ast_nodes.Source`."""
    return _Parser(tokenize(text)).parse_source()


def parse_module(text):
    """Parse source containing exactly one module and return it."""
    source = parse(text)
    if len(source.modules) != 1:
        raise ParseError("expected exactly one module, got %d" % len(source.modules))
    return source.modules[0]


def parse_expression(text):
    """Parse a standalone expression (used by tools and tests)."""
    parser = _Parser(tokenize(text))
    expr = parser.parse_expression()
    if not parser._at("eof"):
        raise ParseError("trailing input after expression: %r" % parser._peek().text)
    return expr


def parse_statement(text):
    """Parse a standalone procedural statement (used by tools and tests)."""
    parser = _Parser(tokenize(text))
    stmt = parser.parse_statement()
    if not parser._at("eof"):
        raise ParseError("trailing input after statement: %r" % parser._peek().text)
    return stmt
