"""Design elaboration: parameters, loop unrolling, hierarchy flattening.

:func:`elaborate` turns a parsed :class:`~repro.hdl.ast_nodes.Source` into a
single flat :class:`~repro.hdl.ast_nodes.Module`:

* parameter/localparam references are substituted with constants and their
  declarations dropped;
* widths and array ranges become constant :class:`Number` bounds;
* ``for`` loops with static bounds are unrolled;
* child module instances are inlined, their signals renamed to
  ``instance.signal`` dotted names, and port connections turned into
  continuous assigns — mirroring Verilator's inlining, which the paper's
  toolchain relies on (§5);
* blackbox IP instances (``altsyncram``, ``scfifo``, ``dcfifo``, recording
  IPs) are kept as :class:`Instance` items for the simulator/analyses to
  bind to behavioral models.

The elaborated module is what the simulator, the analyses, and all five
debugging tools operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast_nodes as ast
from .transform import (
    NotConstantError,
    const_eval,
    fold_constants,
    map_statement,
    rename_identifiers,
)

#: IP blocks treated as blackboxes during elaboration by default.
DEFAULT_BLACKBOXES = frozenset(["altsyncram", "scfifo", "dcfifo", "signal_recorder"])

_MAX_UNROLL = 65536


class ElaborationError(ValueError):
    """Raised when a design cannot be elaborated (bad params, loops, ...).

    ``code`` is the stable ``E02xx`` rule code and ``diagnostics`` the
    structured findings (used by ``repro check`` and for fuzz/fault
    error bucketing).
    """

    def __init__(self, message, code="E0209", diagnostics=None):
        super().__init__(message)
        self.code = code
        self.diagnostics = list(diagnostics or [])


@dataclass
class Design:
    """An elaborated design: one flat module plus its blackbox instances."""

    top: ast.Module
    blackboxes: list = field(default_factory=list)

    @property
    def name(self):
        """Name of the top module."""
        return self.top.name


def _resolve_params(module, overrides):
    """Compute the parameter environment for one module instantiation."""
    env = {}
    for param in module.params:
        env[param.name] = const_eval(param.value, env)
    for name, value in (overrides or {}).items():
        if name not in env:
            raise ElaborationError(
                "module %s has no parameter %r" % (module.name, name),
                code="E0208",
            )
        env[name] = value
    for item in module.items:
        if isinstance(item, ast.ParameterDecl):
            if item.name not in env:
                env[item.name] = const_eval(item.value, env)
    return env


def _resolve_width(width, env, context):
    if width is None:
        return None
    try:
        msb = const_eval(width.msb, env)
        lsb = const_eval(width.lsb, env)
    except NotConstantError as exc:
        raise ElaborationError(
            "%s: non-constant width (%s)" % (context, exc), code="E0201"
        )
    return ast.Width(msb=ast.Number(value=msb), lsb=ast.Number(value=lsb))


def _unroll_for(stmt, env):
    """Unroll a For statement into a list of statements."""
    var = ast.lvalue_base_name(stmt.init.lhs)
    try:
        value = const_eval(stmt.init.rhs, env)
    except NotConstantError as exc:
        raise ElaborationError(
            "for-loop init must be constant: %s" % exc, code="E0205"
        )
    statements = []
    iterations = 0
    while True:
        loop_env = dict(env)
        loop_env[var] = value
        try:
            if not const_eval(stmt.cond, loop_env):
                break
        except NotConstantError as exc:
            raise ElaborationError(
                "for-loop condition must be static: %s" % exc, code="E0205"
            )
        body = map_statement(stmt.body, lambda e: fold_constants(e, loop_env))
        body = _expand_statement(body, loop_env)
        statements.append(body)
        try:
            value = const_eval(stmt.step.rhs, loop_env)
        except NotConstantError as exc:
            raise ElaborationError(
                "for-loop step must be static: %s" % exc, code="E0205"
            )
        iterations += 1
        if iterations > _MAX_UNROLL:
            raise ElaborationError(
                "for-loop exceeds %d iterations" % _MAX_UNROLL, code="E0206"
            )
    return statements


def _expand_statement(stmt, env):
    """Fold constants and unroll loops within a statement tree."""
    from .transform import _one

    def stmt_fn(node):
        if isinstance(node, ast.For):
            return _unroll_for(node, env)
        return node

    return _one(map_statement(stmt, lambda e: fold_constants(e, env), stmt_fn))


def _is_lvalue(expr):
    if isinstance(expr, ast.Identifier):
        return True
    if isinstance(expr, (ast.Index, ast.PartSelect, ast.IndexedPartSelect)):
        return _is_lvalue(expr.var)
    if isinstance(expr, ast.Concat):
        return all(_is_lvalue(p) for p in expr.parts)
    return False


class _Elaborator:
    def __init__(self, source, blackboxes):
        self._modules = source.module_map()
        self._blackboxes = set(blackboxes)
        self._items = []
        self._blackbox_instances = []

    def elaborate(self, top_name, overrides=None):
        top = self._modules[top_name]
        env = _resolve_params(top, overrides)
        self._inline(top, env, prefix="")
        module = ast.Module(
            name=top.name,
            params=[],
            ports=[self._resolve_port(p, env) for p in top.ports],
            items=self._items,
        )
        return Design(top=module, blackboxes=self._blackbox_instances)

    def _resolve_port(self, port, env):
        return ast.Port(
            direction=port.direction,
            kind=port.kind,
            name=port.name,
            width=_resolve_width(port.width, env, port.name),
            signed=port.signed,
        )

    def _inline(self, module, env, prefix, alias=None):
        alias = alias or {}
        local_names = {d.name for d in module.declarations()}
        local_names.update(p.name for p in module.ports)
        for item in module.items:
            if isinstance(item, ast.Instance):
                local_names.add(item.instance_name)
        rename = {}
        if prefix or alias:
            rename = {
                name: alias.get(name, prefix + name) for name in local_names
            }

        def fix_expr(expr):
            expr = fold_constants(expr, env)
            if rename:
                expr = rename_identifiers(expr, rename)
            return expr

        for item in module.items:
            if isinstance(item, ast.ParameterDecl):
                continue
            if isinstance(item, ast.Declaration):
                if item.name in alias:
                    # Port directly aliased to an outer signal: the outer
                    # declaration is the single source of truth.
                    continue
                self._items.append(
                    ast.Declaration(
                        kind=(
                            ast.NetKind.REG
                            if item.kind is ast.NetKind.INTEGER
                            else item.kind
                        ),
                        name=rename.get(item.name, item.name),
                        width=(
                            _resolve_width(item.width, env, item.name)
                            if item.kind is not ast.NetKind.INTEGER
                            else ast.Width(
                                msb=ast.Number(value=31), lsb=ast.Number(value=0)
                            )
                        ),
                        array=_resolve_width(item.array, env, item.name),
                        signed=item.signed,
                        lineno=item.lineno,
                    )
                )
            elif isinstance(item, ast.ContinuousAssign):
                self._items.append(
                    ast.ContinuousAssign(
                        lhs=fix_expr(item.lhs),
                        rhs=fix_expr(item.rhs),
                        lineno=item.lineno,
                    )
                )
            elif isinstance(item, ast.Always):
                body = _expand_statement(item.body, env)
                if rename:
                    body = map_statement(
                        body, lambda e: rename_identifiers(e, rename)
                    )
                sens = [
                    ast.SensItem(
                        edge=s.edge,
                        signal=rename.get(s.signal, s.signal) if s.signal else None,
                    )
                    for s in item.sens
                ]
                self._items.append(ast.Always(sens=sens, body=body, lineno=item.lineno))
            elif isinstance(item, ast.Instance):
                self._inline_instance(item, env, prefix, fix_expr)
            else:
                raise ElaborationError(
                    "unsupported module item %r" % (item,), code="E0209"
                )

    def _inline_instance(self, inst, env, prefix, fix_expr):
        child_prefix = prefix + inst.instance_name + "."
        overrides = {}
        for override in inst.params:
            try:
                overrides[override.name] = const_eval(override.value, env)
            except NotConstantError as exc:
                raise ElaborationError(
                    "instance %s: non-constant parameter %s (%s)"
                    % (inst.instance_name, override.name, exc),
                    code="E0204",
                )
        if inst.module_name in self._blackboxes:
            self._blackbox_instance(inst, overrides, child_prefix, fix_expr)
            return
        if inst.module_name not in self._modules:
            raise ElaborationError(
                "instance %s references unknown module %s (declare it or "
                "register it as a blackbox IP)"
                % (inst.instance_name, inst.module_name),
                code="E0202",
            )
        child = self._modules[inst.module_name]
        child_env = _resolve_params(child, overrides)
        ports = child.port_map()
        alias = {}
        assigns = []
        for conn in inst.ports:
            if conn.port not in ports:
                raise ElaborationError(
                    "instance %s: unknown port %s"
                    % (inst.instance_name, conn.port),
                    code="E0203",
                )
            if conn.expr is None:
                continue
            port = ports[conn.port]
            outer = fix_expr(conn.expr)
            if isinstance(outer, ast.Identifier):
                # Plain-identifier connections become direct renames. This
                # keeps clocks as clocks after flattening and avoids a
                # settle-loop hop per port.
                alias[conn.port] = outer.name
                continue
            inner = ast.Identifier(name=child_prefix + conn.port)
            if port.direction is ast.PortDirection.INPUT:
                assigns.append(ast.ContinuousAssign(lhs=inner, rhs=outer))
            else:
                if not _is_lvalue(outer):
                    raise ElaborationError(
                        "instance %s: output port %s must connect to an lvalue"
                        % (inst.instance_name, conn.port),
                        code="E0207",
                    )
                assigns.append(ast.ContinuousAssign(lhs=outer, rhs=inner))
        self._inline(child, child_env, child_prefix, alias=alias)
        self._items.extend(assigns)

    def _blackbox_instance(self, inst, overrides, child_prefix, fix_expr):
        resolved = ast.Instance(
            module_name=inst.module_name,
            instance_name=child_prefix.rstrip("."),
            params=[
                ast.ParamOverride(name=name, value=ast.Number(value=value))
                for name, value in overrides.items()
            ],
            ports=[
                ast.PortConnection(
                    port=conn.port,
                    expr=fix_expr(conn.expr) if conn.expr is not None else None,
                )
                for conn in inst.ports
            ],
            lineno=inst.lineno,
        )
        self._items.append(resolved)
        self._blackbox_instances.append(resolved)


def elaborate(source, top=None, params=None, blackboxes=DEFAULT_BLACKBOXES):
    """Elaborate *source* with *top* as the root module.

    ``params`` optionally overrides top-level parameters. Returns a
    :class:`Design` whose ``top`` is a flat module.
    """
    if isinstance(source, ast.Module):
        source = ast.Source(modules=[source])
    if top is None:
        top = source.modules[-1].name
    return _Elaborator(source, blackboxes).elaborate(top, params)
