"""Tokenizer for the synthesizable Verilog subset.

Produces a flat list of :class:`Token` objects. Comments (``//`` and
``/* */``) and whitespace are skipped; line *and column* numbers are
tracked for diagnostics and for mapping instrumentation back to source.

Error handling has two modes:

* legacy (no sink): the first bad character raises :class:`LexerError`,
  whose message uses the canonical ``file:line:col:`` prefix and whose
  ``code``/``diagnostics`` attributes carry the structured finding;
* recovering (``sink=`` given): bad characters are reported as
  :class:`repro.diag.Diagnostic` records into the sink and skipped, so
  one run surfaces every lexical defect.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..diag.model import DiagnosticSink, SourceSpan

KEYWORDS = frozenset(
    [
        "module", "endmodule", "input", "output", "inout", "reg", "wire",
        "integer", "parameter", "localparam", "assign", "always", "begin",
        "end", "if", "else", "case", "casez", "endcase", "default", "for",
        "posedge", "negedge", "or", "signed",
    ]
)

# Ordered: longest operators first so maximal-munch works.
_OPERATORS = [
    "<<<", ">>>", "===", "!==",
    "<=", ">=", "==", "!=", "&&", "||", "<<", ">>", "+:", "-:",
    "~&", "~|", "~^", "^~",
    "+", "-", "*", "/", "%", "<", ">", "!", "~", "&", "|", "^",
    "=", "?", ":", ",", ";", ".", "#", "(", ")", "[", "]", "{", "}", "@", "'",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<sized>[0-9_]*'[sS]?[bodhBODH][0-9a-fA-FxXzZ_?]+)
  | (?P<real>\d[\d_]*\.\d[\d_]*)
  | (?P<number>\d[\d_]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<ident>\$?[A-Za-z_][A-Za-z0-9_$\.]*)
  | (?P<op>%s)
  | (?P<ws>\s+)
  | (?P<bad>.)
    """
    % "|".join(re.escape(op) for op in _OPERATORS),
    re.VERBOSE | re.DOTALL,
)

_BASE_RADIX = {"b": 2, "o": 8, "d": 10, "h": 16}

_STRING_ESCAPES = {"n": "\n", "t": "\t", "\\": "\\", '"': '"'}


def _unescape_string(text):
    """Resolve ``\\"``-style escapes in a string literal's contents.

    Verilog semantics: ``\\n``/``\\t`` are newline/tab, ``\\\\`` and
    ``\\"`` are the literal character, and an unknown ``\\x`` is just
    ``x``. The AST stores the *unescaped* text; codegen re-escapes on
    output, so parse/codegen round-trips are exact.
    """
    if "\\" not in text:
        return text
    out = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            escaped = text[i + 1]
            out.append(_STRING_ESCAPES.get(escaped, escaped))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class LexerError(ValueError):
    """Raised when the input contains a character outside the subset.

    ``code`` is the stable rule code (``P01xx``) and ``diagnostics``
    the structured findings collected before the raise.
    """

    def __init__(self, message, code="P0101", diagnostics=None):
        super().__init__(message)
        self.code = code
        self.diagnostics = list(diagnostics or [])


@dataclass
class Token:
    """A single lexical token.

    ``kind`` is one of ``keyword``, ``ident``, ``sysname`` (``$display``),
    ``number`` (with ``value``/``width``/``signed`` filled in), ``string``,
    or ``op``. ``col`` is the 1-based column of the token's first
    character on its line.
    """

    kind: str
    text: str
    lineno: int
    value: int = 0
    width: object = None
    signed: bool = False
    col: int = 0

    def __repr__(self):
        return "Token(%s, %r, line %d)" % (self.kind, self.text, self.lineno)


def _parse_sized_number(text):
    """Parse ``8'hFF`` style literals; returns (value, width, signed)."""
    size_part, rest = text.split("'", 1)
    signed = rest[0] in "sS"
    if signed:
        rest = rest[1:]
    radix = _BASE_RADIX[rest[0].lower()]
    digits = rest[1:].replace("_", "")
    # Two-state simulation: x/z/? digits read as 0.
    digits = re.sub(r"[xXzZ?]", "0", digits)
    value = int(digits, radix) if digits else 0
    width = int(size_part.replace("_", "")) if size_part else None
    return value, width, signed


def tokenize(text, filename="<input>", sink=None):
    """Tokenize *text*, returning a list of :class:`Token`.

    With no *sink*, raises :class:`LexerError` at the first character
    outside the supported subset (message prefixed ``file:line:col:``).
    With a :class:`~repro.diag.DiagnosticSink`, every bad character is
    reported into the sink and skipped, and the (partial) token list is
    returned.
    """
    strict = sink is None
    if strict:
        sink = DiagnosticSink()
    tokens = []
    lineno = 1
    line_start = 0
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        raw = match.group()
        col = match.start() - line_start + 1

        def fail(code, message):
            span = SourceSpan(file=filename, line=lineno, col=col)
            diagnostic = sink.error(code, message, span)
            if strict:
                raise LexerError(
                    diagnostic.format(), code=code, diagnostics=[diagnostic]
                )

        if kind == "bad":
            fail("P0101", "unexpected character %r" % raw)
        elif kind == "sized":
            value, width, signed = _parse_sized_number(raw)
            tokens.append(
                Token("number", raw, lineno, value, width, signed, col=col)
            )
        elif kind == "real":
            fail("P0102", "real literal %r unsupported" % raw)
        elif kind == "number":
            tokens.append(
                Token("number", raw, lineno, int(raw.replace("_", "")), col=col)
            )
        elif kind == "string":
            tokens.append(
                Token("string", _unescape_string(raw[1:-1]), lineno, col=col)
            )
        elif kind == "ident":
            if raw.startswith("$"):
                tokens.append(Token("sysname", raw, lineno, col=col))
            elif raw in KEYWORDS:
                tokens.append(Token("keyword", raw, lineno, col=col))
            else:
                tokens.append(Token("ident", raw, lineno, col=col))
        elif kind not in ("ws", "comment"):
            tokens.append(Token("op", raw, lineno, col=col))
        newlines = raw.count("\n")
        if newlines:
            lineno += newlines
            line_start = match.start() + raw.rfind("\n") + 1
    return tokens
