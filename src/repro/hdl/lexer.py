"""Tokenizer for the synthesizable Verilog subset.

Produces a flat list of :class:`Token` objects. Comments (``//`` and
``/* */``) and whitespace are skipped; line numbers are tracked for
diagnostics and for mapping instrumentation back to source.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

KEYWORDS = frozenset(
    [
        "module", "endmodule", "input", "output", "inout", "reg", "wire",
        "integer", "parameter", "localparam", "assign", "always", "begin",
        "end", "if", "else", "case", "casez", "endcase", "default", "for",
        "posedge", "negedge", "or", "signed",
    ]
)

# Ordered: longest operators first so maximal-munch works.
_OPERATORS = [
    "<<<", ">>>", "===", "!==",
    "<=", ">=", "==", "!=", "&&", "||", "<<", ">>", "+:", "-:",
    "~&", "~|", "~^", "^~",
    "+", "-", "*", "/", "%", "<", ">", "!", "~", "&", "|", "^",
    "=", "?", ":", ",", ";", ".", "#", "(", ")", "[", "]", "{", "}", "@", "'",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<sized>[0-9_]*'[sS]?[bodhBODH][0-9a-fA-FxXzZ_?]+)
  | (?P<real>\d[\d_]*\.\d[\d_]*)
  | (?P<number>\d[\d_]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<ident>\$?[A-Za-z_][A-Za-z0-9_$\.]*)
  | (?P<op>%s)
  | (?P<ws>\s+)
  | (?P<bad>.)
    """
    % "|".join(re.escape(op) for op in _OPERATORS),
    re.VERBOSE | re.DOTALL,
)

_BASE_RADIX = {"b": 2, "o": 8, "d": 10, "h": 16}

_STRING_ESCAPES = {"n": "\n", "t": "\t", "\\": "\\", '"': '"'}


def _unescape_string(text):
    """Resolve ``\\"``-style escapes in a string literal's contents.

    Verilog semantics: ``\\n``/``\\t`` are newline/tab, ``\\\\`` and
    ``\\"`` are the literal character, and an unknown ``\\x`` is just
    ``x``. The AST stores the *unescaped* text; codegen re-escapes on
    output, so parse/codegen round-trips are exact.
    """
    if "\\" not in text:
        return text
    out = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            escaped = text[i + 1]
            out.append(_STRING_ESCAPES.get(escaped, escaped))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class LexerError(ValueError):
    """Raised when the input contains a character outside the subset."""


@dataclass
class Token:
    """A single lexical token.

    ``kind`` is one of ``keyword``, ``ident``, ``sysname`` (``$display``),
    ``number`` (with ``value``/``width``/``signed`` filled in), ``string``,
    or ``op``.
    """

    kind: str
    text: str
    lineno: int
    value: int = 0
    width: object = None
    signed: bool = False

    def __repr__(self):
        return "Token(%s, %r, line %d)" % (self.kind, self.text, self.lineno)


def _parse_sized_number(text):
    """Parse ``8'hFF`` style literals; returns (value, width, signed)."""
    size_part, rest = text.split("'", 1)
    signed = rest[0] in "sS"
    if signed:
        rest = rest[1:]
    radix = _BASE_RADIX[rest[0].lower()]
    digits = rest[1:].replace("_", "")
    # Two-state simulation: x/z/? digits read as 0.
    digits = re.sub(r"[xXzZ?]", "0", digits)
    value = int(digits, radix) if digits else 0
    width = int(size_part.replace("_", "")) if size_part else None
    return value, width, signed


def tokenize(text):
    """Tokenize *text*, returning a list of :class:`Token`.

    Raises :class:`LexerError` on characters outside the supported subset.
    """
    tokens = []
    lineno = 1
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        raw = match.group()
        if kind in ("ws", "comment"):
            lineno += raw.count("\n")
            continue
        if kind == "bad":
            raise LexerError("line %d: unexpected character %r" % (lineno, raw))
        if kind == "sized":
            value, width, signed = _parse_sized_number(raw)
            tokens.append(Token("number", raw, lineno, value, width, signed))
        elif kind in ("number", "real"):
            if kind == "real":
                raise LexerError("line %d: real literals unsupported" % lineno)
            tokens.append(Token("number", raw, lineno, int(raw.replace("_", ""))))
        elif kind == "string":
            tokens.append(Token("string", _unescape_string(raw[1:-1]), lineno))
        elif kind == "ident":
            if raw.startswith("$"):
                tokens.append(Token("sysname", raw, lineno))
            elif raw in KEYWORDS:
                tokens.append(Token("keyword", raw, lineno))
            else:
                tokens.append(Token("ident", raw, lineno))
        else:
            tokens.append(Token("op", raw, lineno))
        lineno += raw.count("\n")
    return tokens
