"""Abstract syntax tree nodes for the synthesizable Verilog subset.

The AST is deliberately small and regular: every node is a dataclass, every
expression node derives from :class:`Expression`, every statement node from
:class:`Statement`, and every module-level item from :class:`ModuleItem`.
Instrumentation tools (SignalCat, LossCheck, ...) build new designs by
constructing these nodes directly; :mod:`repro.hdl.codegen` renders them back
to Verilog source.

Width semantics are two-state (0/1) and resolved during elaboration
(:mod:`repro.hdl.elaborate`): after elaboration all ``Width`` bounds and
parameter references are plain Python ints.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields
from typing import Optional, Union


class Edge(enum.Enum):
    """Sensitivity-list trigger kind for an ``always`` block."""

    POSEDGE = "posedge"
    NEGEDGE = "negedge"
    STAR = "*"


class PortDirection(enum.Enum):
    """Direction of a module port."""

    INPUT = "input"
    OUTPUT = "output"
    INOUT = "inout"


class NetKind(enum.Enum):
    """Storage class of a declared signal."""

    REG = "reg"
    WIRE = "wire"
    INTEGER = "integer"


@dataclass
class Node:
    """Base class for all AST nodes.

    ``lineno`` is the 1-based source line the node was parsed from (0 for
    synthesized nodes created by instrumentation passes).
    """

    def children(self):
        """Yield every child :class:`Node` (recursing into lists/tuples)."""
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self):
        """Yield this node and every descendant, depth-first pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expression(Node):
    """Base class for expression nodes."""


@dataclass
class Number(Expression):
    """An integer literal, optionally sized (``8'hFF``) and/or signed."""

    value: int
    width: Optional[int] = None
    signed: bool = False

    def __str__(self):
        if self.width is not None:
            return "%d'%sh%x" % (self.width, "s" if self.signed else "", self.value)
        if self.signed:
            return "'sd%d" % self.value
        return str(self.value)


@dataclass
class Identifier(Expression):
    """A reference to a declared signal or parameter by name.

    After hierarchy flattening, names may be dotted (``fifo.wr_ptr``).
    """

    name: str

    def __str__(self):
        return self.name


@dataclass
class Index(Expression):
    """Single-bit or array-element select, ``var[index]``."""

    var: Expression
    index: Expression


@dataclass
class PartSelect(Expression):
    """Constant part select, ``var[msb:lsb]``."""

    var: Expression
    msb: Expression
    lsb: Expression


@dataclass
class IndexedPartSelect(Expression):
    """Indexed part select, ``var[base +: width]`` or ``var[base -: width]``."""

    var: Expression
    base: Expression
    width: Expression
    ascending: bool = True


@dataclass
class Concat(Expression):
    """Concatenation, ``{a, b, c}`` (left part is most significant)."""

    parts: list


@dataclass
class Repeat(Expression):
    """Replication, ``{count{expr}}``."""

    count: Expression
    expr: Expression


@dataclass
class UnaryOp(Expression):
    """Unary operator: ``~ ! - + & | ^ ~& ~| ~^``."""

    op: str
    operand: Expression


@dataclass
class BinaryOp(Expression):
    """Binary operator (arithmetic, bitwise, logical, shift, comparison)."""

    op: str
    left: Expression
    right: Expression


@dataclass
class Ternary(Expression):
    """Conditional expression, ``cond ? iftrue : iffalse``."""

    cond: Expression
    iftrue: Expression
    iffalse: Expression


@dataclass
class SizeCast(Expression):
    """SystemVerilog size cast, ``42'(expr)``: truncates or zero-extends."""

    width: int
    expr: Expression


# ---------------------------------------------------------------------------
# Statements (inside always blocks)
# ---------------------------------------------------------------------------


@dataclass
class Statement(Node):
    """Base class for procedural statements."""


@dataclass
class Block(Statement):
    """A ``begin ... end`` list of statements."""

    statements: list = field(default_factory=list)


@dataclass
class NonblockingAssign(Statement):
    """``lhs <= rhs``: committed at the end of the clock cycle."""

    lhs: Expression
    rhs: Expression
    lineno: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)


@dataclass
class BlockingAssign(Statement):
    """``lhs = rhs``: takes effect immediately within the block."""

    lhs: Expression
    rhs: Expression
    lineno: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)


@dataclass
class If(Statement):
    """``if (cond) then_stmt [else else_stmt]``."""

    cond: Expression
    then_stmt: Statement
    else_stmt: Optional[Statement] = None


@dataclass
class CaseItem(Node):
    """One arm of a case statement; ``labels`` empty means ``default``."""

    labels: list
    stmt: Statement


@dataclass
class Case(Statement):
    """``case``/``casez`` statement."""

    subject: Expression
    items: list
    casez: bool = False
    lineno: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)


@dataclass
class For(Statement):
    """A statically-bounded ``for`` loop; unrolled during elaboration."""

    init: BlockingAssign
    cond: Expression
    step: BlockingAssign
    body: Statement


@dataclass
class Display(Statement):
    """``$display(fmt, args...)`` — the debugging primitive SignalCat handles."""

    format: str
    args: list = field(default_factory=list)
    lineno: int = field(default=0, compare=False)
    label: str = ""
    col: int = field(default=0, compare=False)


@dataclass
class Finish(Statement):
    """``$finish`` — terminates simulation."""


# ---------------------------------------------------------------------------
# Module items
# ---------------------------------------------------------------------------


@dataclass
class ModuleItem(Node):
    """Base class for module-level items."""


@dataclass
class Width(Node):
    """A ``[msb:lsb]`` range; bounds are expressions until elaboration."""

    msb: Expression
    lsb: Expression

    def bits(self):
        """Bit/element count; valid once both bounds are constant Numbers.

        Handles both descending (``[7:0]``) and ascending (``[0:9]``)
        ranges.
        """
        msb = self.msb.value if isinstance(self.msb, Number) else self.msb
        lsb = self.lsb.value if isinstance(self.lsb, Number) else self.lsb
        return abs(int(msb) - int(lsb)) + 1


@dataclass
class Declaration(ModuleItem):
    """A ``reg``/``wire``/``integer`` declaration, optionally a memory array."""

    kind: NetKind
    name: str
    width: Optional[Width] = None
    array: Optional[Width] = None
    signed: bool = False
    lineno: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)

    @property
    def bit_width(self):
        """Declared element width in bits (1 if scalar)."""
        if self.kind is NetKind.INTEGER:
            return 32
        return self.width.bits() if self.width is not None else 1

    @property
    def array_depth(self):
        """Number of array elements (1 if not a memory)."""
        return self.array.bits() if self.array is not None else 1


@dataclass
class ParameterDecl(ModuleItem):
    """A ``parameter`` or ``localparam`` declaration."""

    name: str
    value: Expression
    local: bool = False


@dataclass
class ContinuousAssign(ModuleItem):
    """A continuous ``assign lhs = rhs``."""

    lhs: Expression
    rhs: Expression
    lineno: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)


@dataclass
class SensItem(Node):
    """One sensitivity-list entry, e.g. ``posedge clk``."""

    edge: Edge
    signal: Optional[str] = None


@dataclass
class Always(ModuleItem):
    """An ``always @(...) stmt`` block."""

    sens: list
    body: Statement
    lineno: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)

    @property
    def is_combinational(self):
        """True for ``always @(*)`` blocks."""
        return any(item.edge is Edge.STAR for item in self.sens)


@dataclass
class PortConnection(Node):
    """A named port connection in an instance, ``.port(expr)``."""

    port: str
    expr: Optional[Expression]


@dataclass
class ParamOverride(Node):
    """A named parameter override in an instance, ``.NAME(value)``."""

    name: str
    value: Expression


@dataclass
class Instance(ModuleItem):
    """A module (or blackbox IP) instantiation."""

    module_name: str
    instance_name: str
    params: list = field(default_factory=list)
    ports: list = field(default_factory=list)
    lineno: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)


@dataclass
class Port(Node):
    """An ANSI-style module port."""

    direction: PortDirection
    kind: NetKind
    name: str
    width: Optional[Width] = None
    signed: bool = False

    @property
    def bit_width(self):
        """Declared port width in bits."""
        return self.width.bits() if self.width is not None else 1


@dataclass
class Module(Node):
    """A Verilog module: parameters, ports, and body items."""

    name: str
    params: list = field(default_factory=list)
    ports: list = field(default_factory=list)
    items: list = field(default_factory=list)

    def declarations(self):
        """All :class:`Declaration` items, including implicit port regs/wires."""
        return [item for item in self.items if isinstance(item, Declaration)]

    def find_declaration(self, name):
        """Return the :class:`Declaration` for *name*, or None."""
        for item in self.items:
            if isinstance(item, Declaration) and item.name == name:
                return item
        return None

    def port_map(self):
        """Mapping of port name to :class:`Port`."""
        return {port.name: port for port in self.ports}


@dataclass
class Source(Node):
    """A parsed source file: an ordered list of modules."""

    modules: list = field(default_factory=list)

    def module_map(self):
        """Mapping of module name to :class:`Module`."""
        return {module.name: module for module in self.modules}

    def find_module(self, name):
        """Return the module called *name* or raise KeyError."""
        for module in self.modules:
            if module.name == name:
                return module
        raise KeyError("no module named %r" % name)


LValue = Union[Identifier, Index, PartSelect, IndexedPartSelect, Concat]


def lvalue_base_name(expr):
    """Return the underlying signal name written by an lvalue expression.

    ``Concat`` lvalues have several bases; use :func:`lvalue_base_names` for
    those. Raises TypeError for non-lvalue expressions.
    """
    if isinstance(expr, Identifier):
        return expr.name
    if isinstance(expr, (Index, PartSelect, IndexedPartSelect)):
        return lvalue_base_name(expr.var)
    raise TypeError("not a simple lvalue: %r" % (expr,))


def lvalue_base_names(expr):
    """Return all signal names written by an lvalue (handles Concat)."""
    if isinstance(expr, Concat):
        names = []
        for part in expr.parts:
            names.extend(lvalue_base_names(part))
        return names
    return [lvalue_base_name(expr)]


# ---------------------------------------------------------------------------
# Structural equality
# ---------------------------------------------------------------------------


def _compared_fields(node):
    """Dataclass fields that participate in equality (compare=True)."""
    return [f for f in fields(node) if f.compare]


def ast_diff(a, b, path="<root>"):
    """First structural difference between two AST values, or None.

    Compares node types and every ``compare=True`` dataclass field
    (``lineno`` and friends are ignored, matching ``==``), recursing into
    nested nodes and lists. Returns a human-readable one-line description
    of the first divergence, e.g.
    ``"<root>.modules[0].items[3].rhs.op: '+' != '-'"``.
    """
    if isinstance(a, Node) or isinstance(b, Node):
        if type(a) is not type(b):
            return "%s: node type %s != %s" % (
                path,
                type(a).__name__,
                type(b).__name__,
            )
        for f in _compared_fields(a):
            diff = ast_diff(
                getattr(a, f.name), getattr(b, f.name), "%s.%s" % (path, f.name)
            )
            if diff is not None:
                return diff
        return None
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            return "%s: length %d != %d" % (path, len(a), len(b))
        for index, (left, right) in enumerate(zip(a, b)):
            diff = ast_diff(left, right, "%s[%d]" % (path, index))
            if diff is not None:
                return diff
        return None
    if a != b:
        return "%s: %r != %r" % (path, a, b)
    return None


def ast_equal(a, b):
    """True when two AST values are structurally equal.

    Equivalent to ``a == b`` for well-formed trees but tolerant of
    mixed list/tuple containers; use :func:`ast_diff` for a readable
    first-difference report when this returns False.
    """
    return ast_diff(a, b) is None
