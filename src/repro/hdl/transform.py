"""Expression/statement transformation helpers shared by elaboration and tools.

Provides a generic bottom-up expression rewriter (:func:`map_expression`),
statement rewriter (:func:`map_statements`), parameter substitution, and a
constant evaluator used for widths, case labels and for-loop unrolling.
"""

from __future__ import annotations

import dataclasses

from . import ast_nodes as ast


class NotConstantError(ValueError):
    """Raised when a supposedly-constant expression references a signal."""


def map_expression(expr, fn):
    """Rebuild *expr* bottom-up, applying *fn* to every sub-expression.

    *fn* receives each node after its children have been rewritten and
    returns the replacement node (often the same node).
    """
    if isinstance(expr, (ast.Number, ast.Identifier)):
        return fn(expr)
    if isinstance(expr, ast.Index):
        return fn(
            ast.Index(var=map_expression(expr.var, fn), index=map_expression(expr.index, fn))
        )
    if isinstance(expr, ast.PartSelect):
        return fn(
            ast.PartSelect(
                var=map_expression(expr.var, fn),
                msb=map_expression(expr.msb, fn),
                lsb=map_expression(expr.lsb, fn),
            )
        )
    if isinstance(expr, ast.IndexedPartSelect):
        return fn(
            ast.IndexedPartSelect(
                var=map_expression(expr.var, fn),
                base=map_expression(expr.base, fn),
                width=map_expression(expr.width, fn),
                ascending=expr.ascending,
            )
        )
    if isinstance(expr, ast.Concat):
        return fn(ast.Concat(parts=[map_expression(p, fn) for p in expr.parts]))
    if isinstance(expr, ast.Repeat):
        return fn(
            ast.Repeat(
                count=map_expression(expr.count, fn),
                expr=map_expression(expr.expr, fn),
            )
        )
    if isinstance(expr, ast.UnaryOp):
        return fn(ast.UnaryOp(op=expr.op, operand=map_expression(expr.operand, fn)))
    if isinstance(expr, ast.BinaryOp):
        return fn(
            ast.BinaryOp(
                op=expr.op,
                left=map_expression(expr.left, fn),
                right=map_expression(expr.right, fn),
            )
        )
    if isinstance(expr, ast.Ternary):
        return fn(
            ast.Ternary(
                cond=map_expression(expr.cond, fn),
                iftrue=map_expression(expr.iftrue, fn),
                iffalse=map_expression(expr.iffalse, fn),
            )
        )
    if isinstance(expr, ast.SizeCast):
        return fn(ast.SizeCast(width=expr.width, expr=map_expression(expr.expr, fn)))
    raise TypeError("cannot transform %r" % (expr,))


def map_statement(stmt, expr_fn, stmt_fn=None):
    """Rebuild *stmt* with every expression rewritten through *expr_fn*.

    If *stmt_fn* is given it is applied to each rebuilt statement and may
    return a replacement statement, a list of statements (spliced into the
    enclosing block), or None to drop the statement.
    """

    def rebuild(node):
        if isinstance(node, ast.Block):
            statements = []
            for inner in node.statements:
                result = map_statement(inner, expr_fn, stmt_fn)
                if result is None:
                    continue
                if isinstance(result, list):
                    statements.extend(result)
                else:
                    statements.append(result)
            return ast.Block(statements=statements)
        if isinstance(node, ast.NonblockingAssign):
            return ast.NonblockingAssign(
                lhs=map_expression(node.lhs, expr_fn),
                rhs=map_expression(node.rhs, expr_fn),
                lineno=node.lineno,
            )
        if isinstance(node, ast.BlockingAssign):
            return ast.BlockingAssign(
                lhs=map_expression(node.lhs, expr_fn),
                rhs=map_expression(node.rhs, expr_fn),
                lineno=node.lineno,
            )
        if isinstance(node, ast.If):
            return ast.If(
                cond=map_expression(node.cond, expr_fn),
                then_stmt=_one(map_statement(node.then_stmt, expr_fn, stmt_fn)),
                else_stmt=(
                    _one(map_statement(node.else_stmt, expr_fn, stmt_fn))
                    if node.else_stmt is not None
                    else None
                ),
            )
        if isinstance(node, ast.Case):
            return ast.Case(
                subject=map_expression(node.subject, expr_fn),
                items=[
                    ast.CaseItem(
                        labels=[map_expression(l, expr_fn) for l in item.labels],
                        stmt=_one(map_statement(item.stmt, expr_fn, stmt_fn)),
                    )
                    for item in node.items
                ],
                casez=node.casez,
            )
        if isinstance(node, ast.For):
            return ast.For(
                init=map_statement(node.init, expr_fn),
                cond=map_expression(node.cond, expr_fn),
                step=map_statement(node.step, expr_fn),
                body=_one(map_statement(node.body, expr_fn, stmt_fn)),
            )
        if isinstance(node, ast.Display):
            return ast.Display(
                format=node.format,
                args=[map_expression(a, expr_fn) for a in node.args],
                lineno=node.lineno,
                label=node.label,
            )
        if isinstance(node, ast.Finish):
            return ast.Finish()
        raise TypeError("cannot transform %r" % (node,))

    rebuilt = rebuild(stmt)
    if stmt_fn is not None and not isinstance(rebuilt, ast.Block):
        return stmt_fn(rebuilt)
    return rebuilt


def _one(result):
    """Normalize a map_statement result to a single statement."""
    if result is None:
        return ast.Block(statements=[])
    if isinstance(result, list):
        if len(result) == 1:
            return result[0]
        return ast.Block(statements=result)
    return result


def substitute(expr, env):
    """Replace identifiers found in *env* (name -> int) with Number nodes."""

    def fn(node):
        if isinstance(node, ast.Identifier) and node.name in env:
            return ast.Number(value=env[node.name])
        return node

    return map_expression(expr, fn)


def const_eval(expr, env=None):
    """Evaluate a constant expression to a Python int.

    *env* maps parameter names to ints. Raises :class:`NotConstantError`
    when the expression references anything else.
    """
    env = env or {}
    if isinstance(expr, ast.Number):
        return expr.value
    if isinstance(expr, ast.Identifier):
        if expr.name in env:
            return env[expr.name]
        raise NotConstantError("non-constant identifier %r" % expr.name)
    if isinstance(expr, ast.UnaryOp):
        value = const_eval(expr.operand, env)
        if expr.op == "-":
            return -value
        if expr.op == "~":
            return ~value
        if expr.op == "!":
            return int(value == 0)
        raise NotConstantError("unsupported constant unary %s" % expr.op)
    if isinstance(expr, ast.BinaryOp):
        left = const_eval(expr.left, env)
        right = const_eval(expr.right, env)
        ops = {
            "+": lambda: left + right,
            "-": lambda: left - right,
            "*": lambda: left * right,
            # Division by zero yields 0, matching the simulator's
            # two-state semantics (so constant folding never diverges
            # from runtime evaluation).
            "/": lambda: left // right if right else 0,
            "%": lambda: left % right if right else 0,
            "<<": lambda: left << right,
            ">>": lambda: left >> right,
            "<": lambda: int(left < right),
            "<=": lambda: int(left <= right),
            ">": lambda: int(left > right),
            ">=": lambda: int(left >= right),
            "==": lambda: int(left == right),
            "!=": lambda: int(left != right),
            "&&": lambda: int(bool(left) and bool(right)),
            "||": lambda: int(bool(left) or bool(right)),
            "&": lambda: left & right,
            "|": lambda: left | right,
            "^": lambda: left ^ right,
        }
        if expr.op in ops:
            return ops[expr.op]()
        raise NotConstantError("unsupported constant binary %s" % expr.op)
    if isinstance(expr, ast.Ternary):
        return (
            const_eval(expr.iftrue, env)
            if const_eval(expr.cond, env)
            else const_eval(expr.iffalse, env)
        )
    if isinstance(expr, ast.SizeCast):
        return const_eval(expr.expr, env) & ((1 << expr.width) - 1)
    if isinstance(expr, ast.Concat):
        raise NotConstantError("constant concat unsupported")
    raise NotConstantError("non-constant expression %r" % (expr,))


def try_const_eval(expr, env=None):
    """Like :func:`const_eval` but returns None instead of raising."""
    try:
        return const_eval(expr, env)
    except NotConstantError:
        return None


def fold_constants(expr, env):
    """Substitute *env* and collapse fully-constant subtrees to Numbers."""

    def fn(node):
        if isinstance(node, ast.Identifier) and node.name in env:
            return ast.Number(value=env[node.name])
        if isinstance(node, (ast.Number, ast.Identifier)):
            return node
        value = try_const_eval(node)
        if value is not None and value >= 0:
            width = node.width if isinstance(node, ast.SizeCast) else None
            return ast.Number(value=value, width=width)
        return node

    return map_expression(expr, fn)


def rename_identifiers(expr, rename):
    """Rewrite identifiers through the *rename* mapping (name -> name)."""

    def fn(node):
        if isinstance(node, ast.Identifier) and node.name in rename:
            return ast.Identifier(name=rename[node.name])
        return node

    return map_expression(expr, fn)
