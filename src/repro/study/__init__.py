"""The 68-bug study of open-source FPGA designs (§3, Table 1)."""

from .database import (
    BUGS,
    DESIGNS,
    CollectionMethod,
    StudiedBug,
    bug_by_id,
    bugs_in_design,
    testbed_link,
)
from .taxonomy import (
    TABLE1_ORDER,
    TABLE1_SYMPTOMS,
    Table1Row,
    build_table1,
    class_counts,
    designs_with,
    format_table1,
    subclass_counts,
)

__all__ = [
    "BUGS",
    "DESIGNS",
    "StudiedBug",
    "CollectionMethod",
    "bug_by_id",
    "bugs_in_design",
    "testbed_link",
    "Table1Row",
    "TABLE1_ORDER",
    "TABLE1_SYMPTOMS",
    "build_table1",
    "format_table1",
    "subclass_counts",
    "class_counts",
    "designs_with",
]
