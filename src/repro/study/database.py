"""The 68-bug study database (§3, Table 1).

Each :class:`StudiedBug` records one real-world bug examined by the
study: the design it was found in, how it was collected (commit history,
GitHub issue, or direct developer communication), its subclass, and its
observed symptoms. Twenty of the bugs are reproduced in
:mod:`repro.testbed`; their ``testbed_id`` links the two.

The aggregate structure matches Table 1 exactly:

* 3 classes, 13 subclasses, 68 bugs total;
* per-subclass counts (5 buffer overflows, 12 bit truncations, ...);
* the per-subclass symptom checkmarks;
* bit truncation bugs found in 7 different designs (§3.2.2);
* erroneous expressions split 5 control-flow / 5 data-flow (§3.4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..testbed.metadata import BugSubclass, Symptom

#: The 19 open-source designs the study examined (§3).
DESIGNS = [
    "SHA512",                 # HardCloud sample (HARP)
    "Reed-Solomon Decoder",   # HardCloud sample (HARP)
    "Grayscale",              # HardCloud sample (HARP)
    "Optimus",                # HARP hypervisor
    "SDSPI",                  # ZipCPU SD-card controller
    "AXI-Lite Demo",          # Xilinx example endpoint
    "AXI-Stream Demo",        # Xilinx example endpoint
    "FFT",                    # ZipCPU FFT
    "ZipCPU AXI Cores",       # ZipCPU bus components
    "OpenWiFi",               # open-sdr/openwifi-hw
    "Nyuzi GPGPU",            # jbush001/NyuziProcessor
    "CVA6",                   # openhwgroup/cva6 RISC-V CPU
    "VexRiscv",               # SpinalHDL/VexRiscv RISC-V CPU
    "Bitcoin Miner",          # Open-Source-FPGA-Bitcoin-Miner
    "Corundum NIC",           # corundum/corundum
    "Verilog-Ethernet",       # alexforencich/verilog-ethernet
    "ADI HDL Library",        # analogdevicesinc/hdl
    "Verilog-AXIS",           # alexforencich/verilog-axis
    "FADD",                   # really-simple-fadd (developer-provided)
]


class CollectionMethod:
    """How a bug was gathered (§3, Bug Collection)."""

    COMMIT = "commit history"
    ISSUE = "github issue"
    DIRECT = "developer communication"
    BLOG = "zipcpu article"


@dataclass(frozen=True)
class StudiedBug:
    """One of the 68 studied bugs."""

    bug_id: str
    design: str
    subclass: BugSubclass
    symptoms: frozenset
    description: str
    collection: str
    #: Table 2 id when reproduced in the testbed.
    testbed_id: Optional[str] = None
    #: For erroneous expressions: "control" or "data" flow (§3.4.4).
    flow: Optional[str] = None


def _bug(number, design, subclass, symptoms, description, collection,
         testbed_id=None, flow=None):
    return StudiedBug(
        bug_id="B%02d" % number,
        design=design,
        subclass=subclass,
        symptoms=frozenset(symptoms),
        description=description,
        collection=collection,
        testbed_id=testbed_id,
        flow=flow,
    )


def bug_by_id(bug_id):
    """Look up a studied bug by its ``B##`` id."""
    for bug in BUGS:
        if bug.bug_id == bug_id:
            return bug
    raise KeyError("no studied bug %r" % bug_id)


def bugs_in_design(design):
    """All studied bugs found in *design*."""
    return [bug for bug in BUGS if bug.design == design]


def testbed_link(testbed_id):
    """The studied bug reproduced as testbed entry *testbed_id*."""
    for bug in BUGS:
        if bug.testbed_id == testbed_id:
            return bug
    raise KeyError("no studied bug links to testbed id %r" % testbed_id)


_S = Symptom
_C = BugSubclass

BUGS = [
    # -- Buffer Overflow (5) -- symptom: data loss -------------------------
    _bug(1, "Reed-Solomon Decoder", _C.BUFFER_OVERFLOW, [_S.LOSS, _S.STUCK],
         "symbol buffer one entry short of the maximum codeword; the "
         "parity write is dropped", CollectionMethod.COMMIT, "D1"),
    _bug(2, "Grayscale", _C.BUFFER_OVERFLOW, [_S.LOSS, _S.STUCK],
         "output FIFO overflows under a full-rate read burst",
         CollectionMethod.COMMIT, "D2"),
    _bug(3, "Optimus", _C.BUFFER_OVERFLOW, [_S.LOSS, _S.STUCK],
         "reply ring indexed by a free-running pointer with no occupancy "
         "check", CollectionMethod.DIRECT, "D3"),
    _bug(4, "Verilog-Ethernet", _C.BUFFER_OVERFLOW, [_S.LOSS],
         "frame FIFO wraps its write pointer for oversized frames",
         CollectionMethod.COMMIT, "D4"),
    _bug(5, "Corundum NIC", _C.BUFFER_OVERFLOW, [_S.LOSS],
         "descriptor queue accepts more outstanding entries than it can "
         "store", CollectionMethod.ISSUE),
    # -- Bit Truncation (12, in 7 designs) -- incorrect output / external --
    _bug(6, "SHA512", _C.BIT_TRUNCATION, [_S.INCORRECT, _S.EXTERNAL],
         "cast-before-shift drops address bits [47:42]",
         CollectionMethod.COMMIT, "D5"),
    _bug(7, "SHA512", _C.BIT_TRUNCATION, [_S.INCORRECT],
         "message length register narrower than the length field",
         CollectionMethod.COMMIT),
    _bug(8, "FFT", _C.BIT_TRUNCATION, [_S.INCORRECT],
         "butterfly sum stored without its growth bit",
         CollectionMethod.BLOG, "D6"),
    _bug(9, "FFT", _C.BIT_TRUNCATION, [_S.INCORRECT],
         "twiddle-factor product keeps only the low half without rounding",
         CollectionMethod.BLOG),
    _bug(10, "OpenWiFi", _C.BIT_TRUNCATION, [_S.INCORRECT],
         "RSSI accumulator truncated before averaging",
         CollectionMethod.COMMIT),
    _bug(11, "OpenWiFi", _C.BIT_TRUNCATION, [_S.INCORRECT],
         "timestamp compare uses the low 32 bits of a 64-bit counter",
         CollectionMethod.ISSUE),
    _bug(12, "Nyuzi GPGPU", _C.BIT_TRUNCATION, [_S.INCORRECT],
         "floating-point significand shifted after narrowing",
         CollectionMethod.COMMIT),
    _bug(13, "CVA6", _C.BIT_TRUNCATION, [_S.INCORRECT, _S.EXTERNAL],
         "physical address truncated to the virtual width in the PTW",
         CollectionMethod.ISSUE),
    _bug(14, "CVA6", _C.BIT_TRUNCATION, [_S.INCORRECT],
         "branch offset sign bit lost in a narrowed adder",
         CollectionMethod.COMMIT),
    _bug(15, "Bitcoin Miner", _C.BIT_TRUNCATION, [_S.INCORRECT],
         "nonce counter wraps a 28-bit register against a 32-bit search "
         "space", CollectionMethod.ISSUE),
    _bug(16, "Bitcoin Miner", _C.BIT_TRUNCATION, [_S.INCORRECT],
         "midstate word assigned through a narrower temporary",
         CollectionMethod.COMMIT),
    _bug(17, "ADI HDL Library", _C.BIT_TRUNCATION, [_S.INCORRECT],
         "DMA burst length register drops the high bits of large bursts",
         CollectionMethod.COMMIT),
    # -- Misindexing (5) -- incorrect output / data loss --------------------
    _bug(18, "FADD", _C.MISINDEXING, [_S.INCORRECT],
         "IEEE-754 fraction extracted as [23:0] instead of [22:0]",
         CollectionMethod.DIRECT, "D7"),
    _bug(19, "Verilog-AXIS", _C.MISINDEXING, [_S.INCORRECT],
         "switch reads the destination from the wrong header nibble",
         CollectionMethod.COMMIT, "D8"),
    _bug(20, "Nyuzi GPGPU", _C.MISINDEXING, [_S.LOSS],
         "lane index off by one drops the last vector element",
         CollectionMethod.COMMIT),
    _bug(21, "OpenWiFi", _C.MISINDEXING, [_S.INCORRECT],
         "subcarrier table indexed with a bit-reversed address",
         CollectionMethod.ISSUE),
    _bug(22, "VexRiscv", _C.MISINDEXING, [_S.LOSS],
         "CSR mask selects the wrong interrupt-pending bit",
         CollectionMethod.ISSUE),
    # -- Endianness Mismatch (1) -- wrong value after assignment -----------
    _bug(23, "SDSPI", _C.ENDIANNESS_MISMATCH, [_S.INCORRECT],
         "response assembled little-endian for a big-endian checksum",
         CollectionMethod.BLOG, "D9"),
    # -- Failure-to-Update (5) -- loss / invalid output / interface --------
    _bug(24, "SHA512", _C.FAILURE_TO_UPDATE, [_S.INCORRECT],
         "digest accumulator not re-seeded on a new request",
         CollectionMethod.COMMIT, "D10"),
    _bug(25, "Verilog-Ethernet", _C.FAILURE_TO_UPDATE, [_S.LOSS],
         "frame-drop flag never cleared after an aborted frame",
         CollectionMethod.COMMIT, "D11"),
    _bug(26, "Verilog-Ethernet", _C.FAILURE_TO_UPDATE, [_S.INCORRECT],
         "frame length counter not cleared on commit",
         CollectionMethod.COMMIT, "D12"),
    _bug(27, "Verilog-AXIS", _C.FAILURE_TO_UPDATE, [_S.INCORRECT],
         "length measurer only resets its counter during idle gaps",
         CollectionMethod.COMMIT, "D13"),
    _bug(28, "Corundum NIC", _C.FAILURE_TO_UPDATE, [_S.EXTERNAL],
         "completion-queue ready flag not reset, violating the host "
         "interface contract", CollectionMethod.ISSUE),
    # -- Deadlock (3) -- infinite stall -------------------------------------
    _bug(29, "SDSPI", _C.DEADLOCK, [_S.STUCK],
         "command accept and response ready wait on each other",
         CollectionMethod.BLOG, "C1"),
    _bug(30, "Nyuzi GPGPU", _C.DEADLOCK, [_S.STUCK],
         "L1 miss queue and writeback stage hold each other's grant",
         CollectionMethod.ISSUE),
    _bug(31, "CVA6", _C.DEADLOCK, [_S.STUCK],
         "store buffer flush waits for a fence that waits for the flush",
         CollectionMethod.ISSUE),
    # -- Producer-Consumer Mismatch (3) -- loss / invalid / stall ----------
    _bug(32, "Optimus", _C.PRODUCER_CONSUMER_MISMATCH,
         [_S.LOSS, _S.STUCK],
         "two producers valid in one cycle; the losing channel's staging "
         "register is overwritten", CollectionMethod.DIRECT, "C2"),
    _bug(33, "OpenWiFi", _C.PRODUCER_CONSUMER_MISMATCH, [_S.INCORRECT],
         "sample producer outruns the FFT consumer on wide channels",
         CollectionMethod.ISSUE),
    _bug(34, "Corundum NIC", _C.PRODUCER_CONSUMER_MISMATCH, [_S.LOSS],
         "event aggregator coalesces two same-cycle events into one",
         CollectionMethod.COMMIT),
    # -- Signal Asynchrony (10) -- incorrect output -------------------------
    _bug(35, "SDSPI", _C.SIGNAL_ASYNCHRONY, [_S.INCORRECT],
         "response valid asserted one cycle before the buffered data",
         CollectionMethod.BLOG, "C3"),
    _bug(36, "Verilog-AXIS", _C.SIGNAL_ASYNCHRONY, [_S.LOSS],
         "FIFO output stage reloads regardless of the tvalid/tready "
         "handshake", CollectionMethod.COMMIT, "C4"),
    _bug(37, "OpenWiFi", _C.SIGNAL_ASYNCHRONY, [_S.INCORRECT],
         "IQ sample pair crosses pipeline stages one cycle apart",
         CollectionMethod.COMMIT),
    _bug(38, "Nyuzi GPGPU", _C.SIGNAL_ASYNCHRONY, [_S.INCORRECT],
         "scoreboard clear lags the result bus by a stage",
         CollectionMethod.COMMIT),
    _bug(39, "CVA6", _C.SIGNAL_ASYNCHRONY, [_S.INCORRECT],
         "exception valid raised before the trap value register updates",
         CollectionMethod.ISSUE),
    _bug(40, "VexRiscv", _C.SIGNAL_ASYNCHRONY, [_S.INCORRECT],
         "hazard bypass selects a value one stage too early",
         CollectionMethod.ISSUE),
    _bug(41, "Bitcoin Miner", _C.SIGNAL_ASYNCHRONY, [_S.INCORRECT],
         "golden-nonce strobe fires a cycle before the nonce register",
         CollectionMethod.COMMIT),
    _bug(42, "Corundum NIC", _C.SIGNAL_ASYNCHRONY, [_S.INCORRECT],
         "PTP timestamp valid leads the captured timestamp",
         CollectionMethod.COMMIT),
    _bug(43, "ADI HDL Library", _C.SIGNAL_ASYNCHRONY, [_S.INCORRECT],
         "DMA descriptor fields latched across two unaligned cycles",
         CollectionMethod.COMMIT),
    _bug(44, "Verilog-Ethernet", _C.SIGNAL_ASYNCHRONY, [_S.INCORRECT],
         "checksum valid not delayed with the pipelined sum",
         CollectionMethod.COMMIT),
    # -- Use-Without-Valid (1) -- incorrect output --------------------------
    _bug(45, "OpenWiFi", _C.USE_WITHOUT_VALID, [_S.INCORRECT],
         "AGC accumulates gain samples while the valid flag is low",
         CollectionMethod.ISSUE),
    # -- Protocol Violation (3) -- invalid / stall / external ---------------
    _bug(46, "AXI-Lite Demo", _C.PROTOCOL_VIOLATION, [_S.EXTERNAL],
         "BVALID deasserted before the BREADY handshake",
         CollectionMethod.BLOG, "S1"),
    _bug(47, "AXI-Stream Demo", _C.PROTOCOL_VIOLATION, [_S.EXTERNAL],
         "TVALID dropped without TREADY; beats lost under backpressure",
         CollectionMethod.BLOG, "S2"),
    _bug(48, "ZipCPU AXI Cores", _C.PROTOCOL_VIOLATION,
         [_S.STUCK, _S.INCORRECT],
         "write strobes ignored on narrow AXI writes; bus hangs on "
         "unaligned bursts", CollectionMethod.BLOG),
    # -- API Misuse (3) -- incorrect output ---------------------------------
    _bug(49, "ADI HDL Library", _C.API_MISUSE, [_S.INCORRECT],
         "comparator instance wired with swapped operand ports",
         CollectionMethod.COMMIT),
    _bug(50, "Grayscale", _C.API_MISUSE, [_S.INCORRECT],
         "altsyncram instantiated with read-during-write set to OLD_DATA "
         "where NEW_DATA was assumed", CollectionMethod.COMMIT),
    _bug(51, "Corundum NIC", _C.API_MISUSE, [_S.INCORRECT],
         "dcfifo used with mismatched read/write width parameters",
         CollectionMethod.ISSUE),
    # -- Incomplete Implementation (7) -- incorrect output ------------------
    _bug(52, "Verilog-AXIS", _C.INCOMPLETE_IMPLEMENTATION, [_S.INCORRECT],
         "width adapter does not handle a partial-tkeep final beat",
         CollectionMethod.COMMIT, "S3"),
    _bug(53, "CVA6", _C.INCOMPLETE_IMPLEMENTATION, [_S.INCORRECT],
         "misaligned load-reserved not handled in the LR/SC unit",
         CollectionMethod.ISSUE),
    _bug(54, "VexRiscv", _C.INCOMPLETE_IMPLEMENTATION, [_S.INCORRECT],
         "debug single-step skips the instruction after an interrupt",
         CollectionMethod.ISSUE),
    _bug(55, "OpenWiFi", _C.INCOMPLETE_IMPLEMENTATION, [_S.INCORRECT],
         "short-GI symbol timing unimplemented for 40 MHz channels",
         CollectionMethod.ISSUE),
    _bug(56, "Nyuzi GPGPU", _C.INCOMPLETE_IMPLEMENTATION, [_S.INCORRECT],
         "denormal results flushed without setting the status flag",
         CollectionMethod.COMMIT),
    _bug(57, "Verilog-Ethernet", _C.INCOMPLETE_IMPLEMENTATION,
         [_S.INCORRECT],
         "pause frames not parsed; flow control silently ignored",
         CollectionMethod.ISSUE),
    _bug(58, "ZipCPU AXI Cores", _C.INCOMPLETE_IMPLEMENTATION,
         [_S.INCORRECT],
         "exclusive-access responses unimplemented on the AXI slave",
         CollectionMethod.BLOG),
    # -- Erroneous Expression (10: 5 control-flow, 5 data-flow) -------------
    _bug(59, "Bitcoin Miner", _C.ERRONEOUS_EXPRESSION, [_S.INCORRECT],
         "difficulty compare uses > where >= is required",
         CollectionMethod.COMMIT, flow="control"),
    _bug(60, "CVA6", _C.ERRONEOUS_EXPRESSION, [_S.INCORRECT],
         "branch-taken condition inverted for BLTU",
         CollectionMethod.ISSUE, flow="control"),
    _bug(61, "VexRiscv", _C.ERRONEOUS_EXPRESSION, [_S.INCORRECT],
         "interrupt enable gates on mstatus.MPIE instead of MIE",
         CollectionMethod.ISSUE, flow="control"),
    _bug(62, "SDSPI", _C.ERRONEOUS_EXPRESSION, [_S.INCORRECT],
         "busy-wait loop tests the command index, not the busy bit",
         CollectionMethod.BLOG, flow="control"),
    _bug(63, "OpenWiFi", _C.ERRONEOUS_EXPRESSION, [_S.INCORRECT],
         "channel-busy condition ORs the wrong carrier-sense source",
         CollectionMethod.COMMIT, flow="control"),
    _bug(64, "Nyuzi GPGPU", _C.ERRONEOUS_EXPRESSION, [_S.INCORRECT],
         "reciprocal estimate adds the exponent bias twice",
         CollectionMethod.COMMIT, flow="data"),
    _bug(65, "FFT", _C.ERRONEOUS_EXPRESSION, [_S.INCORRECT],
         "imaginary part negated in only one butterfly leg",
         CollectionMethod.BLOG, flow="data"),
    _bug(66, "ADI HDL Library", _C.ERRONEOUS_EXPRESSION, [_S.INCORRECT],
         "sample swap computes A+B where A-B was intended",
         CollectionMethod.COMMIT, flow="data"),
    _bug(67, "Corundum NIC", _C.ERRONEOUS_EXPRESSION, [_S.INCORRECT],
         "checksum folds carries with ^ instead of +",
         CollectionMethod.COMMIT, flow="data"),
    _bug(68, "Bitcoin Miner", _C.ERRONEOUS_EXPRESSION, [_S.INCORRECT],
         "SHA round constant table rotated by one position",
         CollectionMethod.COMMIT, flow="data"),
]
