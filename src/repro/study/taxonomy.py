"""Bug taxonomy and the Table 1 generator (§3.1).

``TABLE1_SYMPTOMS`` records each subclass's *common* symptoms as Table 1
prints them (individual bugs may show extra symptoms — e.g. several
buffer overflows also hang the application, which Table 2 reports).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..testbed.metadata import BugClass, BugSubclass, Symptom
from .database import BUGS

#: Table 1's per-subclass "Common Symptoms" checkmarks.
TABLE1_SYMPTOMS = {
    BugSubclass.BUFFER_OVERFLOW: frozenset({Symptom.LOSS}),
    BugSubclass.BIT_TRUNCATION: frozenset({Symptom.INCORRECT, Symptom.EXTERNAL}),
    BugSubclass.MISINDEXING: frozenset({Symptom.LOSS, Symptom.INCORRECT}),
    BugSubclass.ENDIANNESS_MISMATCH: frozenset({Symptom.INCORRECT}),
    BugSubclass.FAILURE_TO_UPDATE: frozenset(
        {Symptom.LOSS, Symptom.INCORRECT, Symptom.EXTERNAL}
    ),
    BugSubclass.DEADLOCK: frozenset({Symptom.STUCK}),
    BugSubclass.PRODUCER_CONSUMER_MISMATCH: frozenset(
        {Symptom.STUCK, Symptom.LOSS, Symptom.INCORRECT}
    ),
    BugSubclass.SIGNAL_ASYNCHRONY: frozenset({Symptom.INCORRECT}),
    BugSubclass.USE_WITHOUT_VALID: frozenset({Symptom.INCORRECT}),
    BugSubclass.PROTOCOL_VIOLATION: frozenset(
        {Symptom.STUCK, Symptom.INCORRECT, Symptom.EXTERNAL}
    ),
    BugSubclass.API_MISUSE: frozenset({Symptom.INCORRECT}),
    BugSubclass.INCOMPLETE_IMPLEMENTATION: frozenset({Symptom.INCORRECT}),
    BugSubclass.ERRONEOUS_EXPRESSION: frozenset({Symptom.INCORRECT}),
}

#: Table 1 row order.
TABLE1_ORDER = [
    BugSubclass.BUFFER_OVERFLOW,
    BugSubclass.BIT_TRUNCATION,
    BugSubclass.MISINDEXING,
    BugSubclass.ENDIANNESS_MISMATCH,
    BugSubclass.FAILURE_TO_UPDATE,
    BugSubclass.DEADLOCK,
    BugSubclass.PRODUCER_CONSUMER_MISMATCH,
    BugSubclass.SIGNAL_ASYNCHRONY,
    BugSubclass.USE_WITHOUT_VALID,
    BugSubclass.PROTOCOL_VIOLATION,
    BugSubclass.API_MISUSE,
    BugSubclass.INCOMPLETE_IMPLEMENTATION,
    BugSubclass.ERRONEOUS_EXPRESSION,
]


@dataclass
class Table1Row:
    """One row of Table 1."""

    bug_class: BugClass
    subclass: BugSubclass
    count: int
    symptoms: frozenset

    def checkmarks(self):
        """Symptom checkmarks in Table 1 column order."""
        order = [Symptom.STUCK, Symptom.LOSS, Symptom.INCORRECT, Symptom.EXTERNAL]
        return ["x" if s in self.symptoms else "" for s in order]


def subclass_counts(bugs=None):
    """Number of studied bugs per subclass."""
    bugs = BUGS if bugs is None else bugs
    return Counter(bug.subclass for bug in bugs)


def class_counts(bugs=None):
    """Number of studied bugs per top-level class."""
    bugs = BUGS if bugs is None else bugs
    return Counter(bug.subclass.bug_class for bug in bugs)


def build_table1(bugs=None):
    """Regenerate Table 1 from the study database."""
    counts = subclass_counts(bugs)
    return [
        Table1Row(
            bug_class=subclass.bug_class,
            subclass=subclass,
            count=counts[subclass],
            symptoms=TABLE1_SYMPTOMS[subclass],
        )
        for subclass in TABLE1_ORDER
    ]


def format_table1(rows=None):
    """Render Table 1 as aligned text (the benchmark harness prints this)."""
    rows = rows or build_table1()
    header = "%-16s %-28s %5s | %-5s %-4s %-6s %-4s" % (
        "Class", "Subclass", "Bugs", "Stuck", "Loss", "Incor.", "Ext.",
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        marks = row.checkmarks()
        lines.append(
            "%-16s %-28s %5d | %-5s %-4s %-6s %-4s" % (
                row.bug_class.value,
                row.subclass.value,
                row.count,
                marks[0], marks[1], marks[2], marks[3],
            )
        )
    lines.append("-" * len(header))
    lines.append("Total: %d bugs" % sum(row.count for row in rows))
    return "\n".join(lines)


def designs_with(subclass, bugs=None):
    """Distinct designs containing bugs of *subclass*."""
    bugs = BUGS if bugs is None else bugs
    return sorted({bug.design for bug in bugs if bug.subclass is subclass})
