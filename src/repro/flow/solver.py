"""Generic monotone fixpoint solver (the flow engine's core loop).

Every analysis in :mod:`repro.flow` — clock-domain inference, reaching
definitions, dataflow slicing — is an instance of the same schema: a
finite set of nodes, a dependency relation, a join-semilattice of facts,
and a monotone transfer function. :func:`solve` runs the classic
worklist algorithm over that schema.

Determinism matters here as much as convergence: the fuzz campaign's
``flow`` oracle requires byte-identical verdicts across runs, so the
worklist is processed in sorted node order and every container the
solver touches is ordered.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass
class FixpointResult:
    """Outcome of one fixpoint computation.

    ``converged`` is False only when the iteration cap was hit — for a
    monotone transfer over a finite lattice that indicates a bug in the
    transfer function, and the ``flow`` fuzz oracle fails on it.
    """

    values: dict
    iterations: int
    converged: bool


def solve(nodes, dependencies, transfer, bottom=frozenset(), join=None,
          max_iterations=None):
    """Run a monotone worklist fixpoint over *nodes*.

    Parameters
    ----------
    nodes:
        Iterable of hashable node names.
    dependencies:
        ``{node: iterable of predecessor nodes}`` — the nodes whose facts
        *node*'s transfer reads. Successors are derived by inversion, so
        a change to ``p`` re-queues every node depending on ``p``.
    transfer:
        ``transfer(node, values) -> fact`` — must be monotone in the
        facts it reads.
    bottom:
        Initial fact for every node (default: empty frozenset).
    join:
        Optional ``join(old, new) -> fact``; default keeps ``transfer``'s
        output as-is (transfer computes the full join itself).
    max_iterations:
        Safety cap on node evaluations; defaults to
        ``max(64, 4 * len(nodes) ** 2)`` which a monotone transfer over
        the lattices used here cannot exceed.
    """
    ordered = sorted(set(nodes))
    dependents = {node: set() for node in ordered}
    for node in ordered:
        for dep in dependencies.get(node, ()):
            if dep in dependents:
                dependents[dep].add(node)
    values = {node: bottom for node in ordered}
    if max_iterations is None:
        max_iterations = max(64, 4 * len(ordered) * max(len(ordered), 2))
    worklist = deque(ordered)
    queued = set(ordered)
    iterations = 0
    while worklist:
        if iterations >= max_iterations:
            return FixpointResult(
                values=values, iterations=iterations, converged=False
            )
        node = worklist.popleft()
        queued.discard(node)
        iterations += 1
        fact = transfer(node, values)
        if join is not None:
            fact = join(values[node], fact)
        if fact != values[node]:
            values[node] = fact
            for successor in sorted(dependents[node]):
                if successor not in queued:
                    worklist.append(successor)
                    queued.add(successor)
    return FixpointResult(values=values, iterations=iterations, converged=True)


def reachable(edges, start):
    """Forward closure of *start* over ``{src: iterable(dst)}`` edges.

    A convenience for boolean reachability (the bool lattice is such a
    common :func:`solve` instance that a direct closure is clearer).
    Deterministic: returns a sorted list.
    """
    seen = set(start if isinstance(start, (set, frozenset, list, tuple))
               else [start])
    frontier = sorted(seen)
    while frontier:
        node = frontier.pop()
        for dst in sorted(edges.get(node, ())):
            if dst not in seen:
                seen.add(dst)
                frontier.append(dst)
    return sorted(seen)
