"""Abstract value domains for :mod:`repro.flow.absint`.

One :class:`AbsValue` is the reduced product of three domains over the
unsigned ``width``-bit integers the two-state simulator computes with:

* an **interval** ``[lo, hi]`` (unsigned; :meth:`signed_bounds` exposes
  the two's-complement reading for reporting);
* a **known-bits ternary**: ``ones`` are bit positions proven 1 in every
  concrete value, ``zeros`` proven 0; a position in neither mask is
  unknown (the 0/1/X ternary's X in the *value* sense);
* an **X-taint mask** ``xmask``: bit positions that may carry an
  uninitialized value on real four-state hardware (seeded at registers
  with no reset arc and propagated through every operation). ``xmask``
  never constrains concrete two-state values — it is provenance for the
  L0504 checker, not a soundness claim.

The reduction (:func:`_reduce`) propagates information between the
interval and the bit masks both ways, so e.g. an AND with a constant
immediately tightens ``hi`` and a singleton interval pins every bit.

Everything is an immutable value object with total, deterministic
operations; the join/widen pair keeps fixpoint chains finite (widening
jumps a growing bound straight to the domain extreme, and the bit masks
only ever shrink toward unknown).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


def bit_mask(width):
    """All-ones mask for *width* bits (0 for non-positive widths)."""
    if width <= 0:
        return 0
    return (1 << width) - 1


def _reduce(width, lo, hi, ones, zeros):
    """Mutually tighten interval and bit masks; None on contradiction."""
    m = bit_mask(width)
    lo = max(0, lo)
    hi = min(hi, m)
    ones &= m
    zeros &= m
    if lo > hi or ones & zeros:
        return None
    # Bits above the highest reachable value are provably zero.
    zeros |= m ^ bit_mask(hi.bit_length())
    # Known ones give a floor; known zeros give a ceiling.
    lo = max(lo, ones)
    hi = min(hi, m ^ zeros)
    if lo > hi or ones & zeros:
        return None
    if lo == hi:
        ones = lo
        zeros = m ^ lo
    return lo, hi, ones, zeros


@dataclass(frozen=True)
class AbsValue:
    """One signal's abstract fact: interval x known bits x X taint."""

    width: int
    lo: int
    hi: int
    ones: int = 0
    zeros: int = 0
    xmask: int = 0

    # -- constructors -------------------------------------------------------

    @classmethod
    def make(cls, width, lo, hi, ones=0, zeros=0, xmask=0):
        """Reduced value; falls back to TOP on a contradictory request."""
        width = max(1, width)
        reduced = _reduce(width, lo, hi, ones, zeros)
        if reduced is None:
            return cls.top(width, xmask=xmask)
        lo, hi, ones, zeros = reduced
        return cls(width, lo, hi, ones, zeros, xmask & bit_mask(width))

    @classmethod
    def top(cls, width, xmask=0):
        """No information beyond the width bound."""
        width = max(1, width)
        return cls(width, 0, bit_mask(width), 0, 0, xmask & bit_mask(width))

    @classmethod
    def const(cls, value, width=None, xmask=0):
        """The singleton abstract value for a known constant."""
        if width is None:
            width = max(1, int(value).bit_length())
        width = max(1, width)
        value &= bit_mask(width)
        return cls.make(width, value, value, xmask=xmask)

    @classmethod
    def boolean(cls, xmask=0):
        """The 1-bit unknown truth value."""
        return cls.top(1, xmask=1 if xmask else 0)

    # -- predicates ---------------------------------------------------------

    @property
    def is_const(self):
        return self.lo == self.hi

    @property
    def const_value(self):
        return self.lo if self.lo == self.hi else None

    @property
    def is_top(self):
        m = bit_mask(self.width)
        return self.lo == 0 and self.hi == m and not self.ones and not self.zeros

    def truth(self):
        """Three-valued truthiness: True, False, or None (unknown)."""
        if self.hi == 0:
            return False
        if self.lo > 0 or self.ones:
            return True
        return None

    def can_be_zero(self):
        return self.lo == 0 and not self.ones

    def contains(self, value):
        """Is the concrete *value* within this abstract value? (soundness)"""
        return (
            self.lo <= value <= self.hi
            and not (value & self.zeros)
            and (value & self.ones) == self.ones
        )

    def signed_bounds(self):
        """Two's-complement (smin, smax) reading of the interval."""
        half = 1 << (self.width - 1)
        full = 1 << self.width
        if self.hi < half:
            return self.lo, self.hi
        if self.lo >= half:
            return self.lo - full, self.hi - full
        return max(self.lo, half) - full, min(self.hi, half - 1)

    # -- lattice operations -------------------------------------------------

    def join(self, other):
        """Least upper bound (hull of intervals, intersection of knowledge)."""
        width = max(self.width, other.width)
        a = self.resized(width)
        b = other.resized(width)
        return AbsValue.make(
            width,
            min(a.lo, b.lo),
            max(a.hi, b.hi),
            a.ones & b.ones,
            a.zeros & b.zeros,
            xmask=a.xmask | b.xmask,
        )

    def widen(self, new):
        """Widen ``self`` (the previous fact) against the grown ``new``.

        A growing bound jumps straight to the domain extreme so interval
        chains are finite; the bit masks on the growing side are dropped
        too (they are partly derived *from* the old bound and would
        re-cap the jump, turning one widening step into a per-bit
        doubling chain). Taint lives in a finite lattice and is taken
        from *new* unchanged.
        """
        width = max(self.width, new.width)
        old = self.resized(width)
        grown = new.resized(width)
        lo, ones = grown.lo, grown.ones
        hi, zeros = grown.hi, grown.zeros
        if grown.lo < old.lo:
            lo, ones = 0, 0
        if grown.hi > old.hi:
            hi, zeros = bit_mask(width), 0
        return AbsValue.make(width, lo, hi, ones, zeros, xmask=grown.xmask)

    # -- width adjustment ---------------------------------------------------

    def resized(self, width):
        """This value re-masked to *width* bits (``value & mask(width)``).

        Growing the width adds known-zero high bits; shrinking it keeps
        the low bits' knowledge and collapses the interval to the full
        range when the old interval does not fit (masking may wrap).
        """
        width = max(1, width)
        if width == self.width:
            return self
        m = bit_mask(width)
        if width > self.width:
            extra = m ^ bit_mask(self.width)
            return AbsValue.make(
                width, self.lo, self.hi, self.ones, self.zeros | extra,
                xmask=self.xmask,
            )
        if self.hi <= m:
            return AbsValue.make(
                width, self.lo, self.hi, self.ones & m, self.zeros & m,
                xmask=self.xmask & m,
            )
        return AbsValue.make(
            width, 0, m, self.ones & m, self.zeros & m, xmask=self.xmask & m
        )

    def with_xmask(self, xmask):
        """Same value knowledge, replaced taint mask."""
        return replace(self, xmask=xmask & bit_mask(self.width))

    # -- bit-level helpers (used by the abstract evaluator) -----------------

    def shifted_right(self, amount):
        """``value >> amount`` for a known non-negative *amount*."""
        width = max(1, self.width - amount)
        return AbsValue.make(
            width,
            self.lo >> amount,
            self.hi >> amount,
            self.ones >> amount,
            (self.zeros >> amount) | (bit_mask(width) ^ bit_mask(self.width - amount)),
            xmask=self.xmask >> amount,
        )

    def shifted_left(self, amount, width):
        """``(value << amount) & mask(width)`` for a known *amount*."""
        m = bit_mask(width)
        if amount >= width:
            return AbsValue.const(0, width)
        low_zero = bit_mask(min(amount, width))
        if self.hi << amount <= m:
            return AbsValue.make(
                width,
                self.lo << amount,
                self.hi << amount,
                (self.ones << amount) & m,
                ((self.zeros << amount) | low_zero) & m,
                xmask=(self.xmask << amount) & m,
            )
        # The shift can wrap: only the freshly-vacated low bits are known.
        return AbsValue.make(
            width, 0, m, 0, low_zero,
            xmask=m if self.xmask else 0,
        )

    # -- rendering ----------------------------------------------------------

    def to_dict(self):
        """Deterministic JSON-friendly rendering (the FactTable entry)."""
        return {
            "width": self.width,
            "lo": self.lo,
            "hi": self.hi,
            "ones": self.ones,
            "zeros": self.zeros,
            "xmask": self.xmask,
        }

    def describe(self):
        """Compact human-readable rendering for diagnostics."""
        if self.is_const:
            return "constant %d" % self.lo
        text = "[%d, %d]" % (self.lo, self.hi)
        if self.ones or self.zeros:
            bits = []
            for position in range(self.width - 1, -1, -1):
                bit = 1 << position
                if self.ones & bit:
                    bits.append("1")
                elif self.zeros & bit:
                    bits.append("0")
                else:
                    bits.append("x")
            text += " bits=%s" % "".join(bits)
        return text
