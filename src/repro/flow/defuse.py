"""Def-use chains, reaching definitions, and bit-aware payload slicing.

Built on :func:`repro.analysis.assignments.analyze_module`: every
assignment is a *definition* of its target, and every identifier an
assignment reads is a *use* — classified by position:

* ``data`` — the identifier feeds the assigned value;
* ``control`` — it only appears in the path constraint;
* ``index`` — it only selects where (array index / part-select base).

The *payload* refinement is the bit-aware half: an identifier is a
payload source only when the value's bits can actually flow into the
target — through arithmetic/bitwise/shift operators, concatenation,
selects, and ternary arms. Positions that collapse the value to one bit
(comparisons, logical operators, reductions) or merely steer it
(conditions, indices) are excluded. LossCheck's ``prune=True`` mode uses
this to restrict shadow instrumentation to registers that can carry the
Source payload toward the Sink.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl import ast_nodes as ast
from ..analysis.assignments import analyze_module
from ..analysis.ip_models import DEFAULT_IP_MODELS
from .solver import reachable

#: Binary operators whose result still carries operand payload bits.
_PAYLOAD_BINOPS = frozenset(
    ["+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~", "<<", ">>",
     "<<<", ">>>"]
)
#: Binary operators that collapse operands to a 1-bit verdict.
_VERDICT_BINOPS = frozenset(
    ["==", "!=", "===", "!==", "<", ">", "<=", ">=", "&&", "||"]
)
#: Unary operators preserving payload (vs 1-bit reductions / logical not).
_PAYLOAD_UNOPS = frozenset(["~", "-", "+"])


def payload_identifiers(expr):
    """Identifiers of *expr* in payload (value-carrying) positions."""
    names = []

    def visit(node, carrying):
        if isinstance(node, ast.Identifier):
            if carrying:
                names.append(node.name)
            return
        if isinstance(node, ast.BinaryOp):
            inner = carrying and node.op in _PAYLOAD_BINOPS
            if node.op in _VERDICT_BINOPS:
                inner = False
            visit(node.left, inner)
            visit(node.right, inner)
            return
        if isinstance(node, ast.UnaryOp):
            visit(node.operand, carrying and node.op in _PAYLOAD_UNOPS)
            return
        if isinstance(node, ast.Ternary):
            visit(node.cond, False)
            visit(node.iftrue, carrying)
            visit(node.iffalse, carrying)
            return
        if isinstance(node, ast.Index):
            visit(node.var, carrying)
            visit(node.index, False)
            return
        if isinstance(node, ast.PartSelect):
            visit(node.var, carrying)
            return
        if isinstance(node, ast.IndexedPartSelect):
            visit(node.var, carrying)
            visit(node.base, False)
            return
        if isinstance(node, (ast.Concat, ast.Repeat)):
            for child in node.children():
                visit(child, carrying)
            return
        for child in node.children():
            visit(child, carrying)

    visit(expr, True)
    return names


@dataclass
class Use:
    """One read of a signal, with the position it is read in."""

    record: object
    kind: str  # "data" | "control" | "index"


@dataclass
class DefUseChains:
    """Per-module def-use chains over the elaborated flat module."""

    module: ast.Module
    view: object = None
    defs: dict = field(default_factory=dict)
    uses: dict = field(default_factory=dict)

    def defs_of(self, name):
        """Assignment records defining *name* (possibly empty)."""
        return self.defs.get(name, [])

    def uses_of(self, name):
        """:class:`Use` records reading *name* (possibly empty)."""
        return self.uses.get(name, [])

    def signals(self):
        """All defined or used signal names, sorted."""
        return sorted(set(self.defs) | set(self.uses))


def _index_sources(record):
    names = []
    node = record.lhs
    while isinstance(node, (ast.Index, ast.IndexedPartSelect)):
        index = node.index if isinstance(node, ast.Index) else node.base
        for ident in index.walk():
            if isinstance(ident, ast.Identifier):
                names.append(ident.name)
        node = node.var
    return names


def build_def_use(module, view=None):
    """Build :class:`DefUseChains` for an elaborated flat *module*."""
    view = view or analyze_module(module)
    chains = DefUseChains(module=module, view=view)
    for record in view.assignments:
        chains.defs.setdefault(record.target, []).append(record)
        index_names = set(_index_sources(record))
        rhs_names = set()
        for node in record.rhs.walk():
            if isinstance(node, ast.Identifier):
                rhs_names.add(node.name)
        for name in sorted(rhs_names):
            chains.uses.setdefault(name, []).append(
                Use(record=record, kind="data")
            )
        for name in sorted(index_names - rhs_names):
            chains.uses.setdefault(name, []).append(
                Use(record=record, kind="index")
            )
        for name in sorted(set(record.control_sources) - rhs_names):
            chains.uses.setdefault(name, []).append(
                Use(record=record, kind="control")
            )
    return chains


def reaching_definitions(module, view=None):
    """``{signal: sorted def labels that can reach its value}``.

    A definition label is ``"target:lineno"``. Because any always block
    can fire on any cycle, reachability is the transitive closure over
    data edges (a register's value can carry any upstream definition
    after enough cycles) — computed as a fixpoint so cyclic designs
    (counters, FSMs) converge rather than recurse.
    """
    from .solver import solve

    view = view or analyze_module(module)
    defs = {}
    deps = {}
    for record in view.assignments:
        defs.setdefault(record.target, set()).add(
            "%s:%d" % (record.target, record.lineno)
        )
        deps.setdefault(record.target, set()).update(record.data_sources)
    nodes = set(deps)
    for sources in deps.values():
        nodes.update(sources)

    def transfer(node, values):
        fact = set(defs.get(node, ()))
        for src in deps.get(node, ()):
            fact.update(values.get(src, ()))
        return frozenset(fact)

    result = solve(nodes, deps, transfer)
    return {name: sorted(result.values[name]) for name in sorted(nodes)}


def payload_register_graph(module, view=None, ip_models=None):
    """Register-to-register *payload* edges ``{src: set(dst)}``.

    The sequential skeleton of the design restricted to value-carrying
    positions: a register (or input port) ``src`` has an edge to register
    ``dst`` when ``src``'s bits can end up stored in ``dst`` — traced
    through combinational definitions with :func:`payload_identifiers`
    at every hop, plus payload-carrying blackbox IP flows.
    """
    view = view or analyze_module(module)
    comb_defs = {}
    for record in view.assignments:
        if not record.sequential:
            comb_defs.setdefault(record.target, []).append(record)

    def expand(name, visiting):
        if name not in comb_defs or name in visiting:
            return {name}
        expanded = set()
        for record in comb_defs[name]:
            for src in payload_identifiers(record.rhs):
                expanded |= expand(src, visiting | {name})
        return expanded

    edges = {}
    for record in view.assignments:
        if not record.sequential:
            continue
        for src in payload_identifiers(record.rhs):
            for reg in expand(src, frozenset()):
                edges.setdefault(reg, set()).add(record.target)
    models = dict(DEFAULT_IP_MODELS)
    if ip_models:
        models.update(ip_models)
    for item in module.items:
        if not isinstance(item, ast.Instance):
            continue
        model = models.get(item.module_name)
        if model is None:
            continue
        connections = {
            conn.port: conn.expr for conn in item.ports if conn.expr is not None
        }
        for flow in model.flows:
            if not getattr(flow, "payload", True):
                continue
            src_expr = connections.get(flow.src_port)
            dst_expr = connections.get(flow.dst_port)
            if src_expr is None or dst_expr is None:
                continue
            for src in payload_identifiers(src_expr):
                for reg in expand(src, frozenset()):
                    for dst in ast.lvalue_base_names(dst_expr):
                        edges.setdefault(reg, set()).add(dst)
    return edges


def payload_slice(module, source, sink, view=None, ip_models=None):
    """Registers on a payload-carrying Source→Sink slice (sorted).

    Forward payload reachability from *source* intersected with backward
    reachability to *sink* — the set LossCheck's ``prune=True`` mode
    restricts monitoring to. Empty when no payload path exists.
    """
    edges = payload_register_graph(module, view=view, ip_models=ip_models)
    forward = set(reachable(edges, source))
    inverse = {}
    for src, dsts in edges.items():
        for dst in dsts:
            inverse.setdefault(dst, set()).add(src)
    backward = set(reachable(inverse, sink))
    return sorted(forward & backward)
