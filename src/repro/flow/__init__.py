"""repro.flow: a bit-aware dataflow engine over elaborated designs.

The static lever the paper's efficiency story asks for: decide *which
signals matter* before paying for instrumentation or simulation. The
engine provides

* :mod:`repro.flow.solver` — a generic monotone worklist fixpoint
  solver with deterministic iteration order;
* :mod:`repro.flow.defuse` — def-use chains, reaching definitions, and
  the bit-aware *payload* slice (value-carrying positions only) that
  LossCheck's ``prune=True`` mode monitors;
* :mod:`repro.flow.graph` — the design-level signal graph: per-module
  assignments plus port connections (already flattened by elaboration)
  plus blackbox edges from :class:`~repro.analysis.ip_models.IPAnalysisModel`;
* :mod:`repro.flow.clockdomain` — per-signal clock-domain inference;
* :mod:`repro.flow.absint` — abstract interpretation (value ranges +
  known bits + X taint) exporting a deterministic :class:`FactTable`;
* :mod:`repro.flow.checkers` — the L0401–L0407 semantic rules and the
  L0501–L0507 value rules surfaced through ``python -m repro check``.
"""

from .solver import FixpointResult, reachable, solve
from .domains import AbsValue
from .absint import FactTable, analyze_values, compute_facts
from .defuse import (
    DefUseChains,
    build_def_use,
    payload_identifiers,
    payload_register_graph,
    payload_slice,
    reaching_definitions,
)
from .graph import FlowEdge, SignalGraph, build_signal_graph
from .clockdomain import DomainInference, infer_domains
from .checkers import FlowReport, analyze_flow, run_flow_checks

__all__ = [
    "FixpointResult",
    "solve",
    "reachable",
    "DefUseChains",
    "build_def_use",
    "payload_identifiers",
    "payload_register_graph",
    "payload_slice",
    "reaching_definitions",
    "FlowEdge",
    "SignalGraph",
    "build_signal_graph",
    "DomainInference",
    "infer_domains",
    "AbsValue",
    "FactTable",
    "analyze_values",
    "compute_facts",
    "FlowReport",
    "analyze_flow",
    "run_flow_checks",
]
