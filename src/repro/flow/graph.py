"""The design-level signal graph the flow checkers walk.

Nodes are the signals of an *elaborated* module — elaboration has
already flattened the hierarchy, so cross-module dataflow shows up here
as dotted names (``fifo.wr_ptr``) connected through the continuous
assigns that elaboration synthesizes for port connections. Blackbox IP
instances contribute edges through their
:class:`~repro.analysis.ip_models.IPAnalysisModel` flows; instances with
no model are recorded in ``unmodeled`` instead of aborting, because the
checkers must degrade gracefully on designs the analyses cannot fully
see (the same philosophy as ``repro check``'s per-module recovery).

Each edge is labeled with how the value flows:

* ``kind`` — ``data`` (feeds the assigned value), ``control`` (only
  steers the path constraint), or ``index`` (only selects a location);
* ``sequential`` / ``clock`` / ``blocking`` — the driving assignment's
  timing;
* ``via_ip`` — instance name when the edge goes through a blackbox.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl import ast_nodes as ast
from ..analysis.assignments import analyze_module
from ..analysis.ip_models import DEFAULT_IP_MODELS
from .defuse import _index_sources


@dataclass
class FlowEdge:
    """One labeled signal-to-signal edge."""

    src: str
    dst: str
    kind: str
    sequential: bool
    clock: str = None
    blocking: bool = False
    lineno: int = 0
    via_ip: str = None


@dataclass
class SignalGraph:
    """All flow edges of one elaborated module, with query helpers."""

    module: ast.Module
    view: object = None
    edges: list = field(default_factory=list)
    #: Blackbox instances without an IPAnalysisModel (analysis blind spots).
    unmodeled: list = field(default_factory=list)

    def into(self, name):
        return [e for e in self.edges if e.dst == name]

    def out_of(self, name):
        return [e for e in self.edges if e.src == name]

    def combinational_adjacency(self):
        """``{src: sorted set(dst)}`` over combinational edges only.

        Control and index edges are included: an oscillation can ride a
        path constraint (``if (!x) x = 1; else x = 0;``) just as well as
        a data position.
        """
        adjacency = {}
        for edge in self.edges:
            if edge.sequential or edge.via_ip:
                continue
            adjacency.setdefault(edge.src, set()).add(edge.dst)
        return {src: sorted(dsts) for src, dsts in sorted(adjacency.items())}

    def signals(self):
        names = set()
        for edge in self.edges:
            names.add(edge.src)
            names.add(edge.dst)
        return sorted(names)


def build_signal_graph(module, view=None, ip_models=None):
    """Build the :class:`SignalGraph` for an elaborated flat *module*."""
    view = view or analyze_module(module)
    graph = SignalGraph(module=module, view=view)
    for record in view.assignments:
        index_names = set(_index_sources(record))
        rhs_names = set()
        for node in record.rhs.walk():
            if isinstance(node, ast.Identifier):
                rhs_names.add(node.name)
        seen = set()
        for name in sorted(rhs_names):
            seen.add(name)
            graph.edges.append(
                FlowEdge(
                    src=name,
                    dst=record.target,
                    kind="data",
                    sequential=record.sequential,
                    clock=record.clock,
                    blocking=record.blocking,
                    lineno=record.lineno,
                )
            )
        for name in sorted(index_names - seen):
            seen.add(name)
            graph.edges.append(
                FlowEdge(
                    src=name,
                    dst=record.target,
                    kind="index",
                    sequential=record.sequential,
                    clock=record.clock,
                    blocking=record.blocking,
                    lineno=record.lineno,
                )
            )
        for name in sorted(set(record.control_sources) - seen):
            graph.edges.append(
                FlowEdge(
                    src=name,
                    dst=record.target,
                    kind="control",
                    sequential=record.sequential,
                    clock=record.clock,
                    blocking=record.blocking,
                    lineno=record.lineno,
                )
            )
    _add_ip_edges(graph, module, ip_models)
    return graph


def _add_ip_edges(graph, module, ip_models):
    models = dict(DEFAULT_IP_MODELS)
    if ip_models:
        models.update(ip_models)
    for item in module.items:
        if not isinstance(item, ast.Instance):
            continue
        model = models.get(item.module_name)
        if model is None:
            graph.unmodeled.append(item.instance_name)
            continue
        connections = {
            conn.port: conn.expr for conn in item.ports if conn.expr is not None
        }
        for flow in model.flows:
            src_expr = connections.get(flow.src_port)
            dst_expr = connections.get(flow.dst_port)
            if src_expr is None or dst_expr is None:
                continue
            dst_names = ast.lvalue_base_names(dst_expr)
            src_names = sorted(
                {
                    node.name
                    for node in src_expr.walk()
                    if isinstance(node, ast.Identifier)
                }
            )
            clock_port = (model.port_clocks or {}).get(flow.dst_port)
            clock_expr = connections.get(clock_port) if clock_port else None
            clock = (
                clock_expr.name
                if isinstance(clock_expr, ast.Identifier)
                else None
            )
            for src in src_names:
                for dst in dst_names:
                    graph.edges.append(
                        FlowEdge(
                            src=src,
                            dst=dst,
                            # IP flows are registered (latency >= 1).
                            kind="data",
                            sequential=flow.latency > 0,
                            clock=clock,
                            lineno=item.lineno,
                            via_ip=item.instance_name,
                        )
                    )
    graph.unmodeled.sort()
