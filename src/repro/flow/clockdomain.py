"""Clock-domain inference per signal (the CDC checkers' static half).

Every signal of an elaborated design is assigned a *set* of clock
domains:

* a register's domain is the clock of the edge-triggered block(s) that
  assign it — registers re-time data into their own domain, which is
  exactly why a 2-FF synchronizer works;
* a blackbox IP output lives in the domain of the clock port its
  :class:`~repro.analysis.ip_models.IPAnalysisModel.port_clocks` entry
  names (a ``dcfifo``'s ``q`` is read-side, its ``wrfull`` write-side);
* a combinational signal carries the union of its sources' domains,
  computed as a monotone fixpoint (:mod:`repro.flow.solver`) so
  feedback through combinational nets converges;
* input ports (and anything undriven) have no domain — external signals
  are not flagged, only crossings between two *inferred* domains are.

Clock signals themselves are excluded: a clock fanning out to many
blocks is distribution, not a crossing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.assignments import analyze_module
from .graph import build_signal_graph
from .solver import solve


@dataclass
class DomainInference:
    """Result of clock-domain inference over one module."""

    #: ``{signal: frozenset of clock names}`` (empty set = no domain).
    domains: dict = field(default_factory=dict)
    #: All clock signals observed (edge-triggered or IP clock ports).
    clocks: list = field(default_factory=list)
    #: Fixpoint telemetry (the flow fuzz oracle asserts convergence).
    iterations: int = 0
    converged: bool = True

    def of(self, name):
        """Domains of *name* (empty frozenset when unknown/external)."""
        return self.domains.get(name, frozenset())

    def is_multi_clock(self):
        return len(self.clocks) > 1


def infer_domains(module, view=None, graph=None, ip_models=None):
    """Infer the clock-domain set of every signal in *module*."""
    view = view or analyze_module(module)
    graph = graph or build_signal_graph(module, view=view, ip_models=ip_models)
    clocks = set()
    seeds = {}
    comb_deps = {}
    for edge in graph.edges:
        if edge.sequential:
            if edge.clock:
                clocks.add(edge.clock)
                seeds.setdefault(edge.dst, set()).add(edge.clock)
        else:
            comb_deps.setdefault(edge.dst, set()).add(edge.src)
    # A sequentially-assigned signal is pinned to its own domain even if
    # it also has combinational drivers (a multi-driven defect reported
    # separately); drop it from the combinational transfer set.
    for name in seeds:
        comb_deps.pop(name, None)
    nodes = set(seeds) | set(comb_deps)
    for sources in comb_deps.values():
        nodes.update(sources)
    nodes -= clocks

    def transfer(node, values):
        if node in seeds:
            return frozenset(seeds[node])
        fact = set()
        for src in sorted(comb_deps.get(node, ())):
            fact.update(values.get(src, ()))
        return frozenset(fact)

    result = solve(nodes, comb_deps, transfer)
    domains = {
        name: result.values[name]
        for name in sorted(result.values)
        if result.values[name]
    }
    return DomainInference(
        domains=domains,
        clocks=sorted(clocks),
        iterations=result.iterations,
        converged=result.converged,
    )
