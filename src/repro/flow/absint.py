"""Abstract interpretation over elaborated designs: the L05xx value rules.

:func:`compute_facts` runs a value-range (interval) and known-bits
analysis over a flat module using the monotone worklist solver
(:mod:`repro.flow.solver`), with widening at sequential back-edges. The
abstract evaluator (:class:`AbsEvaluator`) mirrors the concrete
two-state evaluator (:class:`repro.sim.values.Evaluator`) node for node
— same context-width rules, same masking points, same divide-by-zero
and out-of-range array semantics — so every fact is a sound
over-approximation of every value the simulator can compute in a
*settled* state. The fuzz campaign's ``absint`` oracle enforces exactly
that contract by simulation.

On top of the per-signal :class:`FactTable`, :func:`check_values` runs
the L05xx checker family surfaced through ``repro check``:

* **L0501** — a condition that is always true or always false (one
  branch is dead);
* **L0502** — a ``case`` arm whose label value the subject can never
  take;
* **L0503** — a comparison that can never (or always) be satisfied,
  classically a terminal count that exceeds the counter's width;
* **L0504** — an uninitialized (never-reset) register's X reaches an
  output port or steers control flow;
* **L0505** — a memory/array index (or IP address port) provably out
  of bounds;
* **L0506** — a possibly-zero divisor or modulus (two-state division
  by zero silently yields 0);
* **L0507** — a redundant mask: AND selecting only bits proven zero.

All L05xx findings are warnings: the facts are conservative, so a rule
only fires on a *proof*, but value-level findings still rank below
simulation evidence (``--strict`` promotes them to the failing exit
code). The exported :class:`FactTable` is deterministic
(:meth:`FactTable.render` is byte-stable across runs) and doubles as
the constant-folding input contract for the compiled simulation
backend tracked in ROADMAP.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..analysis.assignments import analyze_module
from ..diag.model import Diagnostic, Severity, SourceSpan
from ..hdl import ast_nodes as ast
from ..hdl.codegen import generate_expression
from ..hdl.transform import NotConstantError, const_eval
from ..sim.values import EvaluationError, SymbolTable, self_width
from .checkers import _has_reset_arc, _reset_signals
from .domains import AbsValue, bit_mask
from .solver import reachable, solve

#: Joins a node tolerates before its interval bounds are widened to the
#: domain extremes. Small on purpose: sequential back-edges (counters)
#: otherwise climb one step per solver visit.
WIDEN_AFTER = 2

_COMPARE_OPS = ("==", "!=", "===", "!==", "<", "<=", ">", ">=")


# ---------------------------------------------------------------------------
# Abstract evaluator (mirrors repro.sim.values.Evaluator)
# ---------------------------------------------------------------------------


class _Env:
    """Name -> :class:`AbsValue` view the abstract evaluator reads."""

    def __init__(self, symbols, lookup):
        self.symbols = symbols
        self._lookup = lookup

    def get(self, name):
        if self.symbols.is_array(name):
            raise EvaluationError("memory %r used without an index" % name)
        return self._lookup(name).resized(self.symbols.width_of(name))

    def get_array(self, name):
        """Element fact of memory *name* (join over all elements)."""
        return self._lookup(name).resized(self.symbols.width_of(name))


class AbsEvaluator:
    """Abstract mirror of the concrete evaluator, total by construction.

    Every case follows ``Evaluator.eval``'s width/masking rules; any
    node or width it cannot handle degrades to TOP of the expression's
    context width, which is always sound.
    """

    def __init__(self, symbols):
        self.symbols = symbols

    def eval(self, expr, env, ctx_width=0):
        try:
            return self._eval(expr, env, ctx_width)
        except Exception:
            return AbsValue.top(self._fallback_width(expr, ctx_width))

    def _fallback_width(self, expr, ctx_width):
        try:
            return max(self_width(expr, self.symbols), ctx_width, 1)
        except Exception:
            return max(ctx_width, 32)

    def _eval(self, expr, env, ctx_width):
        symbols = self.symbols
        if isinstance(expr, ast.Number):
            if expr.width is not None:
                return AbsValue.const(
                    expr.value & bit_mask(expr.width), expr.width
                )
            return AbsValue.const(
                expr.value, max(32, int(expr.value).bit_length())
            )
        if isinstance(expr, ast.Identifier):
            return env.get(expr.name)
        if isinstance(expr, ast.Index):
            if isinstance(expr.var, ast.Identifier) and symbols.is_array(
                expr.var.name
            ):
                # Element join; the memory fact always includes the
                # initial 0, which also covers out-of-range reads.
                return env.get_array(expr.var.name)
            index = self._eval(expr.index, env, 0)
            value = self._eval(expr.var, env, 0)
            taint = 1 if value.xmask else 0
            if index.is_const:
                position = index.const_value
                if position >= value.width:
                    return AbsValue.const(0, 1)
                bit = 1 << position
                taint = 1 if value.xmask & bit else 0
                if value.ones & bit:
                    return AbsValue.const(1, 1, xmask=taint)
                if value.zeros & bit:
                    return AbsValue.const(0, 1, xmask=taint)
            return AbsValue.top(1, xmask=taint)
        if isinstance(expr, ast.PartSelect):
            value = self._eval(expr.var, env, 0)
            msb = const_eval(expr.msb)
            lsb = const_eval(expr.lsb)
            if msb < lsb:
                raise EvaluationError("reversed part select")
            return value.shifted_right(lsb).resized(msb - lsb + 1)
        if isinstance(expr, ast.IndexedPartSelect):
            value = self._eval(expr.var, env, 0)
            base = self._eval(expr.base, env, 0)
            width = const_eval(expr.width)
            if base.is_const:
                start = base.const_value
                lsb = start if expr.ascending else start - width + 1
                if lsb < 0:
                    return AbsValue.const(0, width)
                return value.shifted_right(lsb).resized(width)
            return AbsValue.top(
                width, xmask=bit_mask(width) if value.xmask else 0
            )
        if isinstance(expr, ast.Concat):
            parts = []
            for part in expr.parts:
                width = self_width(part, symbols)
                parts.append(
                    (width, self._eval(part, env, 0).resized(width))
                )
            return self._concat(parts)
        if isinstance(expr, ast.Repeat):
            count = const_eval(expr.count)
            width = self_width(expr.expr, symbols)
            if count < 0 or count * width > 4096:
                raise EvaluationError("unreasonable replication")
            fact = self._eval(expr.expr, env, 0).resized(width)
            return self._concat([(width, fact)] * count)
        if isinstance(expr, ast.UnaryOp):
            return self._eval_unary(expr, env, ctx_width)
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr, env, ctx_width)
        if isinstance(expr, ast.Ternary):
            cond = self._eval(expr.cond, env, 0)
            width = max(self_width(expr, symbols), ctx_width)
            truth = cond.truth()
            if truth is True:
                result = self._eval(expr.iftrue, env, width).resized(width)
            elif truth is False:
                result = self._eval(expr.iffalse, env, width).resized(width)
            else:
                result = (
                    self._eval(expr.iftrue, env, width)
                    .resized(width)
                    .join(self._eval(expr.iffalse, env, width).resized(width))
                )
            if cond.xmask:
                result = result.with_xmask(bit_mask(width))
            return result
        if isinstance(expr, ast.SizeCast):
            return self._eval(expr.expr, env, 0).resized(expr.width)
        raise EvaluationError("cannot evaluate %r" % (expr,))

    @staticmethod
    def _concat(parts):
        """Concatenate (width, fact) pairs, leftmost part most significant.

        Each part is already masked to its width, so ``(acc << w) | part``
        places independent contributions in disjoint bit ranges — the
        interval endpoints compose exactly.
        """
        total = sum(width for width, _ in parts)
        lo = hi = ones = zeros = xmask = 0
        for width, fact in parts:
            lo = (lo << width) | fact.lo
            hi = (hi << width) | fact.hi
            ones = (ones << width) | fact.ones
            zeros = (zeros << width) | fact.zeros
            xmask = (xmask << width) | fact.xmask
        return AbsValue.make(max(total, 1), lo, hi, ones, zeros, xmask=xmask)

    def _eval_unary(self, expr, env, ctx_width):
        op = expr.op
        symbols = self.symbols
        if op in ("~", "-"):
            width = max(self_width(expr, symbols), ctx_width)
            fact = self._eval(expr.operand, env, width).resized(width)
            m = bit_mask(width)
            if op == "~":
                return AbsValue.make(
                    width, m - fact.hi, m - fact.lo, fact.zeros, fact.ones,
                    xmask=fact.xmask,
                )
            taint = m if fact.xmask else 0
            if fact.is_const:
                return AbsValue.const((-fact.lo) & m, width, xmask=taint)
            if fact.lo > 0:
                full = 1 << width
                return AbsValue.make(
                    width, full - fact.hi, full - fact.lo, xmask=taint
                )
            return AbsValue.top(width, xmask=taint)
        fact = self._eval(expr.operand, env, 0)
        width = self_width(expr.operand, symbols)
        fact = fact.resized(width)
        taint = 1 if fact.xmask else 0
        m = bit_mask(width)
        truth = fact.truth()
        if op == "!":
            return self._bool(None if truth is None else not truth, taint)
        if op in ("&", "~&"):
            if fact.ones == m:
                verdict = True
            elif fact.zeros or fact.hi < m:
                verdict = False
            else:
                verdict = None
            if op == "~&" and verdict is not None:
                verdict = not verdict
            return self._bool(verdict, taint)
        if op == "|":
            return self._bool(truth, taint)
        if op == "~|":
            return self._bool(None if truth is None else not truth, taint)
        if op in ("^", "~^"):
            if fact.is_const:
                parity = bin(fact.lo).count("1") & 1
                if op == "~^":
                    parity = 1 - parity
                return AbsValue.const(parity, 1, xmask=taint)
            return AbsValue.top(1, xmask=taint)
        raise EvaluationError("unsupported unary operator %s" % op)

    @staticmethod
    def _bool(verdict, taint=0):
        if verdict is True:
            return AbsValue.const(1, 1, xmask=taint)
        if verdict is False:
            return AbsValue.const(0, 1, xmask=taint)
        return AbsValue.top(1, xmask=taint)

    def _eval_binary(self, expr, env, ctx_width):
        op = expr.op
        symbols = self.symbols
        if op in ("&&", "||"):
            left = self._eval(expr.left, env, 0)
            right = self._eval(expr.right, env, 0)
            lt, rt = left.truth(), right.truth()
            taint = 1 if (left.xmask or right.xmask) else 0
            if op == "&&":
                if lt is False or rt is False:
                    return self._bool(False, taint)
                if lt is True and rt is True:
                    return self._bool(True, taint)
            else:
                if lt is True or rt is True:
                    return self._bool(True, taint)
                if lt is False and rt is False:
                    return self._bool(False, taint)
            return self._bool(None, taint)
        if op in _COMPARE_OPS:
            width = max(
                self_width(expr.left, symbols),
                self_width(expr.right, symbols),
            )
            left = self._eval(expr.left, env, width).resized(width)
            right = self._eval(expr.right, env, width).resized(width)
            taint = 1 if (left.xmask or right.xmask) else 0
            return self._bool(compare_facts(op, left, right), taint)
        if op in ("<<", ">>", "<<<", ">>>"):
            width = max(self_width(expr.left, symbols), ctx_width)
            left = self._eval(expr.left, env, width).resized(width)
            shift = self._eval(expr.right, env, 0)
            taint = bit_mask(width) if (left.xmask or shift.xmask) else 0
            if op in ("<<", "<<<"):
                if shift.is_const:
                    result = left.shifted_left(shift.lo, width)
                    return result.with_xmask(result.xmask | taint)
                return AbsValue.top(width, xmask=taint)
            if shift.is_const:
                result = left.shifted_right(shift.lo).resized(width)
                return result.with_xmask(result.xmask | taint)
            return AbsValue.make(
                width, left.lo >> shift.hi, left.hi >> shift.lo, xmask=taint
            )
        width = max(self_width(expr, symbols), ctx_width)
        left = self._eval(expr.left, env, width).resized(width)
        right = self._eval(expr.right, env, width).resized(width)
        m = bit_mask(width)
        taint = m if (left.xmask or right.xmask) else 0
        if op == "+":
            if left.hi + right.hi <= m:
                return AbsValue.make(
                    width, left.lo + right.lo, left.hi + right.hi, xmask=taint
                )
            if left.is_const and right.is_const:
                return AbsValue.const((left.lo + right.lo) & m, width,
                                      xmask=taint)
            return AbsValue.top(width, xmask=taint)
        if op == "-":
            if left.lo >= right.hi:
                return AbsValue.make(
                    width, left.lo - right.hi, left.hi - right.lo, xmask=taint
                )
            if left.is_const and right.is_const:
                return AbsValue.const((left.lo - right.lo) & m, width,
                                      xmask=taint)
            return AbsValue.top(width, xmask=taint)
        if op == "*":
            if left.hi * right.hi <= m:
                return AbsValue.make(
                    width, left.lo * right.lo, left.hi * right.hi, xmask=taint
                )
            if left.is_const and right.is_const:
                return AbsValue.const((left.lo * right.lo) & m, width,
                                      xmask=taint)
            return AbsValue.top(width, xmask=taint)
        if op == "/":
            if right.lo >= 1:
                return AbsValue.make(
                    width, left.lo // right.hi, left.hi // right.lo,
                    xmask=taint,
                )
            # A zero divisor yields 0 in two-state semantics.
            return AbsValue.make(width, 0, left.hi, xmask=taint)
        if op == "%":
            if right.lo >= 1:
                return AbsValue.make(
                    width, 0, min(left.hi, right.hi - 1), xmask=taint
                )
            return AbsValue.make(width, 0, left.hi, xmask=taint)
        bit_taint = (left.xmask | right.xmask) & m
        if op == "&":
            return AbsValue.make(
                width, 0, min(left.hi, right.hi),
                left.ones & right.ones,
                (left.zeros | right.zeros) & m,
                xmask=bit_taint,
            )
        if op == "|":
            return AbsValue.make(
                width, max(left.lo, right.lo), min(m, left.hi + right.hi),
                left.ones | right.ones,
                left.zeros & right.zeros,
                xmask=bit_taint,
            )
        if op == "^":
            return AbsValue.make(
                width, 0, min(m, left.hi + right.hi),
                (left.ones & right.zeros) | (right.ones & left.zeros),
                (left.ones & right.ones) | (left.zeros & right.zeros),
                xmask=bit_taint,
            )
        raise EvaluationError("unsupported binary operator %s" % op)


def compare_facts(op, left, right):
    """Three-valued comparison of two same-width facts (True/False/None)."""
    if op in ("==", "===", "!=", "!=="):
        if left.is_const and right.is_const:
            verdict = left.lo == right.lo
        elif left.hi < right.lo or right.hi < left.lo:
            verdict = False
        elif (left.ones & right.zeros) or (right.ones & left.zeros):
            verdict = False
        else:
            return None
        return verdict if op in ("==", "===") else not verdict
    if op == "<":
        if left.hi < right.lo:
            return True
        if left.lo >= right.hi:
            return False
        return None
    if op == "<=":
        if left.hi <= right.lo:
            return True
        if left.lo > right.hi:
            return False
        return None
    if op == ">":
        result = compare_facts("<=", left, right)
        return None if result is None else not result
    if op == ">=":
        result = compare_facts("<", left, right)
        return None if result is None else not result
    return None


# ---------------------------------------------------------------------------
# The fact table and its fixpoint
# ---------------------------------------------------------------------------


@dataclass
class FactTable:
    """Deterministic per-signal facts for one flat module.

    ``facts`` maps every declared signal to its :class:`AbsValue`; for
    memories the fact is the join over all elements (which always
    includes the initial 0). This table is the input contract for the
    compiled backend's elaboration-time constant folding: a signal in
    :meth:`constants` may be replaced by its literal in any settled
    state, and known bits may seed bit-parallel lane packing.
    """

    module: str
    facts: dict
    depths: dict
    tainted: tuple = ()
    iterations: int = 0
    converged: bool = True

    def get(self, name):
        """Fact for *name* (None when the signal is unknown)."""
        return self.facts.get(name)

    def constants(self):
        """``{name: value}`` for scalar signals proven constant."""
        out = {}
        for name in sorted(self.facts):
            if self.depths.get(name):
                continue
            fact = self.facts[name]
            if fact.is_const and not fact.xmask:
                out[name] = fact.lo
        return out

    def to_dict(self):
        signals = {}
        for name in sorted(self.facts):
            entry = self.facts[name].to_dict()
            entry["depth"] = self.depths.get(name, 0)
            signals[name] = entry
        return {
            "schema": "repro.flow.absint/v1",
            "module": self.module,
            "converged": self.converged,
            "tainted": list(self.tainted),
            "signals": signals,
        }

    def render(self):
        """Byte-stable JSON rendering (two runs must compare equal)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        ) + "\n"


def _instance_param(inst, name, default):
    for override in inst.params:
        if override.name == name:
            try:
                return int(const_eval(override.value))
            except (NotConstantError, ValueError, TypeError):
                return default
    return default


def _ip_summary(inst):
    """Output-port facts for a known vendor IP instance (None if unknown).

    Bounds mirror the behavioral models in :mod:`repro.sim.ip`: FIFO
    occupancy stays within ``[0, LPM_NUMWORDS]``, status flags are
    1-bit, and data outputs are only bounded by their width.
    """
    kind = inst.module_name
    if kind in ("scfifo", "dcfifo"):
        width = max(1, _instance_param(inst, "LPM_WIDTH", 32))
        depth = max(1, _instance_param(inst, "LPM_NUMWORDS", 16))
        count = AbsValue.make(max(1, depth.bit_length()), 0, depth)
        flag = AbsValue.top(1)
        data = AbsValue.top(width)
        if kind == "scfifo":
            return {"q": data, "empty": flag, "full": flag, "usedw": count}
        return {
            "q": data, "rdempty": flag, "wrfull": flag,
            "wrusedw": count, "rdusedw": count,
        }
    if kind == "altsyncram":
        width = max(1, _instance_param(inst, "WIDTH_A", 32))
        data = AbsValue.top(width)
        return {"q_a": data, "q_b": data}
    if kind == "signal_recorder":
        return {"count": AbsValue.top(32)}
    return None


def _unreset_registers(module, view):
    """Sequential registers with no reset arc in a reset-disciplined design."""
    resets = _reset_signals(module)
    if not resets:
        return ()
    sequential = [r for r in view.assignments if r.sequential]
    if not any(_has_reset_arc(r, resets) for r in sequential):
        return ()  # the design never uses its reset at all
    tainted = []
    for target in sorted({r.target for r in sequential}):
        records = [r for r in sequential if r.target == target]
        if any(r.condition is None for r in records):
            continue  # unconditionally driven: defined after one cycle
        if any(_has_reset_arc(r, resets) for r in records):
            continue
        tainted.append(target)
    return tuple(tainted)


def _whole_signal_contribution(evaluator, symbols, record, env):
    """Abstract value one assignment record may store into its target."""
    lhs = record.lhs
    width = symbols.width_of(record.target)
    if isinstance(lhs, ast.Identifier):
        return evaluator.eval(record.rhs, env, width).resized(width)
    if (
        isinstance(lhs, ast.Index)
        and isinstance(lhs.var, ast.Identifier)
        and symbols.is_array(record.target)
    ):
        return evaluator.eval(record.rhs, env, width).resized(width)
    # Bit/part-select and concat lvalues read-modify-write the target;
    # the mix of old and new bits is only bounded by the width.
    return AbsValue.top(width)


def compute_facts(module, ip_models=None, max_iterations=None):
    """Fixpoint value-range + known-bits facts for a flat *module*.

    ``ip_models`` is accepted for signature parity with the rest of the
    flow engine; vendor-IP summaries are derived from the instance
    parameters directly. Returns a :class:`FactTable`; ``converged`` is
    False only if the solver hit ``max_iterations`` (facts are then
    under-approximations and every consumer must ignore them).
    """
    symbols = SymbolTable(module)
    view = analyze_module(module)
    evaluator = AbsEvaluator(symbols)
    names = sorted(symbols.widths)
    known = set(names)

    records_by = {}
    dependencies = {}
    for record in view.assignments:
        if record.target not in known:
            continue
        records_by.setdefault(record.target, []).append(record)
        dependencies.setdefault(record.target, set()).update(
            name for name in record.data_sources if name in known
        )

    input_ports = {
        port.name
        for port in module.ports
        if port.direction is ast.PortDirection.INPUT
    }

    seeds = {}

    def seed_join(name, fact):
        if name not in known:
            return
        fact = fact.resized(symbols.width_of(name))
        seeds[name] = fact if name not in seeds else seeds[name].join(fact)

    for name in names:
        if name in input_ports:
            seed_join(name, AbsValue.top(symbols.width_of(name)))

    for item in module.items:
        if not isinstance(item, ast.Instance):
            continue
        summary = _ip_summary(item)
        if summary is None:
            # Unknown blackbox: anything it touches may be driven by it.
            for conn in item.ports:
                if conn.expr is None:
                    continue
                for node in conn.expr.walk():
                    if isinstance(node, ast.Identifier):
                        seed_join(
                            node.name,
                            AbsValue.top(symbols.widths.get(node.name, 1)),
                        )
            continue
        for conn in item.ports:
            if conn.port not in summary or conn.expr is None:
                continue
            if isinstance(conn.expr, ast.Identifier):
                seed_join(conn.expr.name, summary[conn.port])
            else:
                for base in ast.lvalue_base_names(conn.expr):
                    seed_join(base, AbsValue.top(symbols.widths.get(base, 1)))

    for name in names:
        width = symbols.width_of(name)
        records = records_by.get(name, ())
        if symbols.is_array(name):
            seed_join(name, AbsValue.const(0, width))
            continue
        if not records:
            if name not in seeds:
                seed_join(name, AbsValue.const(0, width))
            continue
        always_defined = any(
            r.condition is None
            and not r.sequential
            and isinstance(r.lhs, ast.Identifier)
            for r in records
        )
        if not always_defined:
            # Sequential or conditionally-driven: the initial 0 (or a
            # held previous value, covered inductively) is observable.
            seed_join(name, AbsValue.const(0, width))

    tainted = _unreset_registers(module, view)
    tainted_set = set(tainted)

    def initial(name):
        fact = seeds.get(name)
        if fact is None:
            fact = AbsValue.const(0, symbols.width_of(name))
        if name in tainted_set:
            fact = fact.with_xmask(bit_mask(fact.width))
        return fact

    visits = {}

    def transfer(name, values):
        def lookup(dep):
            fact = values.get(dep)
            return fact if fact is not None else initial(dep)

        env = _Env(symbols, lookup)
        width = symbols.width_of(name)
        # Unseeded signals (unconditional non-sequential drivers) start
        # from bottom: their value is exactly the join of their drivers.
        fact = seeds.get(name)
        if fact is not None and name in tainted_set:
            fact = fact.with_xmask(bit_mask(fact.width))
        for record in records_by.get(name, ()):
            try:
                contribution = _whole_signal_contribution(
                    evaluator, symbols, record, env
                )
            except Exception:
                contribution = AbsValue.top(width)
            fact = contribution if fact is None else fact.join(contribution)
        if fact is None:
            fact = initial(name)
        fact = fact.resized(width)
        if name in tainted_set:
            fact = fact.with_xmask(fact.xmask | bit_mask(width))
        previous = values.get(name)
        visits[name] = visits.get(name, 0) + 1
        if previous is not None:
            fact = previous.join(fact)
            if visits[name] > WIDEN_AFTER:
                fact = previous.widen(fact)
        return fact

    result = solve(
        names, dependencies, transfer, bottom=None,
        max_iterations=max_iterations,
    )
    facts = {
        name: (result.values.get(name) or initial(name)) for name in names
    }
    return FactTable(
        module=module.name,
        facts=facts,
        depths={name: symbols.depth_of(name) for name in names},
        tainted=tainted,
        iterations=result.iterations,
        converged=result.converged,
    )


# ---------------------------------------------------------------------------
# The L05xx value checkers
# ---------------------------------------------------------------------------


class _ValueChecker:
    """Walks one module's statements and emits L05xx diagnostics."""

    def __init__(self, module, table, filename):
        self.module = module
        self.table = table
        self.filename = filename
        self.symbols = SymbolTable(module)
        self.evaluator = AbsEvaluator(self.symbols)
        self.env = _Env(
            self.symbols,
            lambda name: table.facts.get(name)
            or AbsValue.top(self.symbols.widths.get(name, 1)),
        )
        self.diagnostics = []
        self._emitted = set()
        #: Comparisons already explained by an L0503 finding, so the
        #: enclosing condition skips the redundant L0501.
        self._explained = set()
        #: (text, line) of control reads whose value may carry X.
        self._x_controls = []

    # -- plumbing -----------------------------------------------------------

    def emit(self, code, message, lineno, hint=""):
        key = (code, message, lineno)
        if key in self._emitted:
            return
        self._emitted.add(key)
        self.diagnostics.append(
            Diagnostic(
                Severity.WARNING,
                code,
                message,
                SourceSpan(file=self.filename, line=lineno),
                hint,
            )
        )

    def fact_of(self, expr, ctx_width=0):
        return self.evaluator.eval(expr, self.env, ctx_width)

    def _line_of(self, stmt, fallback):
        lineno = getattr(stmt, "lineno", 0)
        if lineno:
            return lineno
        for node in stmt.walk():
            lineno = getattr(node, "lineno", 0)
            if lineno:
                return lineno
        return fallback

    # -- module walk --------------------------------------------------------

    def run(self):
        for item in self.module.items:
            if isinstance(item, ast.ContinuousAssign):
                self.visit_expr(item.rhs, item.lineno)
                self.visit_expr(item.lhs, item.lineno)
            elif isinstance(item, ast.Always):
                self.visit_stmt(item.body, item.lineno)
            elif isinstance(item, ast.Instance):
                self.visit_instance(item)
        self.check_x_reach()
        return self.diagnostics

    def visit_stmt(self, stmt, line):
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self.visit_stmt(inner, line)
        elif isinstance(stmt, (ast.NonblockingAssign, ast.BlockingAssign)):
            lineno = stmt.lineno or line
            self.visit_expr(stmt.rhs, lineno)
            self.visit_expr(stmt.lhs, lineno)
        elif isinstance(stmt, ast.If):
            lineno = self._line_of(stmt, line)
            self.visit_condition(stmt.cond, lineno)
            self.visit_stmt(stmt.then_stmt, lineno)
            if stmt.else_stmt is not None:
                self.visit_stmt(stmt.else_stmt, lineno)
        elif isinstance(stmt, ast.Case):
            self.visit_case(stmt, stmt.lineno or line)
        elif isinstance(stmt, ast.Display):
            for arg in stmt.args:
                self.visit_expr(arg, line)

    # -- L0501: constant conditions -----------------------------------------

    def visit_condition(self, cond, line):
        self.visit_expr(cond, line)
        fact = self.fact_of(cond)
        if fact.xmask:
            self._x_controls.append(
                ("condition '%s'" % generate_expression(cond), line)
            )
        truth = fact.truth()
        if truth is None:
            return
        if any(id(node) in self._explained for node in cond.walk()):
            return  # an L0503 on the comparison already explains this
        self.emit(
            "L0501",
            "condition '%s' is always %s: the %s branch is dead"
            % (
                generate_expression(cond),
                "true" if truth else "false",
                "else" if truth else "then",
            ),
            line,
            hint="the value facts prove this test constant; delete the "
            "dead branch or fix the guarded expression",
        )

    # -- L0502: unreachable case arms ---------------------------------------

    def visit_case(self, stmt, line):
        self.visit_expr(stmt.subject, line)
        subject = self.fact_of(stmt.subject)
        if subject.xmask:
            self._x_controls.append(
                (
                    "case subject '%s'" % generate_expression(stmt.subject),
                    line,
                )
            )
        for item in stmt.items:
            arm_line = self._line_of(item.stmt, line)
            for label in item.labels:
                self.visit_expr(label, arm_line)
            if item.labels and not stmt.casez and not subject.is_top:
                self._check_arm(stmt, item, subject, arm_line)
            self.visit_stmt(item.stmt, arm_line)

    def _check_arm(self, stmt, item, subject, line):
        for label in item.labels:
            fact = self.fact_of(label)
            if not fact.is_const or subject.contains(fact.lo):
                return
        self.emit(
            "L0502",
            "case arm %s is unreachable: subject '%s' is always %s"
            % (
                ", ".join(generate_expression(l) for l in item.labels),
                generate_expression(stmt.subject),
                subject.describe(),
            ),
            line,
            hint="no assignment ever gives the subject this value; "
            "delete the arm or add the missing transition",
        )

    # -- expression-level rules (L0503/L0505/L0506/L0507) -------------------

    def visit_expr(self, expr, line):
        for node in expr.walk():
            if isinstance(node, ast.BinaryOp):
                if node.op in ("==", "!=", "<", "<=", ">", ">="):
                    self.check_comparison(node, line)
                elif node.op in ("/", "%"):
                    self.check_division(node, line)
                elif node.op == "&":
                    self.check_mask(node, line)
            elif isinstance(node, ast.Index):
                self.check_index(node, line)

    def check_comparison(self, node, line):
        constant, other = None, None
        if isinstance(node.right, ast.Number) and not isinstance(
            node.left, ast.Number
        ):
            constant, other = node.right, node.left
        elif isinstance(node.left, ast.Number) and not isinstance(
            node.right, ast.Number
        ):
            constant, other = node.left, node.right
        if constant is None:
            return
        try:
            width = max(
                self_width(node.left, self.symbols),
                self_width(node.right, self.symbols),
            )
            other_width = self_width(other, self.symbols)
        except EvaluationError:
            return
        left = self.fact_of(node.left, width).resized(width)
        right = self.fact_of(node.right, width).resized(width)
        verdict = compare_facts(node.op, left, right)
        if verdict is None:
            return
        value = constant.value
        if constant.width is not None:
            value &= bit_mask(constant.width)
        text = generate_expression(node)
        if value > bit_mask(other_width):
            self.emit(
                "L0503",
                "comparison '%s' is always %s: constant %d exceeds the "
                "%d-bit range of '%s' (max %d)"
                % (
                    text,
                    "true" if verdict else "false",
                    value,
                    other_width,
                    generate_expression(other),
                    bit_mask(other_width),
                ),
                line,
                hint="widen '%s' or lower the terminal count so the "
                "comparison can fire" % generate_expression(other),
            )
        else:
            self.emit(
                "L0503",
                "comparison '%s' is always %s: '%s' is always %s"
                % (
                    text,
                    "true" if verdict else "false",
                    generate_expression(other),
                    self.fact_of(other).describe(),
                ),
                line,
                hint="the compared value can never cross this constant; "
                "check the counter update or the threshold",
            )
        self._explained.add(id(node))

    def check_division(self, node, line):
        divisor = self.fact_of(node.right)
        if not divisor.can_be_zero():
            return
        op_name = "divisor" if node.op == "/" else "modulus"
        self.emit(
            "L0506",
            "%s '%s' may be zero: two-state %s-by-zero silently yields 0"
            % (
                op_name,
                generate_expression(node.right),
                "division" if node.op == "/" else "modulo",
            ),
            line,
            hint="guard the operation with a nonzero test or prove the "
            "%s nonzero" % op_name,
        )

    def check_mask(self, node, line):
        try:
            width = max(
                self_width(node.left, self.symbols),
                self_width(node.right, self.symbols),
            )
        except EvaluationError:
            return
        left = self.fact_of(node.left, width).resized(width)
        right = self.fact_of(node.right, width).resized(width)
        if left.hi == 0 or right.hi == 0:
            return  # a plain zero operand, not a redundant mask
        possible = (~left.zeros) & (~right.zeros) & bit_mask(width)
        if possible:
            return
        self.emit(
            "L0507",
            "mask '%s' is redundant: every bit it selects is proven zero, "
            "so the AND is always 0" % generate_expression(node),
            line,
            hint="the operands have no overlapping possibly-one bits; "
            "fix the mask constant or the operand widths",
        )

    def check_index(self, node, line):
        if not (
            isinstance(node.var, ast.Identifier)
            and self.symbols.is_array(node.var.name)
        ):
            return
        depth = self.symbols.depth_of(node.var.name)
        index = self.fact_of(node.index)
        if index.lo < depth:
            return
        wraps = depth & (depth - 1) == 0
        self.emit(
            "L0505",
            "index '%s' into '%s' is always out of bounds: %s vs depth %d "
            "(%s)"
            % (
                generate_expression(node.index),
                node.var.name,
                index.describe(),
                depth,
                "the access wraps" if wraps
                else "reads return 0, writes are dropped",
            ),
            line,
            hint="resize the memory or mask the index to the legal range",
        )

    def visit_instance(self, inst):
        if inst.module_name != "altsyncram":
            return
        depth = max(1, _instance_param(inst, "NUMWORDS_A", 256))
        for conn in inst.ports:
            if conn.port not in ("address_a", "address_b") or conn.expr is None:
                continue
            address = self.fact_of(conn.expr)
            if address.lo < depth:
                continue
            self.emit(
                "L0505",
                "address '%s' on %s.%s is always out of bounds: %s vs "
                "NUMWORDS %d"
                % (
                    generate_expression(conn.expr),
                    inst.instance_name,
                    conn.port,
                    address.describe(),
                    depth,
                ),
                inst.lineno,
                hint="resize the RAM or mask the address to the legal "
                "range",
            )

    # -- L0504: X reaching outputs / control --------------------------------

    def check_x_reach(self):
        if not self.table.tainted:
            return
        adjacency = {}
        view = analyze_module(self.module)
        for record in view.assignments:
            for source in record.data_sources:
                adjacency.setdefault(source, set()).add(record.target)

        def origins_for(name):
            found = [
                origin
                for origin in self.table.tainted
                if origin == name or name in reachable(adjacency, {origin})
            ]
            return ", ".join("'%s'" % o for o in found) or "an unreset register"

        for port in self.module.ports:
            if port.direction is not ast.PortDirection.OUTPUT:
                continue
            fact = self.table.facts.get(port.name)
            if fact is None or not fact.xmask:
                continue
            decl = self.module.find_declaration(port.name)
            self.emit(
                "L0504",
                "output '%s' can carry X: it derives from never-reset "
                "register(s) %s" % (port.name, origins_for(port.name)),
                getattr(decl, "lineno", 0) if decl else 0,
                hint="reset every register on the output's fan-in cone "
                "so four-state hardware matches two-state simulation",
            )
        for text, line in self._x_controls:
            self.emit(
                "L0504",
                "%s can read X from a never-reset register: control flow "
                "may diverge from two-state simulation" % text,
                line,
                hint="reset the registers feeding this control read",
            )


def check_values(module, table, filename="<input>"):
    """Run the L05xx checkers over *module* using a converged *table*."""
    if not table.converged:
        return []  # facts are under-approximations; claims would be unsound
    checker = _ValueChecker(module, table, filename)
    diagnostics = checker.run()
    diagnostics.sort(key=Diagnostic.sort_key)
    return diagnostics


def analyze_values(module, filename="<input>", ip_models=None,
                   max_iterations=None):
    """Facts plus L05xx diagnostics for one flat module.

    Returns ``(FactTable, [Diagnostic])``. When the fixpoint fails to
    converge the diagnostic list is empty and ``table.converged`` is
    False — consumers must treat the facts as unusable.
    """
    table = compute_facts(
        module, ip_models=ip_models, max_iterations=max_iterations
    )
    return table, check_values(module, table, filename=filename)
