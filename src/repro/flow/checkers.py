"""Semantic flow checkers: the L04xx rule family.

Each checker walks the artifacts of the dataflow engine — the signal
graph, clock-domain inference, def-use chains, FSM detection — and
yields :class:`~repro.diag.model.Diagnostic` findings:

* **L0401** (error) — static combinational loop. A cycle in the
  combinational signal graph is reported with its full loop path before
  simulation ever raises ``CombinationalLoopError``; by construction the
  loop's signal set matches the simulator's "still changing" list for
  designs that oscillate.
* **L0402** (warning) — unsynchronized crossing: either a signal from
  another inferred clock domain feeding logic directly, or a data
  register and its name-paired valid/qualifier register driven with
  mismatched latencies (the paper's *signal asynchrony* subclass,
  testbed C3).
* **L0403** (warning) — multi-bit clock-domain crossing captured without
  gray coding or a synchronized handshake: individual bits can settle on
  different edges, so the captured word can be a value never sent.
* **L0404** (warning) — write-write race: one register sequentially
  assigned from two different always blocks under conditions that cannot
  be proven disjoint (simulator ordering decides who wins).
* **L0405** (warning) — mixed blocking/nonblocking drivers on one
  register (read-order hazards inside the same timestep).
* **L0406** (warning) — register read but never reset in a design that
  otherwise uses its reset, so it holds an uninitialized value until its
  enable first fires.
* **L0407** (warning) — FSM states that no transition can reach from the
  reset/initial states (via ``fsm_detect`` + reachability).

All checkers are deterministic: inputs are walked in sorted order and
diagnostics carry stable messages, so two runs over the same design
render byte-identical reports (enforced by the ``flow`` fuzz oracle and
CI's ``cmp`` gate).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl import ast_nodes as ast
from ..hdl.codegen import generate_expression
from ..analysis.assignments import analyze_module
from ..analysis.fsm_detect import detect_fsms
from ..diag.model import Diagnostic, Severity, SourceSpan
from .clockdomain import infer_domains
from .graph import build_signal_graph
from .solver import reachable

#: Reset-like signal names (aligned with the fuzz stimulus conventions).
RESET_NAMES = frozenset(
    ["rst", "reset", "rst_n", "resetn", "rstn", "nreset", "clear", "clr"]
)

#: Suffix/prefix patterns pairing a data register with its qualifier.
_VALID_SUFFIXES = ("_valid", "_vld")
_VALID_PREFIX = "valid_"


@dataclass
class FlowReport:
    """Everything one flow analysis learned about one module."""

    module: str
    filename: str = "<input>"
    diagnostics: list = field(default_factory=list)
    #: Combinational loops, each a sorted signal-name list (L0401).
    loops: list = field(default_factory=list)
    #: Clock-domain inference result (exposed for tests/tools).
    domains: object = None
    #: Abstract-interpretation facts (:class:`repro.flow.absint.FactTable`).
    facts: object = None
    #: False only if a fixpoint hit its iteration cap (a flow bug).
    converged: bool = True

    def _emit(self, severity, code, message, lineno=0, hint=""):
        self.diagnostics.append(
            Diagnostic(
                severity,
                code,
                message,
                SourceSpan(file=self.filename, line=lineno),
                hint,
            )
        )

    def warning(self, code, message, lineno=0, hint=""):
        self._emit(Severity.WARNING, code, message, lineno, hint)

    def error(self, code, message, lineno=0, hint=""):
        self._emit(Severity.ERROR, code, message, lineno, hint)


def _signal_width(module, name):
    decl = module.find_declaration(name)
    if decl is not None:
        return decl.bit_width
    for port in module.ports:
        if port.name == name:
            return port.bit_width
    return 1


def _rhs_identifiers(record):
    names = set()
    for node in record.rhs.walk():
        if isinstance(node, ast.Identifier):
            names.add(node.name)
    return names


def _is_identity_capture(record, src):
    """``dst <= src;`` — the canonical synchronizer/capture shape."""
    return isinstance(record.rhs, ast.Identifier) and record.rhs.name == src


# ---------------------------------------------------------------------------
# L0401 — static combinational loops
# ---------------------------------------------------------------------------


def _strongly_connected(adjacency):
    """SCCs of ``{src: [dst]}`` (Tarjan, iterative, deterministic order)."""
    index_of = {}
    lowlink = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]
    nodes = sorted(set(adjacency) | {d for ds in adjacency.values() for d in ds})

    for root in nodes:
        if root in index_of:
            continue
        work = [(root, iter(adjacency.get(root, ())))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index_of:
                    index_of[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(adjacency.get(child, ()))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))
    return sccs


def _loop_path(members, adjacency):
    """A concrete cycle through an SCC, rendered ``a -> b -> a``."""
    member_set = set(members)
    start = members[0]
    path = [start]
    seen = {start}
    node = start
    while True:
        successors = [
            dst for dst in adjacency.get(node, ()) if dst in member_set
        ]
        if not successors:
            break
        closing = [dst for dst in successors if dst == start]
        fresh = [dst for dst in successors if dst not in seen]
        if not fresh or (closing and len(seen) == len(member_set)):
            path.append(start)
            return " -> ".join(path)
        node = fresh[0]
        seen.add(node)
        path.append(node)
    path.append(start)
    return " -> ".join(path)


def check_comb_loops(report, graph):
    adjacency = graph.combinational_adjacency()
    has_self = {
        src for src, dsts in adjacency.items() if src in dsts
    }
    for component in _strongly_connected(adjacency):
        if len(component) < 2 and component[0] not in has_self:
            continue
        report.loops.append(component)
        lineno = min(
            (
                e.lineno
                for e in graph.edges
                if not e.sequential
                and e.src in component
                and e.dst in component
            ),
            default=0,
        )
        report.error(
            "L0401",
            "combinational loop: %s (signals %s will not settle)"
            % (_loop_path(component, adjacency), ", ".join(component)),
            lineno=lineno,
            hint="break the cycle with a register; simulation of this "
            "design can raise CombinationalLoopError",
        )
    report.loops.sort()


# ---------------------------------------------------------------------------
# L0402 / L0403 — clock-domain crossings and valid/data asynchrony
# ---------------------------------------------------------------------------


def _is_gray_coded(name, view):
    if "gray" in name.lower():
        return True
    for record in view.assignments_to(name):
        has_xor = False
        has_shift = False
        for node in record.rhs.walk():
            if isinstance(node, ast.BinaryOp):
                if node.op in ("^", "~^", "^~"):
                    has_xor = True
                elif node.op in (">>", ">>>"):
                    has_shift = True
        if has_xor and has_shift:
            return True
    return False


def _synchronized_controls(view, graph, domains, module, dst_clock):
    """Signals in *dst_clock*'s domain derived from a 1-bit synchronizer.

    Seeds are registers clocked by *dst_clock* that identity-capture a
    width-1 signal from another domain (a synchronizer's first stage);
    the closure follows edges whose destinations stay inside
    *dst_clock*'s domain. Reading any of these in a capture condition
    counts as a handshake.
    """
    seeds = set()
    for record in view.assignments:
        if not record.sequential or record.clock != dst_clock:
            continue
        for src in sorted(_rhs_identifiers(record)):
            src_domains = domains.of(src)
            if not src_domains or dst_clock in src_domains:
                continue
            if (
                _is_identity_capture(record, src)
                and _signal_width(module, src) == 1
            ):
                seeds.add(record.target)
    if not seeds:
        return frozenset()
    local = {
        name
        for name, doms in domains.domains.items()
        if doms == frozenset([dst_clock])
    }
    edges = {}
    for edge in graph.edges:
        if edge.dst in local:
            edges.setdefault(edge.src, set()).add(edge.dst)
    return frozenset(reachable(edges, seeds))


def check_cdc(report, module, view, graph, domains):
    if domains.is_multi_clock():
        clock_set = set(domains.clocks)
        sync_cache = {}
        for record in sorted(
            (r for r in view.assignments if r.sequential and r.clock),
            key=lambda r: (r.target, r.lineno),
        ):
            dst_clock = record.clock
            sources = sorted(
                _rhs_identifiers(record) | set(record.control_sources)
            )
            for src in sources:
                if src in clock_set:
                    continue
                src_domains = domains.of(src)
                if not src_domains or dst_clock in src_domains:
                    continue
                crossing_from = ", ".join(sorted(src_domains))
                width = _signal_width(module, src)
                if _is_identity_capture(record, src):
                    if width == 1:
                        continue  # first stage of a 2-FF synchronizer
                    if _is_gray_coded(src, view):
                        continue
                    if dst_clock not in sync_cache:
                        sync_cache[dst_clock] = _synchronized_controls(
                            view, graph, domains, module, dst_clock
                        )
                    condition_ids = set(record.control_sources)
                    if condition_ids & sync_cache[dst_clock]:
                        continue  # handshake-gated capture
                    report.warning(
                        "L0403",
                        "%d-bit signal '%s' (domain %s) is captured into "
                        "'%s' (domain %s) without gray coding or a "
                        "synchronized handshake"
                        % (width, src, crossing_from, record.target,
                           dst_clock),
                        lineno=record.lineno,
                        hint="gray-code the crossing value or gate the "
                        "capture with a synchronized request/ack",
                    )
                else:
                    report.warning(
                        "L0402",
                        "signal '%s' (domain %s) feeds logic for '%s' "
                        "clocked by %s without synchronization"
                        % (src, crossing_from, record.target, dst_clock),
                        lineno=record.lineno,
                        hint="pass the signal through a 2-FF synchronizer "
                        "in the %s domain first" % dst_clock,
                    )
    _check_valid_data_skew(report, module, view, graph, domains)
    _check_circular_handshake(report, module, view)


def _check_circular_handshake(report, module, view):
    """Mutual-wait deadlocks between handshake flags (testbed C1).

    A 1-bit register *waits on* another when every assignment that can
    make it true requires the other to be true already (a positive
    occurrence in the path constraint). A cycle in the waits-on relation
    with all members starting at 0 can never fire — the paper's
    ``if (a) b <= 1; if (b) a <= 1;`` deadlock pattern.
    """
    flags = sorted(
        target
        for target in {r.target for r in view.assignments if r.sequential}
        if _signal_width(module, target) == 1
    )
    waits_on = {}
    first_line = {}
    for target in flags:
        truthy = [
            r
            for r in view.assignments_to(target)
            if r.sequential
            and isinstance(r.rhs, ast.Number)
            and r.rhs.value != 0
        ]
        if not truthy:
            continue
        if any(
            not (isinstance(r.rhs, ast.Number))
            for r in view.assignments_to(target)
            if r.sequential
        ):
            continue  # also driven by non-constant logic: not a pure flag
        required = None
        for record in truthy:
            positive = _positive_identifiers(record.condition) & set(flags)
            positive.discard(target)
            required = positive if required is None else required & positive
        if required:
            waits_on[target] = sorted(required)
            first_line[target] = min(r.lineno for r in truthy)
    adjacency = {src: dsts for src, dsts in waits_on.items()}
    for component in _strongly_connected(adjacency):
        members = [m for m in component if m in waits_on]
        if len(members) < 2:
            continue
        cycle = _loop_path(sorted(members), adjacency)
        report.warning(
            "L0402",
            "circular handshake: %s — each flag is only set once the "
            "next one is already high, and all start at 0, so none can "
            "ever fire" % cycle,
            lineno=min(first_line[m] for m in members),
            hint="break the cycle by letting one side commit without "
            "waiting for the acknowledgment",
        )


def _sequential_latencies(graph, target):
    """``{ancestor: min sequential-edge count to reach *target*}``."""
    incoming = {}
    for edge in graph.edges:
        incoming.setdefault(edge.dst, []).append(edge)
    dist = {target: 0}
    changed = True
    guard = 0
    limit = max(64, 4 * len(graph.edges) * 2)
    while changed and guard < limit:
        changed = False
        guard += 1
        for node in sorted(dist):
            for edge in incoming.get(node, []):
                cost = dist[node] + (1 if edge.sequential else 0)
                if edge.src == edge.dst:
                    continue
                if cost < dist.get(edge.src, cost + 1):
                    dist[edge.src] = cost
                    changed = True
    dist.pop(target, None)
    return dist


def _valid_pairs(module, view):
    """Name-paired (data register, valid register) candidates."""
    seq_targets = {
        r.target for r in view.assignments if r.sequential
    }
    pairs = []
    for name in sorted(seq_targets):
        if _signal_width(module, name) <= 1:
            continue
        base = name.rsplit(".", 1)[-1]
        prefix = name[: len(name) - len(base)]
        candidates = [prefix + base + s for s in _VALID_SUFFIXES]
        candidates.append(prefix + _VALID_PREFIX + base)
        for candidate in candidates:
            if (
                candidate in seq_targets
                and _signal_width(module, candidate) == 1
            ):
                pairs.append((name, candidate))
                break
    return pairs


def _record_clock(view, name):
    for record in view.assignments_to(name):
        if record.clock:
            return record.clock
    return None


def check_valid_data_skew(report, module, view, graph, domains):
    _check_valid_data_skew(report, module, view, graph, domains)


def _check_valid_data_skew(report, module, view, graph, domains):
    clock_set = set(domains.clocks)
    for data_reg, valid_reg in _valid_pairs(module, view):
        if _record_clock(view, data_reg) != _record_clock(view, valid_reg):
            continue  # cross-domain pairs are the CDC checks' business
        data_dist = _sequential_latencies(graph, data_reg)
        valid_dist = _sequential_latencies(graph, valid_reg)
        shared = sorted(
            (set(data_dist) & set(valid_dist))
            - clock_set
            - RESET_NAMES
            - {data_reg, valid_reg}
        )
        mismatched = [
            name for name in shared if data_dist[name] != valid_dist[name]
        ]
        if not mismatched:
            continue
        witness = mismatched[0]
        lineno = min(
            (r.lineno for r in view.assignments_to(valid_reg)), default=0
        )
        report.warning(
            "L0402",
            "'%s' and its qualifier '%s' arrive with different latencies "
            "from '%s' (%d vs %d cycles): data and valid are out of sync"
            % (data_reg, valid_reg, witness, data_dist[witness],
               valid_dist[witness]),
            lineno=lineno,
            hint="delay the shorter path so the value and its valid flag "
            "line up cycle-for-cycle",
        )


# ---------------------------------------------------------------------------
# L0404 / L0405 — driver races
# ---------------------------------------------------------------------------


def _conditions_provably_disjoint(left, right):
    if left is None or right is None:
        return False
    left_text = generate_expression(left)
    right_text = generate_expression(right)
    if left_text == "!(%s)" % right_text or right_text == "!(%s)" % left_text:
        return True

    def equality_test(cond):
        if isinstance(cond, ast.BinaryOp) and cond.op == "==":
            if isinstance(cond.right, ast.Number):
                return generate_expression(cond.left), cond.right.value
        return None

    left_eq = equality_test(left)
    right_eq = equality_test(right)
    if left_eq and right_eq and left_eq[0] == right_eq[0]:
        return left_eq[1] != right_eq[1]
    return False


def check_write_write_races(report, view):
    targets = {}
    for record in view.assignments:
        if record.sequential:
            targets.setdefault(record.target, []).append(record)
    for target in sorted(targets):
        records = targets[target]
        blocks = sorted({r.block for r in records})
        if len(blocks) < 2:
            continue
        racy = False
        for i, first in enumerate(records):
            for second in records[i + 1:]:
                if first.block == second.block:
                    continue
                if not _conditions_provably_disjoint(
                    first.condition, second.condition
                ):
                    racy = True
                    break
            if racy:
                break
        if not racy:
            continue
        lines = sorted({r.lineno for r in records})
        report.warning(
            "L0404",
            "register '%s' is written from %d always blocks (lines %s) "
            "under overlapping conditions; which write wins is "
            "nondeterministic"
            % (target, len(blocks), ", ".join(str(l) for l in lines)),
            lineno=lines[0],
            hint="merge the writers into one always block or make their "
            "conditions mutually exclusive",
        )


def check_mixed_drivers(report, view):
    targets = {}
    for record in view.assignments:
        if record.sequential:
            targets.setdefault(record.target, []).append(record)
    for target in sorted(targets):
        records = targets[target]
        blocking = sorted(r.lineno for r in records if r.blocking)
        nonblocking = sorted(r.lineno for r in records if not r.blocking)
        if not blocking or not nonblocking:
            continue
        report.warning(
            "L0405",
            "register '%s' mixes blocking (line %d) and nonblocking "
            "(line %d) drivers; readers in the same timestep race the "
            "blocking write"
            % (target, blocking[0], nonblocking[0]),
            lineno=min(blocking[0], nonblocking[0]),
            hint="use nonblocking assignments for every sequential "
            "driver of this register",
        )


# ---------------------------------------------------------------------------
# L0406 — read-before-reset
# ---------------------------------------------------------------------------


def _reset_signals(module):
    names = set()
    for port in module.ports:
        if (
            port.direction is ast.PortDirection.INPUT
            and port.name in RESET_NAMES
        ):
            names.add(port.name)
    return names


def _positive_identifiers(condition):
    """Identifiers appearing under an even number of negations.

    Path constraints synthesized for else-branches wrap the if-condition
    in ``!(...)`` — so ``rst`` inside ``!(rst) && enable`` is a *negated*
    occurrence (the assignment runs when reset is inactive), while
    ``if (rst)`` branch constraints carry ``rst`` positively. Only the
    positive occurrences make an assignment a reset arc.
    """
    names = set()
    if condition is None:
        return names

    def visit(node, negated):
        if isinstance(node, ast.Identifier):
            if not negated:
                names.add(node.name)
            return
        if isinstance(node, ast.UnaryOp) and node.op in ("!", "~"):
            visit(node.operand, not negated)
            return
        for child in node.children():
            visit(child, negated)

    visit(condition, False)
    return names


def _has_reset_arc(record, resets):
    """True when *record* fires while a reset signal is asserted.

    Active-low resets (``rst_n``) assert when low, so for them the
    *negated* occurrence is the reset arc.
    """
    positive = _positive_identifiers(record.condition)
    negative = set(record.control_sources) - positive
    active_low = {n for n in resets if n in ("rst_n", "resetn", "rstn",
                                             "nreset")}
    active_high = resets - active_low
    return bool(positive & active_high) or bool(negative & active_low)


def check_read_before_reset(report, module, view, chains):
    resets = _reset_signals(module)
    if not resets:
        return
    reset_discipline = any(
        _has_reset_arc(r, resets) for r in view.assignments if r.sequential
    )
    if not reset_discipline:
        return  # the design never uses its reset; not a per-register bug
    for target in sorted({r.target for r in view.assignments if r.sequential}):
        records = [r for r in view.assignments_to(target) if r.sequential]
        if any(r.condition is None for r in records):
            continue  # unconditionally driven: defined after one cycle
        if any(_has_reset_arc(r, resets) for r in records):
            continue  # has a reset arc
        # Unreset *datapath* registers are conventional (their consumers
        # wait for a valid qualifier); only flag reads that steer control
        # flow or address memory, where the uninitialized value always
        # has consequences.
        steering = [
            use
            for use in chains.uses_of(target)
            if use.kind in ("control", "index")
            and use.record.target != target
        ]
        if not steering:
            continue
        lineno = min((r.lineno for r in records), default=0)
        report.warning(
            "L0406",
            "register '%s' steers control flow (line %d) but is never "
            "reset: it holds an uninitialized value until its write "
            "condition first fires"
            % (target, min(u.record.lineno for u in steering)),
            lineno=lineno,
            hint="clear '%s' in the reset branch alongside the other "
            "state registers" % target,
        )


# ---------------------------------------------------------------------------
# L0407 — unreachable FSM states
# ---------------------------------------------------------------------------


def check_fsm_reachability(report, module):
    for fsm in detect_fsms(module):
        entry = {0} & fsm.states
        edges = {}
        for transition in fsm.transitions:
            if transition.from_state is None:
                entry.add(transition.to_state)
            else:
                edges.setdefault(transition.from_state, set()).add(
                    transition.to_state
                )
        if not entry:
            entry = {0}
        reached = set(reachable(edges, entry))
        unreachable_states = sorted(set(fsm.states) - reached)
        if not unreachable_states:
            continue
        lineno = min((t.lineno for t in fsm.transitions), default=0)
        report.warning(
            "L0407",
            "FSM '%s' has unreachable state%s %s (reachable from reset: "
            "%s)"
            % (
                fsm.name,
                "" if len(unreachable_states) == 1 else "s",
                ", ".join(str(s) for s in unreachable_states),
                ", ".join(str(s) for s in sorted(reached)),
            ),
            lineno=lineno,
            hint="add a transition into the state or delete its dead "
            "case arm",
        )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def analyze_flow(design, filename="<input>", ip_models=None):
    """Run every flow checker over an elaborated design (or flat module).

    Returns a :class:`FlowReport`; use :func:`run_flow_checks` to also
    emit the findings into a :class:`~repro.diag.model.DiagnosticSink`.
    """
    from .absint import analyze_values
    from .defuse import build_def_use

    module = getattr(design, "top", design)
    view = analyze_module(module)
    graph = build_signal_graph(module, view=view, ip_models=ip_models)
    domains = infer_domains(module, view=view, graph=graph)
    chains = build_def_use(module, view=view)
    facts, value_diagnostics = analyze_values(
        module, filename=filename, ip_models=ip_models
    )
    report = FlowReport(
        module=module.name,
        filename=filename,
        domains=domains,
        facts=facts,
        converged=domains.converged and facts.converged,
    )
    check_comb_loops(report, graph)
    check_cdc(report, module, view, graph, domains)
    check_write_write_races(report, view)
    check_mixed_drivers(report, view)
    check_read_before_reset(report, module, view, chains)
    check_fsm_reachability(report, module)
    report.diagnostics.extend(value_diagnostics)
    report.diagnostics.sort(key=Diagnostic.sort_key)
    return report


def run_flow_checks(design, sink=None, filename="<input>", ip_models=None):
    """Analyze *design* and emit findings into *sink* (when given)."""
    report = analyze_flow(design, filename=filename, ip_models=ip_models)
    if sink is not None:
        for diagnostic in report.diagnostics:
            sink.emit(diagnostic)
    return report
