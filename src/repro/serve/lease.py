"""Lease-based job ownership with epoch fencing.

A worker never *owns* a job — it holds a **lease** on one attempt of
it. Every dispatch grants a fresh lease whose epoch is one higher than
any lease that job has ever had; the epoch travels with the job frame
and must come back attached to the result. That single integer is what
makes the fabric safe under partitions:

* when the server declares a worker dead (missed heartbeats, a closed
  connection, a blown job deadline) and requeues the job, the *next*
  dispatch bumps the epoch — the dead worker's lease is implicitly
  **fenced**. If the worker was not dead at all, merely partitioned,
  and later delivers its result, the stale epoch identifies the result
  as an echo from a revoked owner and it is dropped
  (``serve.lease.stale_rejected``), never double-applied;
* a result frame duplicated in flight (retransmission, a chaos monkey
  with a packet mirror) carries the *current* epoch twice; the
  first-application registry in the :class:`~repro.serve.store.JobStore`
  makes the second copy a no-op (``serve.lease.duplicate_ignored``).

Epochs are per-job and monotonic for the life of the server process;
``--resume`` restarts them from the journal's high-water mark so a
resumed run can never re-issue an epoch an old result might still be
carrying.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class Lease:
    """One granted (job, epoch) ownership token."""

    job_id: str
    epoch: int

    @property
    def token(self):
        """Stable string form, used as the watchdog/obs token."""
        return "%s@%d" % (self.job_id, self.epoch)


class LeaseTable:
    """Per-job monotonic lease epochs (thread-safe)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._epochs = {}  # job_id -> highest epoch ever granted
        self.granted = 0
        self.stale_rejected = 0

    def grant(self, job_id):
        """Grant a fresh lease on *job_id*, fencing every earlier one."""
        with self._lock:
            epoch = self._epochs.get(job_id, 0) + 1
            self._epochs[job_id] = epoch
            self.granted += 1
        return Lease(job_id=job_id, epoch=epoch)

    def revoke(self, job_id):
        """Fence the current lease without granting a new one.

        Any in-flight result carrying the revoked epoch becomes stale
        immediately; the next :meth:`grant` continues the sequence.
        """
        with self._lock:
            if job_id in self._epochs:
                self._epochs[job_id] += 1

    def current(self, job_id):
        """The highest epoch granted for *job_id* (0 if never leased)."""
        with self._lock:
            return self._epochs.get(job_id, 0)

    def is_current(self, job_id, epoch):
        """Is *epoch* the live lease for *job_id*?"""
        with self._lock:
            return epoch == self._epochs.get(job_id, 0)

    def observe(self, job_id, epoch):
        """Fast-forward past *epoch* (journal replay during ``--resume``).

        Guarantees no future :meth:`grant` re-issues an epoch that a
        pre-crash worker might still deliver a result under.
        """
        with self._lock:
            if epoch > self._epochs.get(job_id, 0):
                self._epochs[job_id] = epoch

    def record_stale(self, job_id, epoch):
        """Count one fenced (stale-epoch) result rejection."""
        from .. import obs

        with self._lock:
            self.stale_rejected += 1
        if obs.enabled:
            obs.counter("serve.lease.stale_rejected").inc()

    def forget(self, job_id):
        """Drop a terminal job's entry (bounded memory on long runs)."""
        with self._lock:
            self._epochs.pop(job_id, None)

    def snapshot(self):
        """JSON-ready counters."""
        with self._lock:
            return {
                "granted": self.granted,
                "active_jobs": len(self._epochs),
                "stale_rejected": self.stale_rejected,
            }
