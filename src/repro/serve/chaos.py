"""Seeded fault injection for the serve harness itself.

The rest of the repo injects faults into *designs*; this module injects
them into the *server* — the same philosophy turned inward. A
:class:`ChaosMonkey` decides, deterministically per ``(job, attempt)``,
whether to SIGKILL the worker mid-job, and — on the TCP fabric — whether
to drop, duplicate, or delay a result frame or stall a worker's
heartbeats past the miss window. Determinism matters: the chaos
acceptance test demands that a campaign run under chaos, killed halfway
and resumed, produce a final report byte-identical to an uninterrupted
chaos run — which only holds if the monkey's choices depend on job
identity, never on wall clock or arrival order.

Injected *hangs* ride on the job itself (``params["_chaos_hang"]``, see
:func:`repro.serve.jobs.execute_job`) because a hang is a property of
the work; kills are a property of the environment and live here.
Corrupted cache entries and truncated journals are injected directly by
the tests through :meth:`ArtifactCache.corrupt_entry` and file
truncation — they are data-at-rest faults with no scheduling component.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass


@dataclass
class ChaosConfig:
    """Knobs for harness-level fault injection (all off by default)."""

    seed: int = 0
    #: Probability that any given (job, attempt) execution gets its
    #: worker SIGKILLed partway through.
    kill_prob: float = 0.0
    #: Upper bound, in seconds, on how far into the attempt the kill
    #: lands (the actual delay is a deterministic fraction of this).
    kill_delay: float = 0.05
    #: Fabric-only: probability that a result frame is "lost" and the
    #: connection that carried it dropped (seeded connection drop).
    drop_prob: float = 0.0
    #: Fabric-only: probability that a worker's heartbeats go unheard
    #: for ``stall_duration`` seconds after a dispatch — long enough to
    #: trip the miss window and mark the worker suspect.
    stall_prob: float = 0.0
    stall_duration: float = 0.0
    #: Fabric-only: probability that a result frame is applied twice
    #: (duplicate delivery — must be a no-op thanks to the lease fence).
    dup_prob: float = 0.0
    #: Fabric-only: probability that a result frame is applied late, up
    #: to ``delay_max`` seconds after arrival.
    delay_prob: float = 0.0
    delay_max: float = 0.1

    @property
    def active(self):
        return (self.kill_prob > 0 or self.drop_prob > 0
                or self.stall_prob > 0 or self.dup_prob > 0
                or self.delay_prob > 0)


class ChaosMonkey:
    """Deterministic per-(job, attempt) fault decisions.

    Every roll is keyed ``(seed, job_id, attempt-or-epoch, salt)``, so a
    chaos campaign replays identically across runs and ``--resume`` —
    the fabric passes the lease epoch where the pool passes the attempt
    number; both are per-execution identities.
    """

    def __init__(self, config):
        self.config = config
        self.kills_planned = 0
        self.drops_planned = 0
        self.stalls_planned = 0
        self.dups_planned = 0
        self.delays_planned = 0

    def _roll(self, job_id, attempt, salt):
        token = "%d:%s:%d:%s" % (self.config.seed, job_id, attempt, salt)
        return (zlib.crc32(token.encode("utf-8")) & 0xFFFFFFFF) / 2.0 ** 32

    def kill_after(self, job_id, attempt):
        """Seconds until this attempt's worker should be killed, or None."""
        if self.config.kill_prob <= 0:
            return None
        if self._roll(job_id, attempt, "kill") >= self.config.kill_prob:
            return None
        self.kills_planned += 1
        return self.config.kill_delay * self._roll(job_id, attempt, "delay")

    def drop_result(self, job_id, epoch):
        """Should this result frame be lost (and its connection cut)?"""
        if self.config.drop_prob <= 0:
            return False
        if self._roll(job_id, epoch, "drop") >= self.config.drop_prob:
            return False
        self.drops_planned += 1
        return True

    def stall_after(self, job_id, epoch):
        """Heartbeat-deafness duration for this dispatch, or None."""
        if self.config.stall_prob <= 0:
            return None
        if self._roll(job_id, epoch, "stall") >= self.config.stall_prob:
            return None
        self.stalls_planned += 1
        return self.config.stall_duration

    def duplicate_result(self, job_id, epoch):
        """Should this result frame be delivered twice?"""
        if self.config.dup_prob <= 0:
            return False
        if self._roll(job_id, epoch, "dup") >= self.config.dup_prob:
            return False
        self.dups_planned += 1
        return True

    def delay_result(self, job_id, epoch):
        """Late-application delay for this result frame, or None."""
        if self.config.delay_prob <= 0:
            return None
        if self._roll(job_id, epoch, "lag") >= self.config.delay_prob:
            return None
        self.delays_planned += 1
        return self.config.delay_max * self._roll(job_id, epoch, "lagdur")
