"""Seeded fault injection for the serve harness itself.

The rest of the repo injects faults into *designs*; this module injects
them into the *server* — the same philosophy turned inward. A
:class:`ChaosMonkey` decides, deterministically per ``(job, attempt)``,
whether to SIGKILL the worker mid-job. Determinism matters: the chaos
acceptance test demands that a campaign run under chaos, killed halfway
and resumed, produce a final report byte-identical to an uninterrupted
chaos run — which only holds if the monkey's choices depend on job
identity, never on wall clock or arrival order.

Injected *hangs* ride on the job itself (``params["_chaos_hang"]``, see
:func:`repro.serve.jobs.execute_job`) because a hang is a property of
the work; kills are a property of the environment and live here.
Corrupted cache entries and truncated journals are injected directly by
the tests through :meth:`ArtifactCache.corrupt_entry` and file
truncation — they are data-at-rest faults with no scheduling component.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass


@dataclass
class ChaosConfig:
    """Knobs for harness-level fault injection (all off by default)."""

    seed: int = 0
    #: Probability that any given (job, attempt) execution gets its
    #: worker SIGKILLed partway through.
    kill_prob: float = 0.0
    #: Upper bound, in seconds, on how far into the attempt the kill
    #: lands (the actual delay is a deterministic fraction of this).
    kill_delay: float = 0.05

    @property
    def active(self):
        return self.kill_prob > 0


class ChaosMonkey:
    """Deterministic per-(job, attempt) kill decisions."""

    def __init__(self, config):
        self.config = config
        self.kills_planned = 0

    def _roll(self, job_id, attempt, salt):
        token = "%d:%s:%d:%s" % (self.config.seed, job_id, attempt, salt)
        return (zlib.crc32(token.encode("utf-8")) & 0xFFFFFFFF) / 2.0 ** 32

    def kill_after(self, job_id, attempt):
        """Seconds until this attempt's worker should be killed, or None."""
        if not self.config.active:
            return None
        if self._roll(job_id, attempt, "kill") >= self.config.kill_prob:
            return None
        self.kills_planned += 1
        return self.config.kill_delay * self._roll(job_id, attempt, "delay")
