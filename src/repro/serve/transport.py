"""The ``WorkerTransport`` interface: one contract, two transports.

The server hands jobs to *a transport* and gets terminal transitions
back; whether the workers are subprocesses fed over pipes
(:class:`~repro.serve.pool.WorkerPool`) or separate processes — on this
host or another — connected over TCP
(:class:`~repro.serve.fabric.FabricPool`) is the transport's business.
This module holds the machinery both share, because the failure model
is the same either way:

* **admission** — a kind quarantined by the circuit breaker never
  reaches a worker;
* **lease-fenced, idempotent result application** — every dispatch
  holds a :class:`~repro.serve.lease.Lease`; :meth:`deliver` applies a
  result only if its epoch is current (a partitioned worker's late echo
  is dropped and counted) and only once per ``(job_id, epoch)`` (a
  duplicated frame is a no-op);
* **requeue with backoff** — a transiently failed attempt goes back on
  the queue after exponential backoff + jitter while retry budget
  remains, then finalizes;
* **exactly-once finalization** — executions are at-least-once, but a
  job reaches a terminal status exactly once, which the journal's
  ``done`` records and ``--resume`` rely on.

Concrete transports implement ``_enqueue`` (accept one queued job),
``queue_depth``, ``close``, and optionally ``kick`` (force-requeue a
straggling job onto another worker — the shard coordinator uses it)
and ``_requeue_after`` (transports whose delivery path must not block
override the default sleep-then-enqueue).
"""

from __future__ import annotations

import threading
import time

from ..runtime import backoff_delay
from .jobs import CRASHED, DONE, FAILED, QUEUED, QUARANTINED, TIMEOUT
from .lease import LeaseTable

#: Watchdog/abandon reasons shared by the transports.
REASON_TIMEOUT = "timeout"
REASON_CHAOS = "chaos"


class WorkerTransport:
    """Shared robustness core for every worker transport."""

    def __init__(
        self,
        watchdog_seconds=30.0,
        retries=2,
        backoff=0.25,
        jitter=0.1,
        breaker=None,
        chaos=None,
        leases=None,
        store=None,
        on_done=None,
        sleep=time.sleep,
    ):
        self.watchdog_seconds = watchdog_seconds
        self.retries = retries
        self.backoff = backoff
        self.jitter = jitter
        self.breaker = breaker
        self.chaos = chaos
        self.leases = leases if leases is not None else LeaseTable()
        self.store = store
        self.on_done = on_done or (lambda job: None)
        self._sleep = sleep
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._outstanding = 0
        self._closed = False
        #: Fallback first-application registry when no store is wired
        #: (standalone transports in tests and benchmarks).
        self._applied = set()
        self.stats = {
            "executions": 0,
            "retries": 0,
            "watchdog_kills": 0,
            "chaos_kills": 0,
            "worker_restarts": 0,
            "stale_rejected": 0,
            "duplicate_ignored": 0,
        }

    # -- submission / lifecycle --------------------------------------------

    def submit(self, job):
        """Queue *job* — or quarantine it instantly if its kind is open."""
        if self.breaker is not None and not self.breaker.allow(job.kind):
            with self._lock:
                self._outstanding += 1
            self._finalize(
                job, QUARANTINED,
                error="job kind %r quarantined by circuit breaker"
                      % job.kind,
            )
            return
        with self._lock:
            self._outstanding += 1
        job.status = QUEUED
        self._enqueue(job)
        self._gauge_depth()

    def _enqueue(self, job):
        raise NotImplementedError

    def queue_depth(self):
        raise NotImplementedError

    def close(self):
        raise NotImplementedError

    def kick(self, job):
        """Force-requeue a straggling non-terminal job (best effort).

        The default transport has no way to preempt a running attempt
        (the deadline watchdog already bounds it), so this is a no-op;
        the TCP fabric re-dispatches the job onto another worker and
        fences the old lease.
        """

    def outstanding(self):
        with self._lock:
            return self._outstanding

    def stats_snapshot(self):
        with self._lock:
            return dict(self.stats)

    def drain(self, timeout=None):
        """Block until every submitted job is terminal. True on success."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._drained:
            while self._outstanding > 0:
                remaining = None if deadline is None else (
                    deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._drained.wait(
                    0.5 if remaining is None else min(remaining, 0.5)
                )
        return True

    @property
    def closed(self):
        with self._lock:
            return self._closed

    def _mark_closed(self):
        """True if this call performed the open->closed transition."""
        with self._lock:
            if self._closed:
                return False
            self._closed = True
            return True

    # -- bookkeeping ---------------------------------------------------------

    def _gauge_depth(self):
        from .. import obs

        if obs.enabled:
            obs.gauge("serve.queue.depth").set(self.queue_depth())

    def _count(self, name):
        from .. import obs

        with self._lock:
            self.stats[name] = self.stats.get(name, 0) + 1
        if obs.enabled:
            obs.counter("serve.%s" % name).inc()

    # -- lease-fenced result application ------------------------------------

    def _first_application(self, job_id, epoch):
        if self.store is not None:
            return self.store.mark_applied(job_id, epoch)
        with self._lock:
            if (job_id, epoch) in self._applied:
                return False
            self._applied.add((job_id, epoch))
            return True

    def deliver(self, job, epoch, ok, payload=None, error="",
                error_code=None, transient=False):
        """Apply one attempt's result through the lease fence.

        Returns True if the result was applied (finalized or requeued),
        False if it was rejected as stale (fenced epoch) or as a
        duplicate delivery of an already-applied ``(job, epoch)``.
        """
        if not self.leases.is_current(job.id, epoch):
            self.leases.record_stale(job.id, epoch)
            self._count("stale_rejected")
            return False
        if not self._first_application(job.id, epoch):
            self._count("duplicate_ignored")
            from .. import obs

            if obs.enabled:
                obs.counter("serve.lease.duplicate_ignored").inc()
            return False
        if job.terminal:
            # Belt and braces: fencing should make this unreachable.
            self._count("duplicate_ignored")
            return False
        job.lease_epoch = epoch
        if ok:
            self._finalize(job, DONE, payload=payload)
        else:
            self._retry_or_finalize(
                job, FAILED, error=error, error_code=error_code,
                transient=transient,
            )
        return True

    def abandon(self, job, epoch, status=CRASHED, error="worker died",
                count=None):
        """Declare attempt *epoch* of *job* dead and requeue/finalize it.

        Fences the lease first, so a result the vanished worker still
        delivers is rejected; if the lease is no longer current the
        attempt was already handled and this is a no-op.
        """
        if not self.leases.is_current(job.id, epoch):
            return False
        self.leases.revoke(job.id)
        if count:
            self._count(count)
        self._retry_or_finalize(job, status, error=error)
        return True

    # -- terminal transitions ------------------------------------------------

    def _finalize(self, job, status, payload=None, error="",
                  error_code=None):
        from .. import obs

        assert not job.terminal, "job %s finalized twice" % job.id
        job.status = status
        job.result = payload
        job.error = error
        job.error_code = error_code
        if self.breaker is not None:
            if status == DONE:
                self.breaker.record_success(job.kind)
            elif status in (TIMEOUT, CRASHED):
                self.breaker.record_failure(job.kind)
        if obs.enabled:
            obs.counter("serve.jobs.%s" % status).inc()
        self.leases.forget(job.id)
        with self._drained:
            self._outstanding -= 1
            self._drained.notify_all()
        self.on_done(job)

    def _retry_or_finalize(self, job, status, error, error_code=None,
                           transient=True):
        """Requeue a transiently failed attempt, or make *status* final."""
        if transient and job.attempts <= self.retries and not self.closed:
            self._count("retries")
            delay = backoff_delay(
                job.attempts, base_delay=self.backoff, jitter=self.jitter
            )
            job.status = QUEUED
            self._requeue_after(job, delay)
            return
        self._finalize(job, status, error=error, error_code=error_code)

    def _requeue_after(self, job, delay):
        """Re-enqueue *job* after *delay* seconds (blocking by default).

        Transports whose delivery path runs on an event loop override
        this with a scheduled callback instead of sleeping in place.
        """
        self._sleep(delay)
        self._enqueue(job)
        self._gauge_depth()
