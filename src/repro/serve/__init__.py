"""repro.serve: fault-tolerant debugging-as-a-service.

The paper argues debugging tools must survive hostile conditions —
hangs, lost data, partial observability. This package applies that
thesis to the serving layer itself: every subsystem (``check``,
``profile``, ``wavediff``, ``fuzz``, ``faults``, ``repair``) becomes an
asynchronously executed *job* behind a stdlib-``asyncio``
JSON-over-HTTP API, engineered for robustness end to end:

* :mod:`~repro.serve.pool` — subprocess workers under a thread-safe
  monotonic-deadline watchdog (:mod:`~repro.serve.watchdog`), with
  kill/requeue on worker death, retry-with-backoff+jitter, and a
  circuit breaker (:mod:`~repro.serve.breaker`) that quarantines a sick
  job class instead of taking the server down;
* :mod:`~repro.serve.cache` — content-addressed artifact cache keyed by
  source digest: bounded, LRU-evicted, verified on read (a corrupt
  entry costs a recompute, never a crash);
* :mod:`~repro.serve.store` — the job queue and results ride a
  crash-safe ``JsonlJournal``; ``repro serve --resume`` replays
  incomplete work, and graceful drain on SIGTERM flushes in-flight
  results and a deterministic final report;
* :mod:`~repro.serve.quota` — per-client token buckets with structured
  429s; :mod:`~repro.serve.chaos` — seeded harness-level fault
  injection (worker SIGKILLs, dropped/stalled/duplicated/delayed
  fabric frames) used by the chaos acceptance tests;
* :mod:`~repro.serve.fabric` — TCP worker transport: remote workers
  (``python -m repro worker --connect``) speak length-prefixed JSON
  frames with heartbeats, and every dispatch carries a
  :mod:`~repro.serve.lease` epoch so a partitioned worker's stale
  result is fenced, never double-applied;
* :mod:`~repro.serve.shard` — partition-tolerant campaign sharding:
  fuzz/faults/repair campaigns split into deterministic sub-ranges
  fanned across workers, merged byte-identical to the unsharded run.

Start one with ``python -m repro serve``; talk to it with
``python -m repro submit`` or :class:`~repro.serve.client.ServeClient`.
"""

from .breaker import CircuitBreaker
from .cache import ArtifactCache
from .chaos import ChaosConfig, ChaosMonkey
from .client import QuotaExceeded, ServeClient, ServeClientError
from .fabric import PROTO_VERSION, FabricPool, FrameError, encode_frame
from .jobs import (
    JOB_KINDS,
    TERMINAL_STATUSES,
    Job,
    JobError,
    execute_job,
    job_cache_key,
    payload_digest,
)
from .lease import LeaseTable
from .pool import WorkerPool
from .quota import TokenBucketQuota
from .server import ReproServer, ServeConfig, ShardCoordinator
from .shard import SHARDABLE_KINDS, merge_shards, plan_shards, shard_count
from .store import SCHEMA, JobStore
from .transport import WorkerTransport
from .watchdog import DeadlineWatchdog

__all__ = [
    "SCHEMA",
    "JOB_KINDS",
    "PROTO_VERSION",
    "SHARDABLE_KINDS",
    "TERMINAL_STATUSES",
    "Job",
    "JobError",
    "execute_job",
    "job_cache_key",
    "payload_digest",
    "ArtifactCache",
    "DeadlineWatchdog",
    "CircuitBreaker",
    "TokenBucketQuota",
    "WorkerPool",
    "WorkerTransport",
    "FabricPool",
    "FrameError",
    "encode_frame",
    "LeaseTable",
    "ChaosConfig",
    "ChaosMonkey",
    "JobStore",
    "ReproServer",
    "ServeConfig",
    "ShardCoordinator",
    "merge_shards",
    "plan_shards",
    "shard_count",
    "ServeClient",
    "ServeClientError",
    "QuotaExceeded",
]
