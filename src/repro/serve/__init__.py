"""repro.serve: fault-tolerant debugging-as-a-service.

The paper argues debugging tools must survive hostile conditions —
hangs, lost data, partial observability. This package applies that
thesis to the serving layer itself: every subsystem (``check``,
``profile``, ``wavediff``, ``fuzz``, ``faults``, ``repair``) becomes an
asynchronously executed *job* behind a stdlib-``asyncio``
JSON-over-HTTP API, engineered for robustness end to end:

* :mod:`~repro.serve.pool` — subprocess workers under a thread-safe
  monotonic-deadline watchdog (:mod:`~repro.serve.watchdog`), with
  kill/requeue on worker death, retry-with-backoff+jitter, and a
  circuit breaker (:mod:`~repro.serve.breaker`) that quarantines a sick
  job class instead of taking the server down;
* :mod:`~repro.serve.cache` — content-addressed artifact cache keyed by
  source digest: bounded, LRU-evicted, verified on read (a corrupt
  entry costs a recompute, never a crash);
* :mod:`~repro.serve.store` — the job queue and results ride a
  crash-safe ``JsonlJournal``; ``repro serve --resume`` replays
  incomplete work, and graceful drain on SIGTERM flushes in-flight
  results and a deterministic final report;
* :mod:`~repro.serve.quota` — per-client token buckets with structured
  429s; :mod:`~repro.serve.chaos` — seeded harness-level fault
  injection (worker SIGKILLs) used by the chaos acceptance tests.

Start one with ``python -m repro serve``; talk to it with
``python -m repro submit`` or :class:`~repro.serve.client.ServeClient`.
"""

from .breaker import CircuitBreaker
from .cache import ArtifactCache
from .chaos import ChaosConfig, ChaosMonkey
from .client import QuotaExceeded, ServeClient, ServeClientError
from .jobs import (
    JOB_KINDS,
    TERMINAL_STATUSES,
    Job,
    JobError,
    execute_job,
    job_cache_key,
    payload_digest,
)
from .pool import WorkerPool
from .quota import TokenBucketQuota
from .server import ReproServer, ServeConfig
from .store import SCHEMA, JobStore
from .watchdog import DeadlineWatchdog

__all__ = [
    "SCHEMA",
    "JOB_KINDS",
    "TERMINAL_STATUSES",
    "Job",
    "JobError",
    "execute_job",
    "job_cache_key",
    "payload_digest",
    "ArtifactCache",
    "DeadlineWatchdog",
    "CircuitBreaker",
    "TokenBucketQuota",
    "WorkerPool",
    "ChaosConfig",
    "ChaosMonkey",
    "JobStore",
    "ReproServer",
    "ServeConfig",
    "ServeClient",
    "ServeClientError",
    "QuotaExceeded",
]
