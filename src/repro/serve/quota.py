"""Per-client token-bucket quotas for the serve API.

Every client (the ``X-Repro-Client`` header, defaulting to ``anon``)
gets an independent bucket holding up to ``burst`` tokens that refills
at ``rate`` tokens per second. A submission spends one token; an empty
bucket yields a structured 429 telling the client exactly how long to
back off, so well-behaved clients self-pace instead of hammering.

Thread-safe; the clock is injectable for tests. ``rate <= 0`` disables
quotas entirely (single-user / CI mode).
"""

from __future__ import annotations

import threading
import time


class TokenBucketQuota:
    """Admit-or-defer decisions for every client."""

    def __init__(self, rate=20.0, burst=40.0, clock=time.monotonic):
        self.rate = rate
        self.burst = float(burst)
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets = {}  # client -> [tokens, last_refill]
        self.denied = 0

    def admit(self, client):
        """``(True, 0.0)`` to run now, ``(False, retry_after_seconds)``.

        The returned wait is how long until one full token has
        accumulated — the value the 429 response carries in its body
        and ``Retry-After`` header.
        """
        if self.rate <= 0:
            return True, 0.0
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = [self.burst, now]
            tokens, last = bucket
            tokens = min(self.burst, tokens + (now - last) * self.rate)
            if tokens >= 1.0:
                bucket[0] = tokens - 1.0
                bucket[1] = now
                return True, 0.0
            bucket[0] = tokens
            bucket[1] = now
            self.denied += 1
            from .. import obs

            if obs.enabled:
                obs.counter("serve.quota.denied").inc()
            return False, round((1.0 - tokens) / self.rate, 3)

    def snapshot(self):
        """JSON-ready quota stats."""
        with self._lock:
            return {
                "rate": self.rate,
                "burst": self.burst,
                "clients": len(self._buckets),
                "denied": self.denied,
            }
