"""Worker process: executes jobs sent as JSON lines over stdin/stdout.

Run as ``python -m repro.serve.worker`` by the pool; never started by
hand. The protocol is one JSON object per line:

request::

    {"id": "j000001", "kind": "check", "params": {...}, "attempt": 1}

response::

    {"id": "j000001", "ok": true, "payload": {...}}
    {"id": "j000001", "ok": false, "error": "...", "error_code": "...",
     "transient": false}

A worker that hangs simply produces no line; the pool's deadline
watchdog SIGKILLs it and the manager thread sees EOF. Running each job
on this process's *main* thread keeps the wrapped subsystems'
``SIGALRM``-based :func:`repro.runtime.time_limit` fully functional
(repair candidate watchdogs, campaign case timeouts) — the serve
watchdog is the outer, unconditional bound.

``transient`` marks failures worth retrying (wall-clock limits blown by
a noisy neighbour); deterministic failures — parse errors, unknown
bugs — are final on the first attempt.
"""

from __future__ import annotations

import json
import os
import sys

from ..diag.model import error_code
from ..runtime import TimeLimitExceeded
from .jobs import execute_job


def _respond(out, record):
    out.write(json.dumps(record, sort_keys=True) + "\n")
    out.flush()


def main(stdin=None, stdout=None):
    stdin = stdin or sys.stdin
    stdout = stdout or sys.stdout
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except ValueError:
            _respond(stdout, {"id": None, "ok": False,
                              "error": "malformed request",
                              "error_code": None, "transient": False})
            continue
        job_id = request.get("id")
        attempt = int(request.get("attempt", 1))
        params = request.get("params") or {}
        exit_chaos = params.get("_chaos_exit")
        if exit_chaos and attempt <= int(exit_chaos.get("attempts", 1)):
            # Simulated worker crash (chaos harness): die without a
            # response, exactly like a segfault would look.
            os._exit(57)
        try:
            payload = execute_job(request.get("kind"), params,
                                  attempt=attempt)
            _respond(stdout, {"id": job_id, "ok": True, "payload": payload})
        except KeyboardInterrupt:
            raise
        except BaseException as exc:  # noqa: BLE001 — report, don't die
            _respond(stdout, {
                "id": job_id,
                "ok": False,
                "error": "%s: %s" % (type(exc).__name__, str(exc)[:300]),
                "error_code": error_code(exc),
                "transient": isinstance(exc, TimeLimitExceeded),
            })


if __name__ == "__main__":
    main()
