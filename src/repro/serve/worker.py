"""Worker process: executes jobs for the pool or over the TCP fabric.

Two entry points share one execution core (:func:`run_one`):

* :func:`main` — spawned as ``python -m repro.serve.worker`` by the
  subprocess pool; one JSON object per line over stdin/stdout:

  request::

      {"id": "j000001", "kind": "check", "params": {...}, "attempt": 1,
       "epoch": 3}

  response::

      {"id": "j000001", "ok": true, "payload": {...}, "epoch": 3}
      {"id": "j000001", "ok": false, "error": "...", "error_code": "...",
       "transient": false, "epoch": 3}

  A worker that hangs simply produces no line; the pool's deadline
  watchdog SIGKILLs it and the manager thread sees EOF.

* :func:`main_tcp` — started by hand (or CI) as ``python -m repro
  worker --connect HOST:PORT --token T``; speaks the length-prefixed
  frame protocol of :mod:`~repro.serve.fabric`, heartbeats from a side
  thread, and reconnects with backoff when the server goes away. Here
  there is no babysitting manager, so the worker bounds *itself*: each
  job runs under the handshake-negotiated deadline via
  ``SIGALRM``-based :func:`repro.runtime.time_limit`, turning a hang
  into a transient error frame instead of a silent wedge. The server's
  own (longer) deadline still covers a worker too wedged to do even
  that.

Either way, jobs run on this process's *main* thread so the wrapped
subsystems' ``SIGALRM`` limits stay fully functional (repair candidate
watchdogs, campaign case timeouts).

``transient`` marks failures worth retrying (wall-clock limits blown by
a noisy neighbour); deterministic failures — parse errors, unknown
bugs — are final on the first attempt. The lease ``epoch`` is echoed
verbatim: the worker never interprets it, the server fences with it.
"""

from __future__ import annotations

import json
import os
import socket
import sys
import threading
import time

from ..diag.model import error_code
from ..runtime import TimeLimitExceeded, time_limit
from .jobs import execute_job


def _respond(out, record):
    out.write(json.dumps(record, sort_keys=True) + "\n")
    out.flush()


def run_one(request, deadline=None):
    """Execute one job request; return the response record.

    ``deadline`` (seconds) arms a worker-side :func:`time_limit` around
    the job — the TCP fabric's self-bounding — so a wedged job becomes
    a transient error instead of a dead worker. Exits the process for
    the ``_chaos_exit`` harness fault, exactly like a segfault would.
    """
    job_id = request.get("id")
    attempt = int(request.get("attempt", 1))
    epoch = int(request.get("epoch", 0))
    params = request.get("params") or {}
    exit_chaos = params.get("_chaos_exit")
    if exit_chaos and attempt <= int(exit_chaos.get("attempts", 1)):
        # Simulated worker crash (chaos harness): die without a
        # response, exactly like a segfault would look.
        os._exit(57)
    # Self-bounding needs SIGALRM, which only the main thread may arm.
    # In-process test workers run on side threads; there the server's
    # own dispatch deadline is the (sole) safety net.
    arm = (deadline is not None and deadline > 0
           and threading.current_thread() is threading.main_thread())
    try:
        if arm:
            with time_limit(deadline):
                payload = execute_job(request.get("kind"), params,
                                      attempt=attempt)
        else:
            payload = execute_job(request.get("kind"), params,
                                  attempt=attempt)
        return {"id": job_id, "ok": True, "payload": payload,
                "epoch": epoch}
    except KeyboardInterrupt:
        raise
    except BaseException as exc:  # noqa: BLE001 — report, don't die
        return {
            "id": job_id,
            "ok": False,
            "error": "%s: %s" % (type(exc).__name__, str(exc)[:300]),
            "error_code": error_code(exc),
            "transient": isinstance(exc, TimeLimitExceeded),
            "epoch": epoch,
        }


def main(stdin=None, stdout=None):
    stdin = stdin or sys.stdin
    stdout = stdout or sys.stdout
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except ValueError:
            _respond(stdout, {"id": None, "ok": False,
                              "error": "malformed request",
                              "error_code": None, "transient": False})
            continue
        _respond(stdout, run_one(request))


# -- TCP fabric client --------------------------------------------------------


class _Heartbeat:
    """Side thread sending heartbeat frames every *interval* seconds.

    Shares the socket with the main thread's result writes through one
    lock — interleaved frames would tear the length-prefixed stream.
    """

    def __init__(self, sock, lock, interval):
        self._sock = sock
        self._lock = lock
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-worker-heartbeat", daemon=True
        )

    def start(self):
        self._thread.start()

    def stop(self):
        self._stop.set()

    def _run(self):
        from .fabric import encode_frame

        frame = encode_frame({"type": "heartbeat"})
        while not self._stop.wait(self._interval):
            try:
                with self._lock:
                    self._sock.sendall(frame)
            except OSError:
                return  # the main loop will notice on its next read


def _serve_connection(sock, token, worker_id, log):
    """One connected session: handshake, then jobs until EOF/bye."""
    from .fabric import PROTO_VERSION, encode_frame, read_frame_blocking

    reader = sock.makefile("rb")
    write_lock = threading.Lock()
    with write_lock:
        sock.sendall(encode_frame({
            "type": "hello",
            "proto": PROTO_VERSION,
            "token": token,
            "worker": worker_id,
        }))
    welcome = read_frame_blocking(reader)
    if welcome is None or welcome.get("type") == "reject":
        reason = (welcome or {}).get("error", "connection closed")
        log("handshake rejected: %s" % reason)
        return False  # fatal: reconnecting will not help
    if welcome.get("type") != "welcome":
        log("unexpected handshake frame %r" % welcome.get("type"))
        return False
    heartbeat = _Heartbeat(
        sock, write_lock, float(welcome.get("heartbeat", 2.0)) / 2.0
    )
    heartbeat.start()
    try:
        while True:
            frame = read_frame_blocking(reader)
            if frame is None:
                return True  # server went away: reconnect
            kind = frame.get("type")
            if kind == "bye":
                log("server said bye")
                return False
            if kind == "cancel":
                # Best effort: we only see this between jobs, where
                # there is nothing left to cancel. The lease fence on
                # the server makes acting on it optional.
                continue
            if kind != "job":
                continue
            response = run_one(frame, deadline=frame.get("deadline"))
            with write_lock:
                sock.sendall(encode_frame(dict(response, type="result")))
    finally:
        heartbeat.stop()


def main_tcp(host, port, token="", worker_id=None, max_reconnects=5,
             reconnect_delay=0.5, log=None):
    """Run a TCP fabric worker until the server dismisses it.

    Reconnects with linear backoff when the connection drops (a server
    restart, a chaos-cut link); gives up after *max_reconnects*
    consecutive failed attempts or when the server rejects the
    handshake / says bye. Returns an exit code.
    """
    log = log or (lambda msg: print(
        "[worker %s] %s" % (worker_id, msg), file=sys.stderr, flush=True
    ))
    worker_id = worker_id or ("pid%d" % os.getpid())
    failures = 0
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
        except OSError as exc:
            failures += 1
            if failures > max_reconnects:
                log("giving up after %d failed connects: %s"
                    % (failures, exc))
                return 1
            time.sleep(reconnect_delay * failures)
            continue
        failures = 0
        sock.settimeout(None)
        try:
            reconnect = _serve_connection(sock, token, worker_id, log)
        except OSError:
            reconnect = True  # connection died mid-session
        finally:
            try:
                sock.close()
            except OSError:
                pass
        if not reconnect:
            return 0
        time.sleep(reconnect_delay)


if __name__ == "__main__":
    main()
