"""Deterministic campaign sharding: split, fan out, merge byte-identically.

A campaign job (``fuzz``, ``faults``, ``repair``) submitted with
``params["_shards"] = N`` is split into *N* child jobs, fanned across
the worker fabric, and merged — and the merge is **byte-identical** to
what one worker computing the whole campaign would have returned. That
property is not best-effort; it is what every split here is chosen for:

* **fuzz** — case recipes depend only on ``(seed, index)``
  (:func:`repro.fuzz.runner.case_spec`), so a campaign of ``cases``
  cases is exactly the index range ``[start, start+cases)`` and shards
  are contiguous sub-ranges. Counts sum, buckets union, failures
  concatenate in index order;
* **faults** — case seeds depend only on ``(seed, bug, index)``
  (:func:`repro.faults.campaign.case_seed`), so the ``bugs x
  range(faults_per_bug)`` grid partitions into explicit case lists and
  the parent report is rebuilt from the concatenated records by the
  same :class:`~repro.faults.campaign.FaultCampaignReport` the
  unsharded run uses;
* **repair** — candidates enumerate in a deterministic order, so the
  budget window ``[0, budget)`` splits into enumeration-index ranges.
  This is only sound when no shard can end the campaign early, hence
  the **determinism rule**: sharded repair requires ``stop_after=0``
  (exhaust the window); anything else is rejected at submission.

``_shards`` is underscore-prefixed deliberately: like the ``_chaos*``
knobs it changes *how* the answer is computed, never *what* it is, so
:func:`repro.serve.jobs.job_cache_key` excludes it and a sharded parent
shares its cache entry with the equivalent unsharded submission.
Children carry real (keyed) range parameters and get their own entries.
"""

from __future__ import annotations

from .jobs import JobError

#: Kinds that know how to split. Everything else runs whole.
SHARDABLE_KINDS = ("fuzz", "faults", "repair")


def shard_count(params):
    """The validated ``_shards`` value of a submission (1 = unsharded)."""
    raw = params.get("_shards", 1)
    try:
        count = int(raw)
    except (TypeError, ValueError):
        raise JobError("_shards must be an integer, got %r" % (raw,))
    if count < 1:
        raise JobError("_shards must be >= 1, got %d" % count)
    return count


def _split_range(total, shards):
    """Contiguous ``(offset, length)`` chunks covering ``[0, total)``."""
    shards = min(shards, max(1, total))
    base, extra = divmod(total, shards)
    chunks = []
    offset = 0
    for index in range(shards):
        length = base + (1 if index < extra else 0)
        chunks.append((offset, length))
        offset += length
    return chunks


def _child_params(params, **overrides):
    child = {k: v for k, v in params.items() if k != "_shards"}
    child.update(overrides)
    return child


def _fault_grid(params):
    bugs = tuple(params.get("bugs") or ())
    if not bugs:
        from ..testbed.metadata import BUG_IDS

        bugs = tuple(BUG_IDS)
    faults_per_bug = int(params.get("faults_per_bug", 2))
    return [
        [bug_id, index]
        for bug_id in bugs
        for index in range(faults_per_bug)
    ]


def plan_shards(kind, params, shards):
    """Child param dicts for splitting ``(kind, params)`` *shards* ways.

    Raises :class:`JobError` when the submission cannot be sharded
    soundly. May return fewer children than requested when the campaign
    has fewer cases than shards; never returns an empty list.
    """
    if kind not in SHARDABLE_KINDS:
        raise JobError(
            "job kind %r cannot be sharded (shardable: %s)"
            % (kind, ", ".join(SHARDABLE_KINDS))
        )
    if kind == "fuzz":
        cases = int(params.get("cases", 25))
        start = int(params.get("start", 0))
        return [
            _child_params(params, cases=length, start=start + offset)
            for offset, length in _split_range(cases, shards)
            if length > 0
        ] or [_child_params(params)]
    if kind == "faults":
        grid = _fault_grid(params)
        return [
            _child_params(params, case_list=grid[offset:offset + length])
            for offset, length in _split_range(len(grid), shards)
            if length > 0
        ] or [_child_params(params)]
    # repair: enumeration-index windows over the candidate budget.
    if int(params.get("stop_after", 5)) != 0:
        raise JobError(
            "sharded repair requires stop_after=0: early stopping "
            "depends on global candidate order, which no shard can see"
        )
    budget = int(params.get("budget", 200))
    return [
        _child_params(params, candidate_range=[offset, offset + length])
        for offset, length in _split_range(budget, shards)
        if length > 0
    ] or [_child_params(params)]


# ---------------------------------------------------------------------------
# Merging. Each function takes the parent params and the child payloads
# in shard order and returns the payload the unsharded job would have
# produced, byte for byte (canonical JSON with sorted keys).
# ---------------------------------------------------------------------------


def _merge_fuzz(params, payloads):
    counts = {}
    buckets = set()
    failures = []
    for payload in payloads:
        for status, count in payload["counts"].items():
            counts[status] = counts.get(status, 0) + count
        buckets.update(payload["buckets"])
        failures.extend(payload["failures"])
    return {
        "seed": int(params.get("seed", 0)),
        "cases": sum(payload["cases"] for payload in payloads),
        "counts": counts,
        "buckets": sorted(buckets),
        "failures": sorted(failures, key=lambda f: f["index"]),
    }


def _merge_faults(params, payloads):
    from ..faults import FaultCampaignConfig
    from ..faults.campaign import FaultCampaignReport

    bugs = tuple(params.get("bugs") or ())
    if not bugs:
        from ..testbed.metadata import BUG_IDS

        bugs = tuple(BUG_IDS)
    config = FaultCampaignConfig(
        bugs=bugs,
        faults_per_bug=int(params.get("faults_per_bug", 2)),
        seed=int(params.get("seed", 0)),
        kinds=tuple(params["kinds"]) if params.get("kinds") else None,
    )
    records = []
    for payload in payloads:
        records.extend(payload["records"])
    return FaultCampaignReport(config=config, records=records).to_report()


def _merge_repair(params, payloads):
    from ..repair.search import build_report_from_parts

    records = []
    for payload in payloads:
        records.extend(payload["records"])
    first = payloads[0]
    return build_report_from_parts(
        bug_id=params["bug"],
        budget=int(params.get("budget", 200)),
        watchdog=float(params.get("watchdog", 10.0)),
        baseline=first["baseline"],
        sites=first["sites"],
        planned=first["planned"],
        tried=sum(payload["tried"] for payload in payloads),
        records=records,
    )


_MERGERS = {
    "fuzz": _merge_fuzz,
    "faults": _merge_faults,
    "repair": _merge_repair,
}


def merge_shards(kind, params, payloads):
    """The parent payload from child payloads in shard order."""
    merger = _MERGERS.get(kind)
    if merger is None:
        raise JobError("job kind %r has no shard merger" % kind)
    return merger(params, payloads)
