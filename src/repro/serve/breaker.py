"""Circuit breaker: quarantine a failing job class, not the server.

A job kind that keeps killing workers (a parser bug tripped by one
design, a subsystem regression) would otherwise grind the pool down —
every crash costs a worker respawn and a retry storm. After
``threshold`` consecutive fatal failures of one kind, the breaker
*opens*: new jobs of that kind are rejected instantly with status
``quarantined`` while every other kind keeps flowing. After
``cooldown`` seconds the breaker goes *half-open* and admits a single
probe job; success closes the circuit, failure re-opens it for another
cooldown.

Thread-safe; the clock is injectable so tests drive state transitions
without sleeping.
"""

from __future__ import annotations

import threading
import time

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-job-kind consecutive-failure breaker."""

    def __init__(self, threshold=5, cooldown=30.0, clock=time.monotonic):
        #: ``threshold <= 0`` disables the breaker entirely (the chaos
        #: harness does this: injected crashes are the point, not a
        #: sick job class).
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._states = {}  # kind -> {failures, opened_at, probing}

    def _state(self, kind):
        state = self._states.get(kind)
        if state is None:
            state = self._states[kind] = {
                "failures": 0, "opened_at": None, "probing": False,
            }
        return state

    def allow(self, kind):
        """May a job of *kind* run now?"""
        if self.threshold <= 0:
            return True
        from .. import obs

        with self._lock:
            state = self._state(kind)
            if state["opened_at"] is None:
                return True
            if self._clock() - state["opened_at"] < self.cooldown:
                return False
            if state["probing"]:
                return False  # one probe at a time in half-open
            state["probing"] = True
            if obs.enabled:
                obs.counter("serve.breaker.half_open").inc()
            return True

    def record_success(self, kind):
        if self.threshold <= 0:
            return
        from .. import obs

        with self._lock:
            was_probe = self._state(kind)["probing"]
            self._states[kind] = {
                "failures": 0, "opened_at": None, "probing": False,
            }
        if was_probe and obs.enabled:
            obs.counter("serve.breaker.closed").inc()

    def record_failure(self, kind):
        if self.threshold <= 0:
            return
        from .. import obs

        with self._lock:
            state = self._state(kind)
            state["failures"] += 1
            if state["probing"] or state["failures"] >= self.threshold:
                reopened = state["probing"]
                state["opened_at"] = self._clock()
                state["probing"] = False
                if obs.enabled:
                    obs.counter("serve.breaker.opened").inc()
                    if reopened:
                        obs.counter("serve.breaker.reopened").inc()

    def state(self, kind):
        """``closed`` / ``open`` / ``half-open`` for *kind*."""
        if self.threshold <= 0:
            return CLOSED
        with self._lock:
            state = self._state(kind)
            if state["opened_at"] is None:
                return CLOSED
            if self._clock() - state["opened_at"] < self.cooldown:
                return OPEN
            return HALF_OPEN

    def snapshot(self):
        """JSON-ready per-kind states (only kinds that ever failed)."""
        with self._lock:
            kinds = sorted(self._states)
        return {
            kind: {
                "state": self.state(kind),
                "consecutive_failures": self._states[kind]["failures"],
            }
            for kind in kinds
        }
