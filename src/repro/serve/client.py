"""Thin stdlib HTTP client for the serve API.

The CLI (``python -m repro submit``), the CI smoke job, the tests, and
the throughput benchmark all talk to the server through this class —
the CLI is just one client among many. Synchronous on purpose: one
request per connection matches the server's ``Connection: close``
model, and callers that want concurrency use threads.

Transient transport failures (connection reset mid-poll, a server
restarting under ``--resume``, a flapping network) are retried with
exponential backoff — but only for **GET** requests, which are
idempotent by construction. A retried ``POST /jobs`` could enqueue the
same campaign twice; submissions fail fast instead and the caller
decides. ``max_retries=0`` (the default) preserves strict fail-fast
behavior for callers that manage their own retry policy.
"""

from __future__ import annotations

import http.client
import json
import time
from urllib.parse import urlsplit

#: Transport-level failures worth a reconnect (the server never sent a
#: complete response; the request may simply be re-asked).
RETRYABLE_ERRORS = (
    ConnectionError,
    http.client.BadStatusLine,
    http.client.RemoteDisconnected,
    http.client.ResponseNotReady,
    TimeoutError,
    OSError,
)


class ServeClientError(Exception):
    """The server refused or failed a request (HTTP >= 400)."""

    def __init__(self, status, payload):
        message = "unexpected response"
        if isinstance(payload, dict):
            message = payload.get("error", message)
        super().__init__("HTTP %d: %s" % (status, message))
        self.status = status
        self.payload = payload


class QuotaExceeded(ServeClientError):
    """Structured 429: carries how long to back off."""

    def __init__(self, status, payload):
        super().__init__(status, payload)
        self.retry_after = (
            payload.get("retry_after", 1.0)
            if isinstance(payload, dict) else 1.0
        )


class ServeClient:
    """Talks to one ``repro serve`` instance."""

    def __init__(self, base_url, client_id="anon", timeout=60.0,
                 max_retries=0, retry_backoff=0.2, sleep=time.sleep):
        split = urlsplit(base_url if "//" in base_url
                         else "http://" + base_url)
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 8731
        self.client_id = client_id
        self.timeout = timeout
        #: Reconnect budget per GET request (0 = fail fast).
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        #: Total reconnects performed over this client's lifetime.
        self.reconnects = 0
        self._sleep = sleep

    def _request(self, method, path, obj=None):
        retries = self.max_retries if method == "GET" else 0
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, obj)
            except RETRYABLE_ERRORS:
                attempt += 1
                if attempt > retries:
                    raise
                self.reconnects += 1
                self._sleep(self.retry_backoff * (2.0 ** (attempt - 1)))

    def _request_once(self, method, path, obj=None):
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {"X-Repro-Client": self.client_id}
            if obj is not None:
                body = json.dumps(obj).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except ValueError:
                payload = {"error": raw.decode("utf-8", "replace")}
            if response.status == 429:
                raise QuotaExceeded(response.status, payload)
            if response.status >= 400:
                raise ServeClientError(response.status, payload)
            return payload
        finally:
            connection.close()

    # -- API ----------------------------------------------------------------

    def health(self):
        return self._request("GET", "/healthz")

    def info(self):
        return self._request("GET", "/")

    def metrics(self):
        return self._request("GET", "/metrics")

    def submit(self, kind, params=None):
        """Submit one job; returns its summary (id, status, cached)."""
        return self._request(
            "POST", "/jobs",
            {"kind": kind, "params": params or {}, "client": self.client_id},
        )

    def job(self, job_id):
        return self._request("GET", "/jobs/%s" % job_id)

    def jobs(self):
        return self._request("GET", "/jobs")["jobs"]

    def wait(self, job_id, timeout=300.0, poll=0.1):
        """Poll until *job_id* is terminal; returns the job detail."""
        from .jobs import TERMINAL_STATUSES

        deadline = time.monotonic() + timeout
        while True:
            detail = self.job(job_id)
            if detail["status"] in TERMINAL_STATUSES:
                return detail
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    "job %s still %r after %.1fs"
                    % (job_id, detail["status"], timeout)
                )
            time.sleep(poll)

    def run(self, kind, params=None, timeout=300.0, poll=0.1):
        """Submit and wait in one call; returns the finished job detail."""
        summary = self.submit(kind, params)
        if summary["status"] in ("done", "failed", "quarantined"):
            return self.job(summary["id"])
        return self.wait(summary["id"], timeout=timeout, poll=poll)

    def wait_ready(self, timeout=30.0, poll=0.2):
        """Block until the server answers /healthz (startup races)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except (OSError, ServeClientError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll)
