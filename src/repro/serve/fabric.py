"""TCP worker fabric: multi-node workers behind the transport interface.

``repro serve --fabric-port P`` listens for workers started with
``python -m repro worker --connect HOST:P --token T`` — separate
processes on this host or any other. The wire protocol is JSON frames
with an 8-hex-digit length prefix (:func:`encode_frame`), opened by a
version-checked, token-authenticated handshake:

    worker -> {"type": "hello", "proto": 1, "token": T, "worker": W}
    server -> {"type": "welcome", "proto": 1, "heartbeat": H,
               "watchdog": D}

after which the server pushes ``job`` frames (carrying the job, the
attempt number, and the **lease epoch**) and the worker returns
``result`` frames echoing that epoch. ``cancel`` tells a worker its
lease was fenced (best effort — a busy worker sees it late) and ``bye``
announces server shutdown.

Robustness model (see :mod:`~repro.serve.lease` for the fencing story):

* every worker heartbeats on a side thread; the server tracks a
  monotonic last-beat per connection and declares a worker **suspect**
  after ``heartbeat_misses`` missed intervals — its in-flight job is
  requeued and its lease fenced, but the socket stays open, because a
  partitioned worker is indistinguishable from a dead one. If it comes
  back, it rejoins the pool; the result it was holding arrives with a
  stale epoch and is rejected, never double-applied;
* a closed connection (crash, SIGKILL, network teardown) requeues the
  in-flight job through the shared backoff/breaker machinery;
* a per-dispatch server-side deadline (the worker also arms its own
  ``SIGALRM`` limit from the handshake's ``watchdog``) bounds wedged
  workers that still heartbeat;
* the :class:`~repro.serve.chaos.ChaosMonkey` injects seeded connection
  drops, heartbeat stalls, and duplicated/delayed result frames here —
  the acceptance tests run whole sharded campaigns under all of them.

The fabric runs its own asyncio loop on a daemon thread, so it plugs
into the synchronous :class:`~repro.serve.transport.WorkerTransport`
contract exactly like the subprocess pool.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

from .jobs import CRASHED, QUEUED, RUNNING, TIMEOUT
from .transport import WorkerTransport

#: Protocol version; a mismatched worker is rejected at handshake.
PROTO_VERSION = 1

#: Largest accepted frame (a job's params, never a bitstream).
MAX_FRAME_BYTES = 16 * 1024 * 1024

_PREFIX_LEN = 8


class FrameError(Exception):
    """A malformed or oversized frame (protocol violation)."""


def encode_frame(obj):
    """One wire frame: 8-hex-digit body length, then the JSON line."""
    body = (json.dumps(obj, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError("frame of %d bytes exceeds limit" % len(body))
    return ("%08x" % len(body)).encode("ascii") + body


def _parse_length(prefix):
    try:
        length = int(prefix.decode("ascii"), 16)
    except (UnicodeDecodeError, ValueError):
        raise FrameError("bad frame length prefix %r" % prefix)
    if length <= 0 or length > MAX_FRAME_BYTES:
        raise FrameError("unacceptable frame length %d" % length)
    return length


def _parse_body(body):
    try:
        frame = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        raise FrameError("frame body is not valid JSON")
    if not isinstance(frame, dict):
        raise FrameError("frame must be a JSON object")
    return frame


async def read_frame(reader):
    """Read one frame from an asyncio reader; None on clean EOF."""
    try:
        prefix = await reader.readexactly(_PREFIX_LEN)
    except asyncio.IncompleteReadError:
        return None
    length = _parse_length(prefix)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        return None  # torn frame: the peer died mid-write
    return _parse_body(body)


def read_frame_blocking(stream):
    """Read one frame from a blocking binary stream; None on EOF."""
    prefix = stream.read(_PREFIX_LEN)
    if not prefix:
        return None
    if len(prefix) < _PREFIX_LEN:
        return None  # torn prefix
    length = _parse_length(prefix)
    body = stream.read(length)
    if body is None or len(body) < length:
        return None  # torn body
    return _parse_body(body)


class _FabricWorker:
    """Server-side state for one connected worker."""

    def __init__(self, writer, worker_id, now):
        self.writer = writer
        self.worker_id = worker_id
        self.job = None  # in-flight Job, or None when idle
        self.epoch = 0
        self.deadline_handle = None
        self.last_beat = now
        #: Heartbeats received before this instant are ignored (chaos
        #: stall injection) — the server goes deaf to this worker.
        self.deaf_until = 0.0
        #: True once heartbeat misses fenced this worker; a later frame
        #: re-admits it (a partition healed).
        self.suspect = False
        self.closed = False

    @property
    def idle(self):
        return self.job is None and not self.suspect and not self.closed


class FabricPool(WorkerTransport):
    """Worker transport over TCP with lease-fenced exactly-once results."""

    def __init__(self, host="127.0.0.1", port=0, token="",
                 heartbeat_interval=2.0, heartbeat_misses=3, **kwargs):
        super().__init__(**kwargs)
        self.host = host
        self.token = token
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_misses = heartbeat_misses
        self._requested_port = port
        self.port = None  # bound port, known once the listener is up
        self.stats.update({
            "workers_seen": 0,
            "handshake_rejected": 0,
            "heartbeat_misses": 0,
            "disconnect_requeues": 0,
            "deadline_requeues": 0,
            "straggler_redispatches": 0,
            "chaos_drops": 0,
            "chaos_stalls": 0,
            "chaos_dups": 0,
            "chaos_delays": 0,
        })
        self._pending = []  # dispatch queue (loop thread only)
        self._by_id = {}  # job id -> Job, for frames about non-current work
        self._conns = set()
        self._server = None
        self._loop = None
        self._ready = threading.Event()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve-fabric", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0) or self._loop is None:
            raise RuntimeError(
                "fabric listener failed to start: %s"
                % (self._startup_error or "timeout")
            )
        if self._startup_error is not None:
            raise RuntimeError(
                "fabric listener failed to start: %s" % self._startup_error
            )

    # -- loop lifecycle ------------------------------------------------------

    def _run_loop(self):
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._start())
        except Exception as exc:  # noqa: BLE001 — surface via constructor
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
            except Exception:  # noqa: BLE001
                pass
            loop.close()

    async def _start(self):
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._monitor_task = asyncio.get_event_loop().create_task(
            self._monitor()
        )

    def close(self):
        if not self._mark_closed():
            return
        if self._loop is None:
            return

        def _shutdown():
            for conn in list(self._conns):
                self._send(conn, {"type": "bye"})
                self._close_conn(conn)
            if self._server is not None:
                self._server.close()
            self._monitor_task.cancel()
            self._loop.stop()

        try:
            self._loop.call_soon_threadsafe(_shutdown)
        except RuntimeError:
            return
        self._thread.join(timeout=5.0)

    # -- transport interface -------------------------------------------------

    def _enqueue(self, job):
        if self._on_loop():
            self._admit(job)
        else:
            self._loop.call_soon_threadsafe(self._admit, job)

    def _on_loop(self):
        try:
            return asyncio.get_running_loop() is self._loop
        except RuntimeError:
            return False

    def _admit(self, job):
        self._by_id[job.id] = job
        self._pending.append(job)
        self._pump()

    def queue_depth(self):
        return len(self._pending)

    def workers(self):
        """Connected (non-suspect) worker count — a metrics gauge."""
        return sum(
            1 for conn in self._conns
            if not conn.closed and not conn.suspect
        )

    def kick(self, job):
        """Straggler re-dispatch: fence the running attempt, requeue now.

        The shard coordinator calls this when a sub-shard outlives the
        straggler deadline: the current lease (if any) is revoked, a
        ``cancel`` frame tells the loser to stop caring, and the job
        goes straight back on the queue for another worker. Consumes no
        retry budget — a slow worker is not a failed attempt.
        """
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._kick, job)

    def _kick(self, job):
        if job.terminal or job in self._pending:
            return
        for conn in self._conns:
            if conn.job is job:
                self._count("straggler_redispatches")
                self.leases.revoke(job.id)
                self._send(conn, {"type": "cancel", "id": job.id,
                                  "epoch": conn.epoch})
                self._clear_dispatch(conn)
                job.status = QUEUED
                # Prefer a different worker — handing the job straight
                # back to the straggler would defeat the redispatch.
                other = next(
                    (c for c in self._conns if c.idle and c is not conn),
                    None,
                )
                if other is not None:
                    self._by_id[job.id] = job
                    self._dispatch(other, job)
                else:
                    self._admit(job)
                return

    def _requeue_after(self, job, delay):
        # Delivery paths run on the event loop: never sleep in place.
        def _requeue():
            if not self.closed:
                self._admit(job)

        if self._on_loop():
            self._loop.call_later(delay, _requeue)
        else:
            self._loop.call_soon_threadsafe(
                lambda: self._loop.call_later(delay, _requeue)
            )

    # -- connection handling (loop thread) -----------------------------------

    async def _handle_conn(self, reader, writer):
        conn = None
        try:
            hello = await read_frame(reader)
            problem = self._vet_hello(hello)
            if problem is not None:
                self._count("handshake_rejected")
                writer.write(encode_frame(
                    {"type": "reject", "error": problem}
                ))
                await writer.drain()
                return
            conn = _FabricWorker(
                writer, hello.get("worker") or "anonymous", time.monotonic()
            )
            self._conns.add(conn)
            self._count("workers_seen")
            writer.write(encode_frame({
                "type": "welcome",
                "proto": PROTO_VERSION,
                "heartbeat": self.heartbeat_interval,
                "watchdog": self.watchdog_seconds,
            }))
            await writer.drain()
            self._pump()
            while True:
                try:
                    frame = await read_frame(reader)
                except FrameError:
                    break  # protocol violation: drop the worker
                if frame is None:
                    break
                self._on_frame(conn, frame)
        except (ConnectionError, OSError):
            pass
        finally:
            if conn is not None:
                self._on_disconnect(conn)
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass

    def _vet_hello(self, hello):
        if hello is None or hello.get("type") != "hello":
            return "expected a hello frame"
        if hello.get("proto") != PROTO_VERSION:
            return (
                "protocol version mismatch: server speaks %d, worker %r"
                % (PROTO_VERSION, hello.get("proto"))
            )
        if self.token and hello.get("token") != self.token:
            return "bad token"
        return None

    def _send(self, conn, obj):
        if conn.closed:
            return
        try:
            conn.writer.write(encode_frame(obj))
        except (ConnectionError, OSError, RuntimeError):
            self._close_conn(conn)

    def _close_conn(self, conn):
        conn.closed = True
        try:
            conn.writer.close()
        except Exception:  # noqa: BLE001
            pass

    def _on_disconnect(self, conn):
        self._conns.discard(conn)
        conn.closed = True
        job, epoch = conn.job, conn.epoch
        self._clear_dispatch(conn)
        if job is not None and not job.terminal and not self.closed:
            if self.abandon(job, epoch,
                            error="worker %r connection lost"
                                  % conn.worker_id):
                self._count("disconnect_requeues")

    # -- frames from workers -------------------------------------------------

    def _on_frame(self, conn, frame):
        now = time.monotonic()
        kind = frame.get("type")
        if kind == "heartbeat":
            if now < conn.deaf_until:
                return  # chaos stall: the server has gone deaf
            conn.last_beat = now
            self._rejoin(conn)
            return
        if kind == "result":
            conn.last_beat = now
            self._rejoin(conn)
            self._on_result(conn, frame)
            return
        # Unknown frame types are ignored (forward compatibility).

    def _rejoin(self, conn):
        if conn.suspect and not conn.closed:
            conn.suspect = False  # the partition healed
            self._pump()

    def _on_result(self, conn, frame):
        job_id = frame.get("id")
        epoch = int(frame.get("epoch", 0))
        if conn.job is not None and conn.job.id == job_id \
                and conn.epoch == epoch:
            self._clear_dispatch(conn)
        job = self._by_id.get(job_id)
        if job is None:
            # Finished and forgotten: a very late echo. Count the fence.
            self.leases.record_stale(job_id, epoch)
            self._count("stale_rejected")
            self._pump()
            return
        deliveries = 1
        if self.chaos is not None:
            if self.chaos.drop_result(job_id, epoch):
                # Seeded connection drop: the frame never "arrived" and
                # the link that carried it goes down with it.
                self._count("chaos_drops")
                self._close_conn(conn)
                self._pump()
                return
            if self.chaos.duplicate_result(job_id, epoch):
                self._count("chaos_dups")
                deliveries = 2
            delay = self.chaos.delay_result(job_id, epoch)
        else:
            delay = None

        def _apply():
            applied = self.deliver(
                job, epoch,
                ok=bool(frame.get("ok")),
                payload=frame.get("payload"),
                error=frame.get("error", "unknown error"),
                error_code=frame.get("error_code"),
                transient=bool(frame.get("transient")),
            )
            if applied and job.terminal:
                self._by_id.pop(job.id, None)

        for _ in range(deliveries):
            if delay is not None:
                self._count("chaos_delays")
                self._loop.call_later(delay, _apply)
            else:
                _apply()
        self._pump()

    # -- dispatch ------------------------------------------------------------

    def _pump(self):
        if self.closed:
            return
        while self._pending:
            conn = next(
                (c for c in self._conns if c.idle), None
            )
            if conn is None:
                return
            job = self._pending.pop(0)
            if job.terminal:
                continue
            self._dispatch(conn, job)
        self._gauge_depth()

    def _dispatch(self, conn, job):
        lease = self.leases.grant(job.id)
        job.attempts += 1
        job.status = RUNNING
        self._count("executions")
        conn.job = job
        conn.epoch = lease.epoch
        if self.chaos is not None:
            stall = self.chaos.stall_after(job.id, lease.epoch)
            if stall is not None:
                self._count("chaos_stalls")
                now = time.monotonic()
                conn.deaf_until = now + stall
                # The stall must be able to out-age the miss window, or
                # it would be invisible; backdate the last beat so the
                # monitor sees a worker that just went quiet.
                conn.last_beat = min(conn.last_beat, now)
        self._send(conn, {
            "type": "job",
            "id": job.id,
            "kind": job.kind,
            "params": job.params,
            "attempt": job.attempts,
            "epoch": lease.epoch,
            "deadline": self.watchdog_seconds,
        })
        grace = 2.0 * self.heartbeat_interval
        conn.deadline_handle = self._loop.call_later(
            self.watchdog_seconds + grace,
            self._on_deadline, conn, job, lease.epoch,
        )

    def _clear_dispatch(self, conn):
        conn.job = None
        conn.epoch = 0
        if conn.deadline_handle is not None:
            conn.deadline_handle.cancel()
            conn.deadline_handle = None

    def _on_deadline(self, conn, job, epoch):
        """The dispatch outlived worker-side limits: fence and requeue."""
        if conn.job is not job or conn.epoch != epoch:
            return
        self._count("watchdog_kills")
        self._clear_dispatch(conn)
        # The worker still heartbeats but cannot finish: treat the
        # connection as lost so a wedged interpreter cannot hold a slot.
        self._close_conn(conn)
        if self.abandon(job, epoch, status=TIMEOUT,
                        error="fabric deadline after %.1fs"
                              % self.watchdog_seconds):
            self._count("deadline_requeues")

    # -- heartbeat monitor ---------------------------------------------------

    async def _monitor(self):
        period = max(0.05, self.heartbeat_interval / 2.0)
        window = self.heartbeat_interval * self.heartbeat_misses
        while True:
            await asyncio.sleep(period)
            now = time.monotonic()
            for conn in list(self._conns):
                if conn.closed or conn.suspect:
                    continue
                if now - conn.last_beat <= window:
                    continue
                self._count("heartbeat_misses")
                conn.suspect = True
                job, epoch = conn.job, conn.epoch
                self._clear_dispatch(conn)
                if job is not None and not job.terminal:
                    self.abandon(
                        job, epoch, status=CRASHED,
                        error="worker %r missed %d heartbeats"
                              % (conn.worker_id, self.heartbeat_misses),
                    )
            self._pump()
