"""Job model and subsystem adapters for the serve API.

A *job* is one unit of debugging work — a check, a profile, a waveform
diff, a fuzz/fault campaign, or a repair search — executed out of
process by the worker pool. Every adapter returns a **deterministic**
payload: no wall-clock fields, no filesystem paths, nothing that would
make two executions of the same content differ. That property is what
makes the content-addressed cache sound (a hit is byte-identical to a
recompute) and what lets ``repro serve --resume`` rebuild a final
report byte-identical to an uninterrupted run's.

Cache keys are content-addressed: the digest covers the job kind, the
SHA-256 of every source text the job reads (testbed designs resolve to
their on-disk Verilog), and the semantically meaningful parameters.
Keys deliberately exclude ``_chaos*`` parameters — fault injection in
the harness changes *how* a job runs, never *what* it computes.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

#: Supported job kinds, in the order the docs present them.
JOB_KINDS = ("check", "profile", "wavediff", "fuzz", "faults", "repair")

#: Job lifecycle states. ``queued -> running -> <terminal>``; a killed
#: or crashed attempt transitions back to ``queued`` while retry budget
#: remains.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
TIMEOUT = "timeout"
CRASHED = "crashed"
QUARANTINED = "quarantined"

TERMINAL_STATUSES = (DONE, FAILED, TIMEOUT, CRASHED, QUARANTINED)


class JobError(Exception):
    """A job request is malformed (unknown kind, bad params)."""


@dataclass
class Job:
    """One submitted job and everything the server tracks about it."""

    id: str
    kind: str
    params: dict
    client: str = "anon"
    status: str = QUEUED
    attempts: int = 0
    result: object = None
    error: str = ""
    error_code: str = None
    cached: bool = False
    cache_key: str = ""
    #: Lease epoch whose result finalized this job (0 = cache hit or
    #: not yet terminal). Set by the transport's fenced delivery path.
    lease_epoch: int = 0
    #: Shard linkage: ``{"parent": id, "index": n}`` on a shard child,
    #: ``{"children": [ids]}`` on a sharded parent, None otherwise.
    shard: dict = None
    #: Wall-clock submit time (monotonic), for latency metrics only —
    #: never persisted or reported.
    submitted_at: float = field(default=0.0, repr=False, compare=False)

    @property
    def shard_child(self):
        return bool(self.shard and "parent" in self.shard)

    @property
    def terminal(self):
        return self.status in TERMINAL_STATUSES

    def to_summary(self):
        """JSON-ready summary (no result payload)."""
        return {
            "id": self.id,
            "kind": self.kind,
            "client": self.client,
            "status": self.status,
            "attempts": self.attempts,
            "cached": self.cached,
            "cache_key": self.cache_key,
            "error": self.error,
            "error_code": self.error_code,
        }

    def to_detail(self):
        """Summary plus the full result payload."""
        detail = self.to_summary()
        detail["result"] = self.result
        return detail


def canonical_json(obj):
    """The one serialization used for digests: compact, sorted keys."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def payload_digest(payload):
    """SHA-256 hex digest of a payload's canonical JSON."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def _chaos_free(params):
    """Params with harness fault-injection knobs (``_``-prefixed) removed."""
    return {k: v for k, v in params.items() if not k.startswith("_")}


def _bug_text(bug_id):
    from ..testbed.harness import _design_text
    from ..testbed.metadata import SPECS

    spec = SPECS[bug_id]  # KeyError for unknown bugs -> 400 at submit
    return _design_text(spec.design_file)


def resolve_sources(kind, params):
    """``{name: text}`` of every source text the job's result depends on.

    Testbed bug IDs resolve to their design files so an edited design
    invalidates the cache entry; purely generative jobs (``fuzz``)
    depend on no external text at all.
    """
    params = _chaos_free(params)
    if kind == "check":
        if "source" in params:
            return {"inline": params["source"]}
        target = params.get("target", "")
        if target.upper() in _known_bug_ids():
            return {target.upper(): _bug_text(target.upper())}
        with open(target, "r") as handle:
            return {target: handle.read()}
    if kind in ("profile", "wavediff", "repair"):
        bug_id = params["bug"]
        return {bug_id: _bug_text(bug_id)}
    if kind == "faults":
        bugs = params.get("bugs") or list(_known_bug_ids())
        return {bug_id: _bug_text(bug_id) for bug_id in bugs}
    if kind == "fuzz":
        return {}
    raise JobError("unknown job kind %r (known: %s)"
                   % (kind, ", ".join(JOB_KINDS)))


def _known_bug_ids():
    from ..testbed.metadata import SPECS

    return SPECS


def job_cache_key(kind, params):
    """Content-addressed cache key for one (kind, params) submission.

    The key digests ``{kind, sources: {name: sha256(text)}, params}``
    where *params* excludes the source text itself (already covered by
    its digest) and all ``_chaos*`` harness knobs.
    """
    sources = resolve_sources(kind, params)
    keyed_params = _chaos_free(params)
    keyed_params.pop("source", None)
    identity = {
        "kind": kind,
        "sources": {
            name: hashlib.sha256(text.encode("utf-8")).hexdigest()
            for name, text in sources.items()
        },
        "params": keyed_params,
    }
    return hashlib.sha256(
        canonical_json(identity).encode("utf-8")
    ).hexdigest()


# ---------------------------------------------------------------------------
# Adapters. Each runs inside a worker process (its main thread, so the
# SIGALRM time_limit used by the wrapped subsystems still works) and
# returns a JSON-ready deterministic payload.
# ---------------------------------------------------------------------------


def _run_check(params):
    from ..diag import build_check_report
    from ..diag.check import check_targets, check_text

    select = tuple(params.get("select") or ())
    ignore = tuple(params.get("ignore") or ())
    kwargs = dict(
        run_tools=not params.get("no_tools", False),
        run_flow=not params.get("no_flow", False),
        select=select,
        ignore=ignore,
        strict=bool(params.get("strict", False)),
    )
    if "source" in params:
        filename = params.get("filename", "<serve>")
        results = [
            check_text(params["source"], filename=filename, target=filename,
                       **kwargs)
        ]
    else:
        results = check_targets([params["target"]], **kwargs)
    return build_check_report(results)


def _run_profile(params):
    from ..testbed import reproduce

    bug_id = params["bug"]
    result = reproduce(bug_id)
    return {
        "bug": bug_id,
        "reproduced": result.reproduced,
        "symptoms": sorted(s.value for s in result.observation.symptoms),
    }


def _run_wavediff(params):
    from ..wave import wavediff_bug

    outcome = wavediff_bug(
        params["bug"],
        fault=params.get("fault"),
        fixed=bool(params.get("fixed", False)),
        signals=params.get("signals"),
        last=params.get("last"),
        max_offset=int(params.get("align", 0)),
    )
    return outcome.report


def _run_fuzz(params):
    import shutil
    import tempfile

    from ..fuzz import ORACLE_NAMES, CampaignConfig, run_campaign

    scratch = tempfile.mkdtemp(prefix="repro-serve-fuzz-")
    try:
        config = CampaignConfig(
            cases=int(params.get("cases", 25)),
            seed=int(params.get("seed", 0)),
            start=int(params.get("start", 0)),
            cycles=int(params.get("cycles", 48)),
            oracles=tuple(params.get("oracles") or ORACLE_NAMES),
            jobs=1,
            reduce=False,
            output_dir=scratch,
        )
        report = run_campaign(config)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return {
        "seed": config.seed,
        "cases": len(report.results),
        "counts": report.counts,
        "buckets": sorted(report.buckets),
        "failures": [
            {
                "index": result.index,
                "status": result.status,
                "oracle": result.oracle,
                "signature": result.signature,
            }
            for result in sorted(report.failures, key=lambda r: r.index)
        ],
    }


def _run_faults(params):
    import os
    import shutil
    import tempfile

    from ..faults import FaultCampaignConfig, run_fault_campaign

    bugs = tuple(params.get("bugs") or ())
    if not bugs:
        from ..testbed.metadata import BUG_IDS

        bugs = tuple(BUG_IDS)
    scratch = tempfile.mkdtemp(prefix="repro-serve-faults-")
    try:
        case_list = params.get("case_list")
        config = FaultCampaignConfig(
            bugs=bugs,
            faults_per_bug=int(params.get("faults_per_bug", 2)),
            seed=int(params.get("seed", 0)),
            kinds=tuple(params["kinds"]) if params.get("kinds") else None,
            case_list=(
                tuple((bug, int(index)) for bug, index in case_list)
                if case_list is not None else None
            ),
            output_dir=scratch,
            journal_path=os.path.join(scratch, "journal.jsonl"),
            resume=False,
        )
        report = run_fault_campaign(config)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    if case_list is not None:
        # Shard child: ship the raw records; the parent's merge rebuilds
        # the full report from every shard's records together.
        return {
            "case_list": [[bug, index] for bug, index in config.case_list],
            "records": sorted(
                report.records, key=lambda record: record["case"]
            ),
        }
    return report.to_report()


def _run_repair(params):
    from ..repair import RepairConfig, run_repair

    candidate_range = params.get("candidate_range")
    stop_after = int(params.get("stop_after", 5))
    if candidate_range is not None and stop_after != 0:
        raise JobError(
            "candidate_range requires stop_after=0: early stopping "
            "depends on global candidate order"
        )
    config = RepairConfig(
        bug_id=params["bug"],
        budget=int(params.get("budget", 200)),
        watchdog=float(params.get("watchdog", 10.0)),
        stop_after=stop_after,
        templates=tuple(params.get("templates") or ()),
        use_faults=bool(params.get("use_faults", False)),
        candidate_range=(
            (int(candidate_range[0]), int(candidate_range[1]))
            if candidate_range is not None else None
        ),
    )
    outcome = run_repair(config)
    if candidate_range is not None:
        # Shard child: the window's parts, for build_report_from_parts.
        report = outcome.report
        return {
            "baseline": report["baseline"],
            "sites": report["sites"],
            "planned": report["candidates"]["planned"],
            "tried": report["candidates"]["tried"],
            "records": outcome.records,
        }
    return outcome.report


_ADAPTERS = {
    "check": _run_check,
    "profile": _run_profile,
    "wavediff": _run_wavediff,
    "fuzz": _run_fuzz,
    "faults": _run_faults,
    "repair": _run_repair,
}


def execute_job(kind, params, attempt=1):
    """Run one job attempt; returns the deterministic payload.

    ``params["_chaos_hang"]`` — ``{"seconds": S, "attempts": N}`` —
    makes the first *N* attempts sleep *S* seconds before doing the
    work. The chaos harness uses it to simulate a hung tool that the
    deadline watchdog must kill; a retried attempt past *N* proceeds
    normally, so a hang is transient rather than fatal.
    """
    adapter = _ADAPTERS.get(kind)
    if adapter is None:
        raise JobError("unknown job kind %r (known: %s)"
                       % (kind, ", ".join(JOB_KINDS)))
    hang = params.get("_chaos_hang")
    if hang and attempt <= int(hang.get("attempts", 1)):
        time.sleep(float(hang.get("seconds", 0)))
    return adapter(params)
