"""Crash-safe job store: the queue and results ride a ``JsonlJournal``.

Two event kinds, one line each, fsynced on append:

* ``{"event": "submit", "id", "kind", "params", "client", "cache_key"}``
  — written the moment a job is accepted;
* ``{"event": "done", "id", "status", "result", "error", "error_code"}``
  — written exactly once when the job reaches a terminal status.

``repro serve --resume`` replays the journal: every ``submit`` without
a matching ``done`` is incomplete work to re-enqueue; every ``done``
restores its result so clients can still ``GET /jobs/<id>`` after a
restart. The journal inherits :class:`repro.runtime.JsonlJournal`'s
tolerance of torn and corrupt lines, so a SIGKILL mid-append costs at
most the record being written.

The **final report** (written on graceful drain) is deliberately free
of wall-clock data, attempt counts, and cache-hit flags — everything
that can differ between an uninterrupted run and a killed-and-resumed
one — so the chaos harness can assert byte-identical reports across
the two. Results are summarized by SHA-256 digest; full payloads stay
in the journal and the job API.
"""

from __future__ import annotations

import json
import os
import threading

from ..runtime import JsonlJournal
from .jobs import Job, QUEUED, TERMINAL_STATUSES, payload_digest

SCHEMA = "repro.serve/v1"


class JobStore:
    """All jobs the server knows about, persisted through a journal."""

    def __init__(self, journal_path=None):
        self._lock = threading.Lock()
        self._jobs = {}
        self._order = []
        self._seq = 0
        self._journal = JsonlJournal(journal_path) if journal_path else None

    # -- creation / persistence --------------------------------------------

    def create(self, kind, params, client, cache_key):
        """Allocate the next job id and journal the submission."""
        with self._lock:
            self._seq += 1
            job = Job(
                id="j%06d" % self._seq,
                kind=kind,
                params=params,
                client=client,
                cache_key=cache_key,
            )
            self._jobs[job.id] = job
            self._order.append(job.id)
        if self._journal is not None:
            self._journal.append({
                "event": "submit",
                "id": job.id,
                "kind": kind,
                "params": params,
                "client": client,
                "cache_key": cache_key,
            })
        return job

    def record_done(self, job):
        """Journal a terminal transition (call exactly once per job)."""
        if self._journal is not None:
            self._journal.append({
                "event": "done",
                "id": job.id,
                "status": job.status,
                "result": job.result,
                "error": job.error,
                "error_code": job.error_code,
            })

    def resume(self):
        """Replay the journal; returns the incomplete jobs to re-enqueue.

        Jobs come back in submission order with attempt counters reset —
        a resumed job re-runs from scratch, which is safe because every
        adapter is deterministic and finalization is exactly-once.
        """
        if self._journal is None:
            return []
        incomplete = []
        with self._lock:
            for record in self._journal.load():
                event = record.get("event")
                if event == "submit":
                    job = Job(
                        id=record["id"],
                        kind=record["kind"],
                        params=record.get("params") or {},
                        client=record.get("client", "anon"),
                        cache_key=record.get("cache_key", ""),
                    )
                    self._jobs[job.id] = job
                    self._order.append(job.id)
                    self._seq = max(self._seq, int(job.id[1:]))
                    incomplete.append(job)
                elif event == "done":
                    job = self._jobs.get(record.get("id"))
                    if job is None:
                        continue
                    job.status = record.get("status", QUEUED)
                    job.result = record.get("result")
                    job.error = record.get("error", "")
                    job.error_code = record.get("error_code")
                    if job.terminal and job in incomplete:
                        incomplete.remove(job)
        return [job for job in incomplete if not job.terminal]

    def close(self):
        if self._journal is not None:
            self._journal.close()

    # -- queries ------------------------------------------------------------

    def get(self, job_id):
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self):
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def counts(self):
        """Jobs per status, including non-terminal ones."""
        counts = {}
        for job in self.jobs():
            counts[job.status] = counts.get(job.status, 0) + 1
        return counts

    # -- reporting -----------------------------------------------------------

    def final_report(self):
        """Deterministic ``repro.serve/v1`` campaign report."""
        jobs = sorted(self.jobs(), key=lambda job: job.id)
        entries = []
        for job in jobs:
            entries.append({
                "id": job.id,
                "kind": job.kind,
                "cache_key": job.cache_key,
                "status": job.status,
                "error": job.error,
                "error_code": job.error_code,
                "result_sha256": (
                    payload_digest(job.result)
                    if job.status in TERMINAL_STATUSES
                    and job.result is not None else None
                ),
            })
        return {
            "schema": SCHEMA,
            "jobs": entries,
            "counts": self.counts(),
        }

    def write_final_report(self, path):
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.final_report(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path
