"""Crash-safe job store: the queue and results ride a ``JsonlJournal``.

Two event kinds, one line each, fsynced on append:

* ``{"event": "submit", "id", "kind", "params", "client", "cache_key",
  "shard"}`` — written the moment a job is accepted;
* ``{"event": "done", "id", "status", "result", "error", "error_code",
  "epoch"}`` — written exactly once when the job reaches a terminal
  status; ``epoch`` is the lease epoch whose result won.

``repro serve --resume`` replays the journal: every ``submit`` without
a matching ``done`` is incomplete work to re-enqueue; every ``done``
restores its result so clients can still ``GET /jobs/<id>`` after a
restart. Replay is hardened against the crash-window double-``done``
(finalized, journaled, killed before the in-memory flag landed, then
finalized again on resume): ``done`` lines deduplicate by job id —
first write wins, extras count on ``runtime.journal.duplicate``. The
journal inherits :class:`repro.runtime.JsonlJournal`'s tolerance of
torn and corrupt lines, so a SIGKILL mid-append costs at most the
record being written.

The store also owns the fabric's **first-application registry**: the
transports ask :meth:`JobStore.mark_applied` before applying a result,
so a duplicated frame of the current lease epoch — same ``(job_id,
epoch)`` delivered twice — is a no-op however many connections replay
it. Resume reseeds the registry (and fast-forwards the lease table)
from journaled epochs, so a resumed server can never re-issue an epoch
an old result might still be carrying.

The **final report** (written on graceful drain) is deliberately free
of wall-clock data, attempt counts, and cache-hit flags — everything
that can differ between an uninterrupted run and a killed-and-resumed
one — so the chaos harness can assert byte-identical reports across
the two. Results are summarized by SHA-256 digest; full payloads stay
in the journal and the job API.
"""

from __future__ import annotations

import json
import os
import threading

from ..runtime import JsonlJournal
from .jobs import Job, QUEUED, TERMINAL_STATUSES, payload_digest

SCHEMA = "repro.serve/v1"


class JobStore:
    """All jobs the server knows about, persisted through a journal."""

    def __init__(self, journal_path=None):
        self._lock = threading.Lock()
        self._jobs = {}
        self._order = []
        self._seq = 0
        self._applied = set()  # (job_id, epoch) results already applied
        self._journal = JsonlJournal(journal_path) if journal_path else None

    # -- creation / persistence --------------------------------------------

    def create(self, kind, params, client, cache_key, shard=None):
        """Allocate the next job id and journal the submission."""
        with self._lock:
            self._seq += 1
            job = Job(
                id="j%06d" % self._seq,
                kind=kind,
                params=params,
                client=client,
                cache_key=cache_key,
                shard=shard,
            )
            self._jobs[job.id] = job
            self._order.append(job.id)
        if self._journal is not None:
            self._journal.append({
                "event": "submit",
                "id": job.id,
                "kind": kind,
                "params": params,
                "client": client,
                "cache_key": cache_key,
                "shard": shard,
            })
        return job

    def mark_applied(self, job_id, epoch):
        """First-application check for one ``(job, epoch)`` result.

        True exactly once per pair; a duplicated delivery of the same
        lease epoch gets False and must be ignored by the caller.
        """
        with self._lock:
            if (job_id, epoch) in self._applied:
                return False
            self._applied.add((job_id, epoch))
            return True

    def record_done(self, job):
        """Journal a terminal transition (call exactly once per job)."""
        if self._journal is not None:
            self._journal.append({
                "event": "done",
                "id": job.id,
                "status": job.status,
                "result": job.result,
                "error": job.error,
                "error_code": job.error_code,
                "epoch": job.lease_epoch,
            })

    @staticmethod
    def _dedupe_key(record):
        """Journal identity: at most one ``done`` may apply per job.

        A server killed between journaling a ``done`` and recording it
        in memory will journal a second one on resume; apply-once by
        job id makes the first write win and the duplicate harmless.
        """
        if record.get("event") == "done":
            return ("done", record.get("id"))
        return None

    def resume(self, leases=None):
        """Replay the journal; returns the incomplete jobs to re-enqueue.

        Jobs come back in submission order with attempt counters reset —
        a resumed job re-runs from scratch, which is safe because every
        adapter is deterministic and finalization is exactly-once.
        Duplicate ``done`` lines apply once (first wins); journaled
        lease epochs reseed the first-application registry and, when a
        *leases* table is given, fast-forward it past every epoch the
        killed run ever finalized under.
        """
        if self._journal is None:
            return []
        incomplete = []
        with self._lock:
            for record in self._journal.load(dedupe=self._dedupe_key):
                event = record.get("event")
                if event == "submit":
                    job = Job(
                        id=record["id"],
                        kind=record["kind"],
                        params=record.get("params") or {},
                        client=record.get("client", "anon"),
                        cache_key=record.get("cache_key", ""),
                        shard=record.get("shard"),
                    )
                    self._jobs[job.id] = job
                    self._order.append(job.id)
                    self._seq = max(self._seq, int(job.id[1:]))
                    incomplete.append(job)
                elif event == "done":
                    job = self._jobs.get(record.get("id"))
                    if job is None:
                        continue
                    job.status = record.get("status", QUEUED)
                    job.result = record.get("result")
                    job.error = record.get("error", "")
                    job.error_code = record.get("error_code")
                    job.lease_epoch = int(record.get("epoch", 0))
                    if job.lease_epoch:
                        self._applied.add((job.id, job.lease_epoch))
                        if leases is not None:
                            leases.observe(job.id, job.lease_epoch)
                    if job.terminal and job in incomplete:
                        incomplete.remove(job)
        return [job for job in incomplete if not job.terminal]

    def close(self):
        if self._journal is not None:
            self._journal.close()

    # -- queries ------------------------------------------------------------

    def get(self, job_id):
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self):
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def counts(self):
        """Jobs per status, including non-terminal ones."""
        counts = {}
        for job in self.jobs():
            counts[job.status] = counts.get(job.status, 0) + 1
        return counts

    def children_of(self, parent_id):
        """A sharded parent's child jobs, in shard order."""
        return sorted(
            (
                job for job in self.jobs()
                if job.shard_child and job.shard.get("parent") == parent_id
            ),
            key=lambda job: job.shard.get("index", 0),
        )

    # -- reporting -----------------------------------------------------------

    def final_report(self):
        """Deterministic ``repro.serve/v1`` campaign report.

        Shard children are an execution detail of *how* a parent's
        answer was computed, so they are excluded: a sharded campaign
        and its unsharded twin produce byte-identical reports.
        """
        jobs = sorted(
            (job for job in self.jobs() if not job.shard_child),
            key=lambda job: job.id,
        )
        entries = []
        for job in jobs:
            entries.append({
                "id": job.id,
                "kind": job.kind,
                "cache_key": job.cache_key,
                "status": job.status,
                "error": job.error,
                "error_code": job.error_code,
                "result_sha256": (
                    payload_digest(job.result)
                    if job.status in TERMINAL_STATUSES
                    and job.result is not None else None
                ),
            })
        counts = {}
        for job in jobs:
            counts[job.status] = counts.get(job.status, 0) + 1
        return {
            "schema": SCHEMA,
            "jobs": entries,
            "counts": counts,
        }

    def write_final_report(self, path):
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.final_report(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path
