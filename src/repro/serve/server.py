"""`repro serve`: the fault-tolerant debugging-as-a-service server.

Wires every robustness piece together around a stdlib-``asyncio``
JSON-over-HTTP front end:

* ``POST /jobs`` — submit ``{"kind": ..., "params": {...}}``; admission
  runs per-client token-bucket quotas (structured 429 + ``Retry-After``)
  and the content-addressed cache (a hit completes the job instantly);
  misses go to the process worker pool with its deadline watchdog,
  requeue-on-death, and circuit breaker;
* ``GET /jobs`` / ``GET /jobs/<id>`` — status and results;
* ``GET /metrics`` — queue depth, cache hit rate, retries, watchdog
  kills, breaker states, and p50/p99 job latency, fed by ``repro.obs``;
* ``GET /healthz`` — liveness.

Crash safety: every submission and completion rides the store's
``JsonlJournal``; ``--resume`` replays incomplete work after a kill.
Graceful degradation: SIGTERM/SIGINT stop admissions (503), drain
in-flight jobs (bounded by ``drain_timeout``), flush the journal, and
write the deterministic final report before exiting 0.
"""

from __future__ import annotations

import asyncio
import signal
import threading
import time

from .. import obs
from .breaker import CircuitBreaker
from .cache import ArtifactCache
from .chaos import ChaosConfig, ChaosMonkey
from .http import HttpError, json_response, parse_json_body, read_request
from .jobs import DONE, FAILED, JOB_KINDS, JobError, job_cache_key
from .lease import LeaseTable
from .pool import WorkerPool
from .quota import TokenBucketQuota
from .shard import SHARDABLE_KINDS, merge_shards, plan_shards, shard_count
from .store import JobStore


class ServeConfig:
    """Everything that shapes one server process."""

    def __init__(
        self,
        host="127.0.0.1",
        port=8731,
        workers=2,
        watchdog=30.0,
        retries=2,
        backoff=0.25,
        jitter=0.1,
        cache_dir="results/serve/cache",
        cache_mb=64,
        quota_rate=20.0,
        quota_burst=40.0,
        breaker_threshold=5,
        breaker_cooldown=30.0,
        journal_path="results/serve/journal.jsonl",
        resume=False,
        report_path=None,
        drain_timeout=30.0,
        chaos=None,
        fabric_port=None,
        fabric_token="",
        heartbeat_interval=2.0,
        heartbeat_misses=3,
        straggler_after=0.0,
    ):
        self.host = host
        self.port = port
        self.workers = workers
        self.watchdog = watchdog
        self.retries = retries
        self.backoff = backoff
        self.jitter = jitter
        self.cache_dir = cache_dir
        self.cache_mb = cache_mb
        self.quota_rate = quota_rate
        self.quota_burst = quota_burst
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.journal_path = journal_path
        self.resume = resume
        self.report_path = report_path
        self.drain_timeout = drain_timeout
        self.chaos = chaos or ChaosConfig()
        #: TCP fabric listener port (None disables the fabric; 0 binds
        #: an ephemeral port). When set, jobs run on externally started
        #: ``repro worker --connect`` processes instead of the
        #: subprocess pool.
        self.fabric_port = fabric_port
        self.fabric_token = fabric_token
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_misses = heartbeat_misses
        #: Re-dispatch a shard child still running this many seconds
        #: after its first sibling finished (0 disables straggler
        #: mitigation). The loser's lease is fenced, so its late result
        #: can never double-apply.
        self.straggler_after = straggler_after


class ShardCoordinator:
    """Fan sharded campaign jobs out and merge them exactly once.

    Owns the parent/child bookkeeping: a parent job never reaches a
    worker — its children do — and the parent finalizes when the last
    child lands, with a payload byte-identical to the unsharded run
    (see :mod:`repro.serve.shard` for why). A child that fails
    terminally fails the parent. Stragglers: when siblings have
    finished and a child is still running ``straggler_after`` seconds
    later, the transport is kicked to fence and re-dispatch it —
    the slow attempt's result arrives stale and is dropped.
    """

    def __init__(self, server, straggler_after=0.0):
        self.server = server
        self.straggler_after = straggler_after
        self._lock = threading.Lock()
        self._parents = {}  # parent_id -> {"job", "children", "timer"}

    # -- registration --------------------------------------------------------

    def start(self, parent, child_params_list, resume_children=None):
        """Register *parent* and create/adopt its children.

        *resume_children* maps shard index -> existing child Job for
        ``--resume`` (children already journaled by the killed run);
        missing indexes are created fresh. Returns the child jobs that
        still need submission (non-terminal), in shard order.
        """
        server = self.server
        children = []
        to_submit = []
        for index, params in enumerate(child_params_list):
            child = (resume_children or {}).get(index)
            if child is None:
                child = server.store.create(
                    parent.kind, params, parent.client,
                    job_cache_key(parent.kind, params),
                    shard={"parent": parent.id, "index": index},
                )
                child.submitted_at = time.monotonic()
            children.append(child)
            if not child.terminal:
                to_submit.append(child)
        parent.shard = {"children": [child.id for child in children]}
        with self._lock:
            self._parents[parent.id] = {
                "job": parent,
                "children": children,
                "timer": None,
            }
        if not to_submit:
            self._maybe_finalize(parent.id)
        return to_submit

    # -- child completion ----------------------------------------------------

    def on_job_done(self, job):
        """Hook from the server's terminal-transition path."""
        if not job.shard_child:
            return
        parent_id = job.shard.get("parent")
        with self._lock:
            entry = self._parents.get(parent_id)
        if entry is None:
            return
        self._arm_straggler_timer(parent_id)
        self._maybe_finalize(parent_id)

    def _arm_straggler_timer(self, parent_id):
        if self.straggler_after <= 0:
            return
        with self._lock:
            entry = self._parents.get(parent_id)
            if entry is None:
                return
            running = [c for c in entry["children"] if not c.terminal]
            if entry["timer"] is not None:
                entry["timer"].cancel()
                entry["timer"] = None
            if not running:
                return
            timer = threading.Timer(
                self.straggler_after, self._kick_stragglers, (parent_id,)
            )
            timer.daemon = True
            entry["timer"] = timer
            timer.start()

    def _kick_stragglers(self, parent_id):
        with self._lock:
            entry = self._parents.get(parent_id)
            if entry is None:
                return
            stragglers = [c for c in entry["children"] if not c.terminal]
        for child in stragglers:
            if obs.enabled:
                obs.counter("serve.shard.straggler_kicked").inc()
            self.server.pool.kick(child)

    # -- parent finalization -------------------------------------------------

    def _maybe_finalize(self, parent_id):
        with self._lock:
            entry = self._parents.get(parent_id)
            if entry is None:
                return
            if any(not c.terminal for c in entry["children"]):
                return
            entry = self._parents.pop(parent_id)
            if entry["timer"] is not None:
                entry["timer"].cancel()
        parent, children = entry["job"], entry["children"]
        failed = [c for c in children if c.status != DONE]
        if failed:
            parent.status = FAILED
            parent.error = "shard %s %s did not complete" % (
                "child" if len(failed) == 1 else "children",
                ", ".join("%s (%s)" % (c.id, c.status) for c in failed),
            )
            parent.error_code = "shard-child-failed"
        else:
            try:
                parent.result = merge_shards(
                    parent.kind, parent.params,
                    [c.result for c in children],
                )
                parent.status = DONE
            except Exception as exc:  # noqa: BLE001 — fail the parent
                parent.status = FAILED
                parent.error = "shard merge failed: %s: %s" % (
                    type(exc).__name__, exc,
                )
                parent.error_code = "shard-merge-failed"
        if obs.enabled:
            obs.counter("serve.shard.parents_%s" % parent.status).inc()
        self.server._job_finished(parent)

    def pending(self):
        with self._lock:
            return len(self._parents)

    def close(self):
        with self._lock:
            for entry in self._parents.values():
                if entry["timer"] is not None:
                    entry["timer"].cancel()


class ReproServer:
    """One serve process: HTTP front end + robust job back end."""

    def __init__(self, config):
        self.config = config
        self.store = JobStore(journal_path=config.journal_path)
        self.cache = ArtifactCache(
            config.cache_dir, max_bytes=config.cache_mb * 1024 * 1024
        )
        self.quota = TokenBucketQuota(
            rate=config.quota_rate, burst=config.quota_burst
        )
        self.breaker = CircuitBreaker(
            threshold=config.breaker_threshold,
            cooldown=config.breaker_cooldown,
        )
        self.leases = LeaseTable()
        self.coordinator = ShardCoordinator(
            self, straggler_after=config.straggler_after
        )
        transport_kwargs = dict(
            watchdog_seconds=config.watchdog,
            retries=config.retries,
            backoff=config.backoff,
            jitter=config.jitter,
            breaker=self.breaker,
            chaos=(
                ChaosMonkey(config.chaos) if config.chaos.active else None
            ),
            leases=self.leases,
            store=self.store,
            on_done=self._job_finished,
        )
        if config.fabric_port is not None:
            from .fabric import FabricPool

            self.pool = FabricPool(
                host=config.host,
                port=config.fabric_port,
                token=config.fabric_token,
                heartbeat_interval=config.heartbeat_interval,
                heartbeat_misses=config.heartbeat_misses,
                **transport_kwargs,
            )
        else:
            self.pool = WorkerPool(
                workers=config.workers, **transport_kwargs
            )
        self.port = None
        self.draining = False
        self.started_at = time.monotonic()
        self._latencies = []  # bounded reservoir of job latencies (ms)
        self._latency_lock = threading.Lock()
        self._stop_event = None
        self._loop = None
        self._ready = threading.Event()
        self._thread = None
        self._exit_code = 0

    # -- job completion (pool manager threads) ------------------------------

    def _job_finished(self, job):
        """Terminal-transition hook: persist, cache, measure, coordinate."""
        if job.status == DONE and job.result is not None and not job.cached:
            self.cache.put(job.cache_key, job.result)
        self.store.record_done(job)
        if job.submitted_at:
            latency_ms = (time.monotonic() - job.submitted_at) * 1000.0
            with self._latency_lock:
                self._latencies.append(latency_ms)
                if len(self._latencies) > 10000:
                    del self._latencies[:5000]
            if obs.enabled:
                obs.histogram("serve.latency_ms").observe(int(latency_ms))
        self.coordinator.on_job_done(job)

    def _latency_percentiles(self):
        with self._latency_lock:
            values = sorted(self._latencies)
        if not values:
            return {"count": 0, "p50": None, "p99": None}

        def pick(q):
            index = min(
                len(values) - 1, max(0, int(round(q / 100.0 * len(values))) - 1)
            )
            return round(values[index], 3)

        return {"count": len(values), "p50": pick(50), "p99": pick(99)}

    # -- submission (asyncio thread) ----------------------------------------

    def submit(self, kind, params, client="anon"):
        """Admit one job; returns the Job. Raises HttpError on refusal."""
        if self.draining:
            raise HttpError(503, "server is draining; resubmit later")
        if kind not in JOB_KINDS:
            raise HttpError(
                400, "unknown job kind %r (known: %s)"
                     % (kind, ", ".join(JOB_KINDS))
            )
        allowed, retry_after = self.quota.admit(client)
        if not allowed:
            raise HttpError(
                429, "quota exceeded for client %r" % client,
                retry_after=retry_after, client=client,
            )
        try:
            cache_key = job_cache_key(kind, params)
            shards = shard_count(params)
            child_params_list = (
                plan_shards(kind, params, shards) if shards > 1 else None
            )
        except (JobError, KeyError, OSError, TypeError) as exc:
            raise HttpError(400, "bad job params: %s" % exc)
        job = self.store.create(kind, params, client, cache_key)
        job.submitted_at = time.monotonic()
        cached = self.cache.get(cache_key)
        if cached is not None:
            # ``_shards`` is excluded from the key, so a sharded parent
            # hits the cache entry its unsharded twin wrote (and vice
            # versa) — sound because merges are byte-identical.
            job.cached = True
            job.attempts = 0
            job.status = DONE
            job.result = cached
            if obs.enabled:
                obs.counter("serve.jobs.done").inc()
            self.store.record_done(job)
            return job
        if child_params_list is not None and len(child_params_list) > 1:
            if obs.enabled:
                obs.counter("serve.shard.parents").inc()
            for child in self.coordinator.start(job, child_params_list):
                self._submit_or_cache(child)
            return job
        self.pool.submit(job)
        return job

    def _submit_or_cache(self, job):
        """Route one runnable job: cache fast path or the transport."""
        cached = self.cache.get(job.cache_key)
        if cached is not None:
            job.cached = True
            job.status = DONE
            job.result = cached
            if obs.enabled:
                obs.counter("serve.jobs.done").inc()
            self._job_finished(job)
            return
        self.pool.submit(job)

    def _resume_jobs(self, resumed):
        """Re-enqueue journal-recovered work, rebuilding shard fan-outs.

        Parents register with the coordinator before any child is
        submitted, so a child finalizing instantly (cache hit) finds
        its parent waiting. Children the killed run already journaled
        are adopted by shard index; ones it never got to create are
        created now — shard planning is deterministic, so the re-plan
        reproduces the original fan-out exactly.
        """
        for job in resumed:
            job.submitted_at = time.monotonic()
        to_submit = []
        for job in resumed:
            if job.shard_child:
                continue  # submitted through its parent below
            if job.kind in SHARDABLE_KINDS:
                try:
                    shards = shard_count(job.params)
                    plan = (
                        plan_shards(job.kind, job.params, shards)
                        if shards > 1 else None
                    )
                except JobError:
                    plan = None  # was accepted once; run it unsharded
                if plan is not None and len(plan) > 1:
                    existing = {
                        child.shard.get("index"): child
                        for child in self.store.children_of(job.id)
                    }
                    to_submit.extend(self.coordinator.start(
                        job, plan, resume_children=existing
                    ))
                    continue
            to_submit.append(job)
        for job in to_submit:
            self._submit_or_cache(job)

    # -- metrics -------------------------------------------------------------

    def metrics(self):
        """The ``GET /metrics`` document."""
        fabric = self.config.fabric_port is not None
        return {
            "schema": "repro.serve-metrics/v1",
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "draining": self.draining,
            "transport": "fabric" if fabric else "pool",
            "workers": (
                self.pool.workers() if fabric else self.config.workers
            ),
            "fabric_port": self.pool.port if fabric else None,
            "queue_depth": self.pool.queue_depth(),
            "outstanding": self.pool.outstanding(),
            "shard_parents_pending": self.coordinator.pending(),
            "jobs": self.store.counts(),
            "cache": self.cache.stats(),
            "quota": self.quota.snapshot(),
            "breaker": self.breaker.snapshot(),
            "lease": self.leases.snapshot(),
            "pool": self.pool.stats_snapshot(),
            "latency_ms": self._latency_percentiles(),
            "obs": obs.registry.snapshot() if obs.enabled else [],
        }

    # -- HTTP routing --------------------------------------------------------

    async def _handle(self, reader, writer):
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                method, path, headers, body = request
                status, payload, extra = self._route(
                    method, path, headers, body
                )
            except HttpError as exc:
                status, payload = exc.status, exc.payload
                extra = ()
                if status == 429 and "retry_after" in exc.payload:
                    extra = (("Retry-After",
                              "%d" % max(1, int(exc.payload["retry_after"]
                                                + 0.999))),)
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except Exception as exc:  # noqa: BLE001 — 500, never a crash
                status, payload, extra = 500, {
                    "error": "%s: %s" % (type(exc).__name__, exc)
                }, ()
            writer.write(json_response(status, payload, headers=extra))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass

    def _route(self, method, path, headers, body):
        if path == "/healthz" and method == "GET":
            return 200, {"status": "draining" if self.draining else "ok"}, ()
        if path == "/metrics" and method == "GET":
            return 200, self.metrics(), ()
        if path == "/jobs" and method == "POST":
            request = parse_json_body(body)
            kind = request.get("kind")
            params = request.get("params") or {}
            if not isinstance(params, dict):
                raise HttpError(400, "params must be a JSON object")
            client = request.get("client") or headers.get(
                "x-repro-client", "anon"
            )
            job = self.submit(kind, params, client=client)
            return 202, job.to_summary(), ()
        if path == "/jobs" and method == "GET":
            return 200, {
                "jobs": [job.to_summary() for job in self.store.jobs()]
            }, ()
        if path.startswith("/jobs/") and method == "GET":
            job = self.store.get(path[len("/jobs/"):])
            if job is None:
                raise HttpError(404, "no such job")
            return 200, job.to_detail(), ()
        if path == "/" and method == "GET":
            return 200, {
                "service": "repro serve",
                "schema": "repro.serve/v1",
                "kinds": list(JOB_KINDS),
                "endpoints": ["/jobs", "/jobs/<id>", "/metrics", "/healthz"],
            }, ()
        raise HttpError(404, "no route for %s %s" % (method, path))

    # -- lifecycle -----------------------------------------------------------

    async def _main(self):
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stop_event = asyncio.Event()
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self._stop_event.set)
                except (NotImplementedError, RuntimeError):
                    pass
        server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        self.port = server.sockets[0].getsockname()[1]
        if self.config.resume:
            resumed = self.store.resume(leases=self.leases)
            self._resume_jobs(resumed)
            print(
                "resumed %d incomplete job%s from %s"
                % (len(resumed), "" if len(resumed) == 1 else "s",
                   self.config.journal_path),
                flush=True,
            )
        if self.config.fabric_port is not None:
            print(
                "fabric listening on %s:%d (token %s)"
                % (self.config.host, self.pool.port,
                   "required" if self.config.fabric_token else "disabled"),
                flush=True,
            )
        print(
            "serving on http://%s:%d (workers=%d, watchdog=%.1fs)"
            % (self.config.host, self.port, self.config.workers,
               self.config.watchdog),
            flush=True,
        )
        self._ready.set()
        await self._stop_event.wait()
        # Graceful drain: refuse new work, let in-flight work land,
        # flush everything, report, exit 0.
        self.draining = True
        print("draining (%d outstanding)..." % self.pool.outstanding(),
              flush=True)
        drained = await loop.run_in_executor(
            None, self.pool.drain, self.config.drain_timeout
        )
        # Parents finalize on the last child's completion callback,
        # which can land a beat after drain() unblocks.
        deadline = time.monotonic() + 5.0
        while self.coordinator.pending() and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        server.close()
        await server.wait_closed()
        self.coordinator.close()
        self.pool.close()
        if self.config.report_path:
            self.store.write_final_report(self.config.report_path)
            print("wrote %s" % self.config.report_path, flush=True)
        self.store.close()
        counts = self.store.counts()
        print(
            "drained %s — %s"
            % (
                "cleanly" if drained else "with %d jobs left for --resume"
                % self.pool.outstanding(),
                ", ".join("%d %s" % (counts[s], s) for s in sorted(counts)),
            ),
            flush=True,
        )
        return 0

    def run(self):
        """Run until SIGTERM/SIGINT; returns the process exit code."""
        obs.reset()
        with obs.observed():
            try:
                return asyncio.run(self._main())
            except KeyboardInterrupt:
                return 0

    # -- embedding (tests, benchmarks) --------------------------------------

    def start_background(self):
        """Run the server on a daemon thread; returns once it is bound."""

        def runner():
            obs.reset()
            with obs.observed():
                self._exit_code = asyncio.run(self._main())

        self._thread = threading.Thread(
            target=runner, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("server failed to start")
        return self

    def shutdown(self, timeout=60.0):
        """Trigger the drain path from any thread and wait for exit."""
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        return self._exit_code
