"""Thread-safe monotonic-deadline watchdog for out-of-process work.

:func:`repro.runtime.time_limit` arms ``SIGALRM`` and therefore only
works on the main thread — useless to a worker pool whose manager
threads each babysit one worker process. This watchdog is the
off-main-thread replacement: a single daemon thread tracks ``(token,
monotonic deadline, callback)`` entries and fires the callback (which
kills the worker process) the moment a deadline passes. Because the
enforcement action is a process kill rather than an in-process
exception, it works from any thread and cannot be blocked by a wedged
interpreter in the child.

Deadlines use :func:`time.monotonic` (injectable for tests), so wall
clock steps — NTP corrections, suspend/resume — never fire or starve a
watchdog.
"""

from __future__ import annotations

import threading
import time


class DeadlineWatchdog:
    """Fire callbacks when monotonic deadlines expire.

    ``arm(token, seconds, callback, reason)`` registers a deadline;
    ``disarm(token)`` cancels it. When a deadline passes, the entry is
    removed, the expiry is remembered (``fired_reason(token)``), and
    *callback(token, reason)* runs on the watchdog thread — callbacks
    must be quick and must not raise (a kill + flag set, typically).
    One token may hold several concurrent deadlines under distinct
    *reason* labels (a job timeout and an earlier chaos kill, say);
    the soonest fires first.
    """

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._entries = {}  # (token, reason) -> (deadline, callback)
        self._fired = {}  # token -> first reason that fired
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-watchdog", daemon=True
        )
        self._thread.start()

    def arm(self, token, seconds, callback, reason="timeout"):
        """Schedule *callback(token, reason)* in *seconds* from now."""
        with self._wakeup:
            if self._closed:
                raise RuntimeError("watchdog is closed")
            self._entries[(token, reason)] = (
                self._clock() + seconds, callback
            )
            self._wakeup.notify()

    def disarm(self, token):
        """Cancel every pending deadline for *token*."""
        with self._wakeup:
            for key in [k for k in self._entries if k[0] == token]:
                del self._entries[key]
            self._wakeup.notify()

    def fired_reason(self, token, clear=True):
        """The reason *token*'s first expiry fired, or ``None``."""
        with self._lock:
            if clear:
                return self._fired.pop(token, None)
            return self._fired.get(token)

    def pending(self):
        with self._lock:
            return len(self._entries)

    def close(self):
        with self._wakeup:
            self._closed = True
            self._entries.clear()
            self._wakeup.notify()
        self._thread.join(timeout=2.0)

    # -- watchdog thread ----------------------------------------------------

    def _run(self):
        while True:
            with self._wakeup:
                if self._closed:
                    return
                now = self._clock()
                expired = []
                soonest = None
                for key, (deadline, callback) in list(self._entries.items()):
                    if deadline <= now:
                        expired.append((key, callback))
                        del self._entries[key]
                    elif soonest is None or deadline < soonest:
                        soonest = deadline
                for (token, reason), _ in expired:
                    self._fired.setdefault(token, reason)
                if not expired:
                    timeout = None if soonest is None else max(
                        0.0, soonest - now
                    )
                    # Poll at least every 50ms so injected test clocks
                    # (which advance between waits) are noticed.
                    self._wakeup.wait(
                        0.05 if timeout is None else min(timeout, 0.05)
                    )
                    continue
            for (token, reason), callback in expired:
                try:
                    callback(token, reason)
                except Exception:
                    # A failing kill callback must not take down the
                    # watchdog thread; the pool's liveness checks will
                    # catch the worker eventually.
                    pass
