"""Content-addressed artifact cache with LRU eviction and verified reads.

Most serve traffic re-checks near-identical designs, so finished job
payloads are cached on disk under their content key (see
:func:`repro.serve.jobs.job_cache_key`). The cache is engineered for
hostile conditions, per the failure model the rest of the stack
assumes:

* **verified on read** — every entry stores the SHA-256 of its
  payload's canonical JSON; a mismatch (bit rot, torn write, a chaos
  monkey with a hex editor) is treated as a miss: the entry is deleted,
  the ``serve.cache.corrupt`` counter ticks, and the caller recomputes.
  Corruption can cost a recompute, never a crash and never a wrong
  answer;
* **bounded** — total bytes on disk stay under ``max_bytes``; inserts
  evict least-recently-used entries (file mtime is the recency clock,
  bumped on every hit, so warmth survives a server restart);
* **crash-safe writes** — entries land via write-to-temp + atomic
  rename, so a crash mid-``put`` leaves either the old entry or none.

Thread-safe: the server's asyncio thread checks for hits at submit
time while pool manager threads insert finished results.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading

from .jobs import canonical_json


class ArtifactCache:
    """Disk-backed LRU cache of JSON payloads keyed by content digest."""

    def __init__(self, directory, max_bytes=64 * 1024 * 1024):
        self.directory = directory
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corrupt = 0
        os.makedirs(directory, exist_ok=True)

    # -- internals ----------------------------------------------------------

    def _path(self, key):
        return os.path.join(self.directory, "%s.json" % key)

    def _entries(self):
        """``[(mtime, size, path)]`` of every entry currently on disk."""
        entries = []
        for name in os.listdir(self.directory):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.directory, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def _record(self, field):
        from .. import obs

        setattr(self, field, getattr(self, field) + 1)
        if obs.enabled:
            obs.counter("serve.cache.%s" % field).inc()

    # -- public API ---------------------------------------------------------

    def get(self, key):
        """The cached payload for *key*, or ``None``.

        A present-but-corrupt entry is deleted and reported as a miss.
        """
        path = self._path(key)
        with self._lock:
            try:
                with open(path, "r") as handle:
                    entry = json.load(handle)
                payload = entry["payload"]
                digest = hashlib.sha256(
                    canonical_json(payload).encode("utf-8")
                ).hexdigest()
                if digest != entry["digest"]:
                    raise ValueError("digest mismatch")
            except FileNotFoundError:
                self._record("misses")
                return None
            except (ValueError, KeyError, TypeError, OSError):
                # Corrupt entry: recompute, never crash.
                self._record("corrupt")
                self._record("misses")
                try:
                    os.remove(path)
                except OSError:
                    pass
                return None
            self._record("hits")
            try:
                os.utime(path)  # bump LRU recency
            except OSError:
                pass
            return payload

    def put(self, key, payload):
        """Insert *payload* under *key*, evicting LRU entries if needed."""
        body = json.dumps(
            {
                "digest": hashlib.sha256(
                    canonical_json(payload).encode("utf-8")
                ).hexdigest(),
                "payload": payload,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        path = self._path(key)
        with self._lock:
            temp = path + ".tmp"
            with open(temp, "w") as handle:
                handle.write(body)
            os.replace(temp, path)
            self._evict(keep=path)

    def _evict(self, keep=None):
        total = 0
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return
        for _, size, path in sorted(entries):
            if total <= self.max_bytes:
                break
            if path == keep:
                continue
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            self._record("evictions")

    def __contains__(self, key):
        return os.path.exists(self._path(key))

    def __len__(self):
        return len(self._entries())

    def total_bytes(self):
        return sum(size for _, size, _ in self._entries())

    def corrupt_entry(self, key):
        """Deliberately damage *key*'s stored payload (chaos harness)."""
        path = self._path(key)
        with self._lock:
            with open(path, "r") as handle:
                entry = json.load(handle)
            entry["payload"] = {"tampered": True}
            with open(path, "w") as handle:
                json.dump(entry, handle)

    def stats(self):
        """JSON-ready counters plus the current footprint."""
        hits, misses = self.hits, self.misses
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "entries": len(self),
            "bytes": self.total_bytes(),
            "hit_rate": round(hits / lookups, 4) if lookups else None,
        }
