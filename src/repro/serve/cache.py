"""Content-addressed artifact cache with LRU eviction and verified reads.

Most serve traffic re-checks near-identical designs, so finished job
payloads are cached on disk under their content key (see
:func:`repro.serve.jobs.job_cache_key`). The cache is engineered for
hostile conditions, per the failure model the rest of the stack
assumes:

* **verified on read** — every entry stores the SHA-256 of its
  payload's canonical JSON; a mismatch (bit rot, torn write, a chaos
  monkey with a hex editor) is treated as a miss: the entry is deleted,
  the ``serve.cache.corrupt`` counter ticks, and the caller recomputes.
  Corruption can cost a recompute, never a crash and never a wrong
  answer;
* **bounded** — total bytes on disk stay under ``max_bytes``; inserts
  evict least-recently-used entries. Recency is an **explicit access
  counter** persisted in a sidecar index (``lru-index``), not file
  mtime: on fast filesystems consecutive accesses land in the same
  mtime granule, which made eviction order tie-dependent and therefore
  filesystem-dependent. The index survives restarts (warmth persists)
  and its loss is harmless — unindexed entries are merely treated as
  coldest, in stable name order;
* **crash-safe writes** — entries land via write-to-temp + atomic
  rename, so a crash mid-``put`` leaves either the old entry or none.
  The index is written the same way; a torn or corrupt index is
  discarded and rebuilt, never trusted.

Thread-safe: the server's asyncio thread checks for hits at submit
time while pool manager threads insert finished results.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading

from .jobs import canonical_json


class ArtifactCache:
    """Disk-backed LRU cache of JSON payloads keyed by content digest."""

    def __init__(self, directory, max_bytes=64 * 1024 * 1024):
        self.directory = directory
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corrupt = 0
        os.makedirs(directory, exist_ok=True)
        self._index_path = os.path.join(directory, "lru-index")
        self._access = {}  # entry filename -> access sequence number
        self._access_seq = 0
        self._load_index()

    # -- internals ----------------------------------------------------------

    def _path(self, key):
        return os.path.join(self.directory, "%s.json" % key)

    def _load_index(self):
        """Restore the access-order index; tolerate loss or damage."""
        try:
            with open(self._index_path, "r") as handle:
                raw = json.load(handle)
            self._access = {
                str(name): int(seq) for name, seq in raw.items()
            }
        except (OSError, ValueError, TypeError, AttributeError):
            # Missing (fresh cache), torn, or corrupt: start cold.
            # Unindexed entries evict first, so correctness holds.
            self._access = {}
        self._access_seq = max(self._access.values(), default=0)

    def _save_index(self):
        temp = self._index_path + ".tmp"
        try:
            with open(temp, "w") as handle:
                json.dump(self._access, handle, separators=(",", ":"))
            os.replace(temp, self._index_path)
        except OSError:
            pass  # recency is an optimization; never fail the caller

    def _touch(self, path):
        """Mark *path* most-recently-used and persist the ordering."""
        self._access_seq += 1
        self._access[os.path.basename(path)] = self._access_seq
        self._save_index()

    def _drop_index(self, path):
        if self._access.pop(os.path.basename(path), None) is not None:
            self._save_index()

    def _entries(self):
        """``[(mtime, size, path)]`` of every entry currently on disk."""
        entries = []
        for name in os.listdir(self.directory):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.directory, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def _record(self, field):
        from .. import obs

        setattr(self, field, getattr(self, field) + 1)
        if obs.enabled:
            obs.counter("serve.cache.%s" % field).inc()

    # -- public API ---------------------------------------------------------

    def get(self, key):
        """The cached payload for *key*, or ``None``.

        A present-but-corrupt entry is deleted and reported as a miss.
        """
        path = self._path(key)
        with self._lock:
            try:
                with open(path, "r") as handle:
                    entry = json.load(handle)
                payload = entry["payload"]
                digest = hashlib.sha256(
                    canonical_json(payload).encode("utf-8")
                ).hexdigest()
                if digest != entry["digest"]:
                    raise ValueError("digest mismatch")
            except FileNotFoundError:
                self._record("misses")
                return None
            except (ValueError, KeyError, TypeError, OSError):
                # Corrupt entry: recompute, never crash.
                self._record("corrupt")
                self._record("misses")
                try:
                    os.remove(path)
                except OSError:
                    pass
                self._drop_index(path)
                return None
            self._record("hits")
            self._touch(path)
            return payload

    def put(self, key, payload):
        """Insert *payload* under *key*, evicting LRU entries if needed."""
        body = json.dumps(
            {
                "digest": hashlib.sha256(
                    canonical_json(payload).encode("utf-8")
                ).hexdigest(),
                "payload": payload,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        path = self._path(key)
        with self._lock:
            temp = path + ".tmp"
            with open(temp, "w") as handle:
                handle.write(body)
            os.replace(temp, path)
            self._touch(path)
            self._evict(keep=path)

    def _evict(self, keep=None):
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return
        # Strict LRU by access sequence; entries missing from the index
        # (a lost or pre-upgrade cache) are coldest, in stable name
        # order — never mtime, whose granularity ties on fast
        # filesystems made eviction order filesystem-dependent.
        ranked = sorted(
            entries,
            key=lambda entry: (
                self._access.get(os.path.basename(entry[2]), 0),
                os.path.basename(entry[2]),
            ),
        )
        dropped = False
        for _, size, path in ranked:
            if total <= self.max_bytes:
                break
            if path == keep:
                continue
            try:
                os.remove(path)
            except OSError:
                continue
            self._access.pop(os.path.basename(path), None)
            dropped = True
            total -= size
            self._record("evictions")
        if dropped:
            self._save_index()

    def __contains__(self, key):
        return os.path.exists(self._path(key))

    def __len__(self):
        return len(self._entries())

    def total_bytes(self):
        return sum(size for _, size, _ in self._entries())

    def corrupt_entry(self, key):
        """Deliberately damage *key*'s stored payload (chaos harness)."""
        path = self._path(key)
        with self._lock:
            with open(path, "r") as handle:
                entry = json.load(handle)
            entry["payload"] = {"tampered": True}
            with open(path, "w") as handle:
                json.dump(entry, handle)

    def stats(self):
        """JSON-ready counters plus the current footprint."""
        hits, misses = self.hits, self.misses
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "entries": len(self),
            "bytes": self.total_bytes(),
            "hit_rate": round(hits / lookups, 4) if lookups else None,
        }
