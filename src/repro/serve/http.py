"""Minimal JSON-over-HTTP/1.1 plumbing on stdlib asyncio.

Just enough protocol for the serve API — request-line + headers +
``Content-Length`` body in, one JSON document out, ``Connection:
close`` always. No dependencies, no streaming, no keep-alive: every
request is an independent short exchange, which keeps the failure
model trivial (a broken connection loses one response, never corrupts
a stream).
"""

from __future__ import annotations

import json

REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Largest request body accepted (a pasted design, not a bitstream).
MAX_BODY_BYTES = 8 * 1024 * 1024


class HttpError(Exception):
    """Raise inside a handler to produce a structured error response."""

    def __init__(self, status, message, **extra):
        super().__init__(message)
        self.status = status
        self.payload = {"error": message}
        self.payload.update(extra)


async def read_request(reader):
    """Parse one request; returns ``(method, path, headers, body)``.

    Returns ``None`` on a closed/empty connection. Malformed requests
    raise :class:`HttpError` (400).
    """
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").split()
    if len(parts) < 2:
        raise HttpError(400, "malformed request line")
    method, path = parts[0].upper(), parts[1]
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise HttpError(400, "bad Content-Length")
    if length < 0 or length > MAX_BODY_BYTES:
        raise HttpError(400, "unacceptable Content-Length %d" % length)
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


def parse_json_body(body):
    """The request body as a JSON object (400 on anything else)."""
    if not body:
        return {}
    try:
        obj = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        raise HttpError(400, "request body is not valid JSON")
    if not isinstance(obj, dict):
        raise HttpError(400, "request body must be a JSON object")
    return obj


def json_response(status, payload, headers=()):
    """A full HTTP response as bytes."""
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode(
        "utf-8"
    )
    lines = [
        "HTTP/1.1 %d %s" % (status, REASONS.get(status, "Unknown")),
        "Content-Type: application/json",
        "Content-Length: %d" % len(body),
        "Connection: close",
    ]
    lines.extend("%s: %s" % pair for pair in headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
