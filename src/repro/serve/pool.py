"""Subprocess worker transport: deadline kills, requeue, retry/backoff.

Each worker is a subprocess (``python -m repro.serve.worker``) owned by
one manager thread in the server. The manager feeds it one job at a
time over stdin and waits for the JSON result line; robustness comes
from what happens when that line never arrives:

* a :class:`~repro.serve.watchdog.DeadlineWatchdog` entry SIGKILLs the
  worker when the job's monotonic deadline passes (``SIGALRM``-based
  :func:`repro.runtime.time_limit` cannot arm off the main thread — the
  worker's *own* main thread still uses it for inner, finer-grained
  limits);
* a dead worker — killed by the watchdog, by the chaos monkey, or by a
  genuine crash — is detected as EOF; the in-flight job is requeued
  with exponential backoff + jitter while retry budget remains, and the
  worker is respawned for the next job;
* a job class that keeps failing fatally trips the
  :class:`~repro.serve.breaker.CircuitBreaker`, which quarantines that
  kind instead of letting it take the pool down.

Every dispatch holds a :class:`~repro.serve.lease.Lease`; results are
applied through :meth:`WorkerTransport.deliver`, so the exactly-once
guarantees (fenced stale results, deduplicated deliveries) are the same
here as over the TCP fabric — the pipes just make stale results rare.
"""

from __future__ import annotations

import json
import queue
import subprocess
import sys
import threading

from .jobs import CRASHED, RUNNING, TIMEOUT
from .transport import REASON_CHAOS, REASON_TIMEOUT, WorkerTransport

_SENTINEL = object()


class WorkerPool(WorkerTransport):
    """Fixed-size pool of subprocess workers with a shared job queue."""

    def __init__(self, workers=2, **kwargs):
        super().__init__(**kwargs)
        self._queue = queue.Queue()
        from .watchdog import DeadlineWatchdog

        self.watchdog = DeadlineWatchdog()
        self._workers = [
            _WorkerSlot(self, index) for index in range(max(1, workers))
        ]
        for slot in self._workers:
            slot.start()

    # -- transport interface -------------------------------------------------

    def _enqueue(self, job):
        self._queue.put(job)

    def queue_depth(self):
        return self._queue.qsize()

    def close(self):
        """Stop managers, kill workers. Non-terminal jobs stay journaled
        as incomplete for ``--resume``."""
        if not self._mark_closed():
            return
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for slot in self._workers:
            slot.kill()
        for slot in self._workers:
            slot.join(timeout=5.0)
        self.watchdog.close()


class _WorkerSlot:
    """One worker subprocess and the manager thread that babysits it."""

    def __init__(self, pool, index):
        self.pool = pool
        self.index = index
        self.proc = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-worker-%d" % index,
            daemon=True,
        )

    def start(self):
        self._thread.start()

    def join(self, timeout=None):
        self._thread.join(timeout=timeout)

    def kill(self):
        proc = self.proc
        if proc is not None and proc.poll() is None:
            proc.kill()

    def _spawn(self, respawn):
        if respawn:
            self.pool._count("worker_restarts")
        self.proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.serve.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            bufsize=1,
        )

    def _run(self):
        pool = self.pool
        ever_spawned = False
        while True:
            job = pool._queue.get()
            if job is _SENTINEL or pool.closed:
                break
            pool._gauge_depth()
            if self.proc is None or self.proc.poll() is not None:
                self._spawn(respawn=ever_spawned)
                ever_spawned = True
            proc = self.proc
            lease = pool.leases.grant(job.id)
            job.attempts += 1
            job.status = RUNNING
            pool._count("executions")
            token = lease.token

            def _kill(token, reason, proc=proc):
                if proc.poll() is None:
                    proc.kill()

            request = json.dumps({
                "id": job.id,
                "kind": job.kind,
                "params": job.params,
                "attempt": job.attempts,
                "epoch": lease.epoch,
            }, sort_keys=True)
            try:
                proc.stdin.write(request + "\n")
                proc.stdin.flush()
            except (BrokenPipeError, OSError):
                # Worker died between jobs: burn no watchdog, requeue.
                self.proc = None
                pool.abandon(job, lease.epoch)
                continue
            pool.watchdog.arm(
                token, pool.watchdog_seconds, _kill, REASON_TIMEOUT
            )
            if pool.chaos is not None:
                # Keyed by attempt, not epoch: the kill schedule for a
                # given seed must not shift with lease bookkeeping
                # (epochs advance by two per requeue, which would skew
                # the per-attempt kill probability stream).
                kill_after = pool.chaos.kill_after(job.id, job.attempts)
                if kill_after is not None:
                    pool.watchdog.arm(token, kill_after, _kill, REASON_CHAOS)
            line = proc.stdout.readline()
            pool.watchdog.disarm(token)
            reason = pool.watchdog.fired_reason(token)
            if pool.closed:
                break
            response = None
            if line:
                try:
                    response = json.loads(line)
                except ValueError:
                    response = None  # torn final line from a kill
            if response is not None:
                pool.deliver(
                    job,
                    int(response.get("epoch", lease.epoch)),
                    ok=bool(response.get("ok")),
                    payload=response.get("payload"),
                    error=response.get("error", "unknown error"),
                    error_code=response.get("error_code"),
                    transient=bool(response.get("transient")),
                )
                continue
            # No (intact) response: the worker is gone. Classify by who
            # pulled the trigger, then respawn lazily on the next job.
            proc.wait()
            self.proc = None
            if reason == REASON_TIMEOUT:
                pool._count("watchdog_kills")
                pool.abandon(
                    job, lease.epoch, status=TIMEOUT,
                    error="watchdog kill after %.1fs"
                          % pool.watchdog_seconds,
                )
            else:
                pool.abandon(
                    job, lease.epoch, status=CRASHED,
                    count="chaos_kills" if reason == REASON_CHAOS else None,
                )
