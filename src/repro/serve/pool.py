"""Process worker pool with deadline kills, requeue, and retry/backoff.

Each worker is a subprocess (``python -m repro.serve.worker``) owned by
one manager thread in the server. The manager feeds it one job at a
time over stdin and waits for the JSON result line; robustness comes
from what happens when that line never arrives:

* a :class:`~repro.serve.watchdog.DeadlineWatchdog` entry SIGKILLs the
  worker when the job's monotonic deadline passes (``SIGALRM``-based
  :func:`repro.runtime.time_limit` cannot arm off the main thread — the
  worker's *own* main thread still uses it for inner, finer-grained
  limits);
* a dead worker — killed by the watchdog, by the chaos monkey, or by a
  genuine crash — is detected as EOF; the in-flight job is requeued
  with exponential backoff + jitter while retry budget remains, and the
  worker is respawned for the next job;
* a job class that keeps failing fatally trips the
  :class:`~repro.serve.breaker.CircuitBreaker`, which quarantines that
  kind instead of letting it take the pool down.

Exactly-once completion: a job reaches a terminal status exactly once
(executions are at-least-once — a killed attempt may rerun — but
finalization is guarded), which is what the journal's ``done`` records
and the resume logic rely on.
"""

from __future__ import annotations

import json
import queue
import subprocess
import sys
import threading
import time

from ..runtime import backoff_delay
from .jobs import CRASHED, DONE, FAILED, QUARANTINED, QUEUED, RUNNING, TIMEOUT

_SENTINEL = object()

#: Watchdog reasons.
_REASON_TIMEOUT = "timeout"
_REASON_CHAOS = "chaos"


class WorkerPool:
    """Fixed-size pool of subprocess workers with a shared job queue."""

    def __init__(
        self,
        workers=2,
        watchdog_seconds=30.0,
        retries=2,
        backoff=0.25,
        jitter=0.1,
        breaker=None,
        chaos=None,
        on_done=None,
        sleep=time.sleep,
    ):
        self.watchdog_seconds = watchdog_seconds
        self.retries = retries
        self.backoff = backoff
        self.jitter = jitter
        self.breaker = breaker
        self.chaos = chaos
        self.on_done = on_done or (lambda job: None)
        self._sleep = sleep
        self._queue = queue.Queue()
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._outstanding = 0
        self._closed = False
        self.watchdog = None
        self.stats = {
            "executions": 0,
            "retries": 0,
            "watchdog_kills": 0,
            "chaos_kills": 0,
            "worker_restarts": 0,
        }
        from .watchdog import DeadlineWatchdog

        self.watchdog = DeadlineWatchdog()
        self._workers = [
            _WorkerSlot(self, index) for index in range(max(1, workers))
        ]
        for slot in self._workers:
            slot.start()

    # -- submission / lifecycle --------------------------------------------

    def submit(self, job):
        """Queue *job* — or quarantine it instantly if its kind is open."""
        if self.breaker is not None and not self.breaker.allow(job.kind):
            with self._lock:
                self._outstanding += 1
            self._finalize(
                job, QUARANTINED,
                error="job kind %r quarantined by circuit breaker"
                      % job.kind,
            )
            return
        with self._lock:
            self._outstanding += 1
        job.status = QUEUED
        self._queue.put(job)
        self._gauge_depth()

    def outstanding(self):
        with self._lock:
            return self._outstanding

    def stats_snapshot(self):
        with self._lock:
            return dict(self.stats)

    def queue_depth(self):
        return self._queue.qsize()

    def drain(self, timeout=None):
        """Block until every submitted job is terminal. True on success."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._drained:
            while self._outstanding > 0:
                remaining = None if deadline is None else (
                    deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._drained.wait(
                    0.5 if remaining is None else min(remaining, 0.5)
                )
        return True

    def close(self):
        """Stop managers, kill workers. Non-terminal jobs stay journaled
        as incomplete for ``--resume``."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for slot in self._workers:
            slot.kill()
        for slot in self._workers:
            slot.join(timeout=5.0)
        self.watchdog.close()

    @property
    def closed(self):
        with self._lock:
            return self._closed

    # -- internals ----------------------------------------------------------

    def _gauge_depth(self):
        from .. import obs

        if obs.enabled:
            obs.gauge("serve.queue.depth").set(self._queue.qsize())

    def _count(self, name):
        from .. import obs

        with self._lock:
            self.stats[name] += 1
        if obs.enabled:
            obs.counter("serve.%s" % name).inc()

    def _finalize(self, job, status, payload=None, error="",
                  error_code=None):
        from .. import obs

        assert not job.terminal, "job %s finalized twice" % job.id
        job.status = status
        job.result = payload
        job.error = error
        job.error_code = error_code
        if self.breaker is not None:
            if status == DONE:
                self.breaker.record_success(job.kind)
            elif status in (TIMEOUT, CRASHED):
                self.breaker.record_failure(job.kind)
        if obs.enabled:
            obs.counter("serve.jobs.%s" % status).inc()
        with self._drained:
            self._outstanding -= 1
            self._drained.notify_all()
        self.on_done(job)

    def _retry_or_finalize(self, job, status, error, error_code=None,
                           transient=True):
        """Requeue a transiently failed attempt, or make *status* final."""
        if transient and job.attempts <= self.retries and not self.closed:
            self._count("retries")
            delay = backoff_delay(
                job.attempts, base_delay=self.backoff, jitter=self.jitter
            )
            job.status = QUEUED
            self._sleep(delay)
            self._queue.put(job)
            self._gauge_depth()
            return
        self._finalize(job, status, error=error, error_code=error_code)


class _WorkerSlot:
    """One worker subprocess and the manager thread that babysits it."""

    def __init__(self, pool, index):
        self.pool = pool
        self.index = index
        self.proc = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-worker-%d" % index,
            daemon=True,
        )

    def start(self):
        self._thread.start()

    def join(self, timeout=None):
        self._thread.join(timeout=timeout)

    def kill(self):
        proc = self.proc
        if proc is not None and proc.poll() is None:
            proc.kill()

    def _spawn(self, respawn):
        if respawn:
            self.pool._count("worker_restarts")
        self.proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.serve.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            bufsize=1,
        )

    def _run(self):
        pool = self.pool
        ever_spawned = False
        while True:
            job = pool._queue.get()
            if job is _SENTINEL or pool.closed:
                break
            pool._gauge_depth()
            if self.proc is None or self.proc.poll() is not None:
                self._spawn(respawn=ever_spawned)
                ever_spawned = True
            proc = self.proc
            job.attempts += 1
            job.status = RUNNING
            pool._count("executions")
            token = "%s@%d" % (job.id, job.attempts)

            def _kill(token, reason, proc=proc):
                if proc.poll() is None:
                    proc.kill()

            request = json.dumps({
                "id": job.id,
                "kind": job.kind,
                "params": job.params,
                "attempt": job.attempts,
            }, sort_keys=True)
            try:
                proc.stdin.write(request + "\n")
                proc.stdin.flush()
            except (BrokenPipeError, OSError):
                # Worker died between jobs: burn no watchdog, requeue.
                self.proc = None
                pool._retry_or_finalize(job, CRASHED, error="worker died")
                continue
            pool.watchdog.arm(
                token, pool.watchdog_seconds, _kill, _REASON_TIMEOUT
            )
            if pool.chaos is not None:
                kill_after = pool.chaos.kill_after(job.id, job.attempts)
                if kill_after is not None:
                    pool.watchdog.arm(token, kill_after, _kill, _REASON_CHAOS)
            line = proc.stdout.readline()
            pool.watchdog.disarm(token)
            reason = pool.watchdog.fired_reason(token)
            if pool.closed:
                break
            response = None
            if line:
                try:
                    response = json.loads(line)
                except ValueError:
                    response = None  # torn final line from a kill
            if response is not None:
                if response.get("ok"):
                    self.pool._finalize(job, DONE,
                                        payload=response.get("payload"))
                else:
                    pool._retry_or_finalize(
                        job, FAILED,
                        error=response.get("error", "unknown error"),
                        error_code=response.get("error_code"),
                        transient=bool(response.get("transient")),
                    )
                continue
            # No (intact) response: the worker is gone. Classify by who
            # pulled the trigger, then respawn lazily on the next job.
            proc.wait()
            self.proc = None
            if reason == _REASON_TIMEOUT:
                pool._count("watchdog_kills")
                pool._retry_or_finalize(
                    job, TIMEOUT,
                    error="watchdog kill after %.1fs"
                          % pool.watchdog_seconds,
                )
            else:
                if reason == _REASON_CHAOS:
                    pool._count("chaos_kills")
                pool._retry_or_finalize(job, CRASHED, error="worker died")
