"""repro: reproduction of *Debugging in the Brave New World of
Reconfigurable Hardware* (ASPLOS 2022).

Subpackages
-----------
``repro.hdl``
    Verilog-subset lexer/parser/AST/codegen and design elaboration.
``repro.sim``
    Cycle-accurate two-state simulator, testbench helpers, IP models.
``repro.analysis``
    Static analyses: dependency graphs, path constraints, FSM detection,
    data-propagation relations.
``repro.core``
    The paper's five debugging tools: SignalCat, FSM Monitor, Dependency
    Monitor, Statistics Monitor, LossCheck.
``repro.study``
    The 68-bug study database and taxonomy (Table 1).
``repro.testbed``
    The 20 reliably-reproducible bugs (Table 2) with push-button harness.
``repro.resources``
    Synthesis resource/timing estimation for the overhead evaluation
    (Figures 2 and 3).
``repro.obs``
    Observability for the stack itself: metrics registry, tracing
    spans, and JSON run reports, gated on ``repro.obs.enabled``.
"""

__version__ = "1.0.0"

from .hdl import elaborate, parse  # noqa: E402
from .sim import Simulator, Testbench  # noqa: E402
from .core import (  # noqa: E402
    DependencyMonitor,
    FSMMonitor,
    LossCheck,
    Mode,
    SignalCat,
    StatisticsMonitor,
)

__all__ = [
    "parse",
    "elaborate",
    "Simulator",
    "Testbench",
    "SignalCat",
    "Mode",
    "FSMMonitor",
    "DependencyMonitor",
    "StatisticsMonitor",
    "LossCheck",
    "__version__",
]
