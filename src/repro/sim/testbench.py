"""Testbench conveniences on top of :class:`~repro.sim.simulator.Simulator`.

A :class:`Testbench` owns a simulator, applies a reset pulse, and offers
valid-interface helpers (``send``/``collect``) that the testbed's
push-button bug reproductions and the tools' ground-truth test programs
are written with.
"""

from __future__ import annotations

from .simulator import Simulator


class Testbench:
    """Drives one design: reset, stimulus helpers, output collection."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, design, clock="clk", reset="rst", ips=None, trace=None):
        self.sim = Simulator(design, ips=ips, trace=trace)
        self.clock = clock
        self.reset_signal = reset
        self._collectors = []

    def __getitem__(self, name):
        return self.sim[name]

    def __setitem__(self, name, value):
        self.sim[name] = value

    @property
    def cycle(self):
        """Current cycle number."""
        return self.sim.cycle

    @property
    def finished(self):
        """True once the design executed ``$finish``."""
        return self.sim.finished

    @property
    def display_events(self):
        """All :class:`DisplayEvent` records so far."""
        return self.sim.display_events

    def reset(self, cycles=2):
        """Pulse the reset signal for *cycles* cycles."""
        if self.reset_signal and self.reset_signal in self.sim.state:
            self.sim[self.reset_signal] = 1
            self.step(cycles)
            self.sim[self.reset_signal] = 0
            self.step(1)

    def step(self, cycles=1):
        """Advance full clock cycles, running collectors each cycle."""
        for _ in range(cycles):
            if self.sim.finished:
                return
            self.sim.step(clock=self.clock)
            for collector in self._collectors:
                collector()

    def watch_valid(self, valid, data, into=None):
        """Collect ``data`` every cycle where ``valid`` is high post-edge.

        Returns the list that accumulates the collected values.
        """
        collected = into if into is not None else []

        def collector():
            if self.sim[valid]:
                collected.append(self.sim[data])

        self._collectors.append(collector)
        return collected

    def send(self, data_signal, valid_signal, values, gap=0):
        """Send *values* through a valid interface, one per cycle.

        ``gap`` inserts idle cycles between consecutive values.
        """
        for value in values:
            self.sim[data_signal] = value
            self.sim[valid_signal] = 1
            self.step(1)
            self.sim[valid_signal] = 0
            if gap:
                self.step(gap)
        self.sim[valid_signal] = 0

    def run_until(self, condition, max_cycles=10000):
        """Step until *condition(testbench)* is truthy; False on timeout."""
        for _ in range(max_cycles):
            if condition(self):
                return True
            if self.sim.finished:
                return bool(condition(self))
            self.step(1)
        return False
