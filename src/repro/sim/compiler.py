"""Expression compilation: AST -> specialized Python closures.

The interpreted :class:`~repro.sim.values.Evaluator` recomputes widths
and dispatches on node types every cycle. Since all widths are static
after elaboration, each expression can instead be compiled once into a
Python expression string (with the same two-state masking semantics
baked in as constants) and evaluated as a closure thereafter.

``Simulator(design, compile_expressions=True)`` swaps the evaluator for
:class:`CompiledEvaluator`; results are bit-identical to the interpreter
(asserted by the test suite across the whole testbed). On the testbed's
small designs throughput is roughly at parity — the win grows with
expression size, since compiled closures skip the per-node dispatch and
width recomputation the interpreter performs every cycle (see
``benchmarks/bench_ablations.py`` for measurements).
"""

from __future__ import annotations

from ..hdl import ast_nodes as ast
from ..hdl.transform import const_eval, try_const_eval
from .values import Evaluator, EvaluationError, mask, read_array, self_width


def _div(left, right):
    return left // right if right else 0


def _mod(left, right):
    return left % right if right else 0


def _parity(value):
    return bin(value).count("1") & 1


#: Globals visible to compiled expressions.
_COMPILE_GLOBALS = {
    "_ra": read_array,
    "_div": _div,
    "_mod": _mod,
    "_parity": _parity,
}


class _Compiler:
    """Translates one expression tree into a Python source fragment."""

    def __init__(self, symbols):
        self.symbols = symbols

    def compile(self, expr, ctx_width):
        source = self.emit(expr, ctx_width)
        code = compile("lambda s: (%s)" % source, "<compiled-expr>", "eval")
        return eval(code, dict(_COMPILE_GLOBALS))

    # The emit methods mirror Evaluator.eval case for case; any change
    # there must be reflected here (the property tests enforce this).

    def emit(self, expr, ctx_width=0):
        symbols = self.symbols
        if isinstance(expr, ast.Number):
            value = expr.value
            if expr.width is not None:
                value &= mask(expr.width)
            return repr(value)
        if isinstance(expr, ast.Identifier):
            if expr.name not in symbols.widths:
                raise EvaluationError("undeclared signal %r" % expr.name)
            return "s[%r]" % expr.name
        if isinstance(expr, ast.Index):
            index = self.emit(expr.index)
            if isinstance(expr.var, ast.Identifier) and symbols.is_array(
                expr.var.name
            ):
                return "_ra(s[%r], %s, %d)" % (
                    expr.var.name,
                    index,
                    symbols.depth_of(expr.var.name),
                )
            return "((%s) >> (%s)) & 1" % (self.emit(expr.var), index)
        if isinstance(expr, ast.PartSelect):
            msb = const_eval(expr.msb)
            lsb = const_eval(expr.lsb)
            return "((%s) >> %d) & %d" % (
                self.emit(expr.var),
                lsb,
                mask(msb - lsb + 1),
            )
        if isinstance(expr, ast.IndexedPartSelect):
            width = const_eval(expr.width)
            base = self.emit(expr.base)
            var = self.emit(expr.var)
            if expr.ascending:
                return "((%s) >> (%s)) & %d" % (var, base, mask(width))
            return (
                "(((%s) >> ((%s) - %d)) & %d if (%s) >= %d else 0)"
                % (var, base, width - 1, mask(width), base, width - 1)
            )
        if isinstance(expr, ast.Concat):
            parts = []
            shift = sum(self_width(p, symbols) for p in expr.parts)
            for part in expr.parts:
                width = self_width(part, symbols)
                shift -= width
                parts.append(
                    "(((%s) & %d) << %d)" % (self.emit(part), mask(width), shift)
                )
            return "(" + " | ".join(parts) + ")"
        if isinstance(expr, ast.Repeat):
            count = const_eval(expr.count)
            width = self_width(expr.expr, symbols)
            parts = [
                "(((%s) & %d) << %d)"
                % (self.emit(expr.expr), mask(width), i * width)
                for i in range(count)
            ]
            return "(" + (" | ".join(parts) if parts else "0") + ")"
        if isinstance(expr, ast.UnaryOp):
            return self._emit_unary(expr, ctx_width)
        if isinstance(expr, ast.BinaryOp):
            return self._emit_binary(expr, ctx_width)
        if isinstance(expr, ast.Ternary):
            width = max(self_width(expr, symbols), ctx_width)
            return "(((%s) if (%s) else (%s)) & %d)" % (
                self.emit(expr.iftrue, width),
                self.emit(expr.cond),
                self.emit(expr.iffalse, width),
                mask(width),
            )
        if isinstance(expr, ast.SizeCast):
            return "((%s) & %d)" % (self.emit(expr.expr), mask(expr.width))
        raise EvaluationError("cannot compile %r" % (expr,))

    def _emit_unary(self, expr, ctx_width):
        op = expr.op
        if op in ("~", "-"):
            width = max(self_width(expr, self.symbols), ctx_width)
            inner = self.emit(expr.operand, width)
            if op == "~":
                return "((~(%s)) & %d)" % (inner, mask(width))
            return "((-(%s)) & %d)" % (inner, mask(width))
        inner = self.emit(expr.operand)
        width = self_width(expr.operand, self.symbols)
        if op == "!":
            return "(1 if (%s) == 0 else 0)" % inner
        if op == "&":
            return "(1 if (%s) == %d else 0)" % (inner, mask(width))
        if op == "~&":
            return "(0 if (%s) == %d else 1)" % (inner, mask(width))
        if op == "|":
            return "(1 if (%s) != 0 else 0)" % inner
        if op == "~|":
            return "(1 if (%s) == 0 else 0)" % inner
        if op == "^":
            return "_parity(%s)" % inner
        if op == "~^":
            return "(1 - _parity(%s))" % inner
        raise EvaluationError("unsupported unary operator %s" % op)

    def _emit_binary(self, expr, ctx_width):
        op = expr.op
        symbols = self.symbols
        if op == "&&":
            return "(1 if (%s) and (%s) else 0)" % (
                self.emit(expr.left),
                self.emit(expr.right),
            )
        if op == "||":
            return "(1 if (%s) or (%s) else 0)" % (
                self.emit(expr.left),
                self.emit(expr.right),
            )
        if op in ("==", "!=", "===", "!==", "<", "<=", ">", ">="):
            width = max(
                self_width(expr.left, symbols), self_width(expr.right, symbols)
            )
            left = "((%s) & %d)" % (self.emit(expr.left, width), mask(width))
            right = "((%s) & %d)" % (self.emit(expr.right, width), mask(width))
            python_op = {"===": "==", "!==": "!="}.get(op, op)
            return "(1 if %s %s %s else 0)" % (left, python_op, right)
        if op in ("<<", ">>", "<<<", ">>>"):
            width = max(self_width(expr.left, symbols), ctx_width)
            left = "((%s) & %d)" % (self.emit(expr.left, width), mask(width))
            shift = self.emit(expr.right)
            if op in ("<<", "<<<"):
                return "(((%s) << (%s)) & %d)" % (left, shift, mask(width))
            return "((%s) >> (%s))" % (left, shift)
        width = max(self_width(expr, symbols), ctx_width)
        left = self.emit(expr.left, width)
        right = self.emit(expr.right, width)
        m = mask(width)
        if op == "+":
            return "(((%s) + (%s)) & %d)" % (left, right, m)
        if op == "-":
            return "(((%s) - (%s)) & %d)" % (left, right, m)
        if op == "*":
            return "(((%s) * (%s)) & %d)" % (left, right, m)
        if op == "/":
            return "(_div((%s), (%s)) & %d)" % (left, right, m)
        if op == "%":
            return "(_mod((%s), (%s)) & %d)" % (left, right, m)
        if op == "&":
            return "((%s) & (%s))" % (left, right)
        if op == "|":
            return "((%s) | (%s))" % (left, right)
        if op == "^":
            return "((%s) ^ (%s))" % (left, right)
        raise EvaluationError("unsupported binary operator %s" % op)


class CompiledEvaluator(Evaluator):
    """Drop-in evaluator that JIT-compiles each (expr, ctx_width) pair."""

    def __init__(self, symbols):
        super().__init__(symbols)
        self._compiler = _Compiler(symbols)
        self._cache = {}
        # Expressions are cached by id(); keep references alive so ids
        # stay unique for the evaluator's lifetime.
        self._pinned = []

    def eval(self, expr, state, ctx_width=0):
        key = (id(expr), ctx_width)
        fn = self._cache.get(key)
        if fn is None:
            fn = self._compiler.compile(expr, ctx_width)
            self._cache[key] = fn
            self._pinned.append(expr)
        return fn(state)
