"""Behavioral models for closed-source IP blocks.

The paper's toolchain treats vendor IPs (``altsyncram``, ``scfifo``,
``dcfifo``) as blackboxes with developer-provided models (§5). This package
provides both the runtime behavior (used by the simulator) and, through
:mod:`repro.analysis.ip_models`, the declarative dependency models used by
Dependency Monitor and LossCheck.
"""

from .base import IPModel
from .altsyncram import AltSyncRam
from .fifos import DualClockFifo, SingleClockFifo
from .recorder import SignalRecorder

#: Default registry: blackbox module name -> model factory(params).
REGISTRY = {
    "altsyncram": AltSyncRam,
    "scfifo": SingleClockFifo,
    "dcfifo": DualClockFifo,
    "signal_recorder": SignalRecorder,
}

__all__ = [
    "IPModel",
    "AltSyncRam",
    "SingleClockFifo",
    "DualClockFifo",
    "SignalRecorder",
    "REGISTRY",
]
