"""Behavioral model of the on-FPGA data-recording IP used by SignalCat.

Models the SignalTap/ILA-style trace buffer the paper simulates in its
artifact (§6.1): a fixed-depth buffer of wide samples. Each cycle where
``enable`` is high, the value on ``data`` is stored together with the
cycle number. The buffer is circular: once ``DEPTH`` samples have been
captured, the oldest are overwritten — exactly the bounded on-FPGA
storage tradeoff the paper contrasts with Cascade/Synergy (§7).

Parameters: ``WIDTH`` (sample width in bits) and ``DEPTH`` (number of
buffer entries; the paper's default is 8192).
"""

from __future__ import annotations

from collections import deque

from ... import obs
from .base import IPModel

#: Paper default recording-buffer depth (§6.1).
DEFAULT_DEPTH = 8192


class SignalRecorder(IPModel):
    """Trace-buffer recording IP (SignalTap/ILA stand-in)."""

    INPUT_PORTS = ("enable", "data")
    OUTPUT_PORTS = ("count",)
    CLOCK_PORTS = ("clock",)

    def __init__(self, params=None):
        super().__init__(params)
        self.width = int(self.param("WIDTH", 32))
        self.depth = int(self.param("DEPTH", DEFAULT_DEPTH))
        #: Change-only sampling (a buffer-usage optimization in the
        #: spirit of the trace-reduction work the paper cites in §7):
        #: identical back-to-back samples are stored once.
        self.dedup = bool(self.param("DEDUP", 0))
        #: Captured (cycle, data) samples, oldest first, bounded by depth.
        self.samples = deque(maxlen=self.depth)
        self._cycle = 0
        self._last_word = None
        #: Total samples offered, including ones that overwrote older data.
        self.total_samples = 0

    def outputs(self, inputs):
        return {"count": len(self.samples)}

    def clock_edge(self, inputs, fired):
        if inputs.get("enable", 0):
            word = inputs.get("data", 0)
            self.total_samples += 1
            if self.dedup and word == self._last_word:
                if obs.enabled:
                    obs.counter("sim.recorder.dedup_drops").inc()
            else:
                if obs.enabled:
                    obs.counter("sim.recorder.samples").inc()
                    if len(self.samples) == self.depth:
                        obs.counter("sim.recorder.overwrites").inc()
                self.samples.append((self._cycle, word))
            self._last_word = word
        else:
            self._last_word = None
        self._cycle += 1

    def inject_overflow(self, keep=0):
        """Fault model: the circular buffer wraps, losing old samples.

        Discards all but the newest *keep* samples and accounts for them
        as overwritten, so :attr:`overwrote` reports the wrap. Returns
        the number of samples lost.
        """
        lost = max(0, len(self.samples) - max(0, keep))
        for _ in range(lost):
            self.samples.popleft()
        if lost:
            # A wrap by definition: account the lost samples as overwrites.
            self.total_samples = max(self.total_samples, self.depth + lost)
        return lost

    @property
    def overwrote(self):
        """True if the circular buffer wrapped (oldest samples lost)."""
        return self.total_samples > self.depth
