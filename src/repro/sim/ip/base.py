"""Common interface for blackbox IP behavioral models."""

from __future__ import annotations


class IPModel:
    """Base class for blackbox IP models bound by the simulator.

    Subclasses declare their port lists and implement:

    * :meth:`outputs` — the combinational view: current output values as a
      function of input values and internal (registered) state. Called
      repeatedly during the settle loop; must be side-effect free.
    * :meth:`clock_edge` — state update on a clock edge, given pre-edge
      input values and the set of clock ports that fired.
    """

    #: Ports the model reads (excluding clocks).
    INPUT_PORTS = ()
    #: Ports the model drives.
    OUTPUT_PORTS = ()
    #: Ports that are clocks; edges on connected signals call clock_edge.
    CLOCK_PORTS = ()

    def __init__(self, params=None):
        self.params = dict(params or {})

    def param(self, name, default=None):
        """Parameter lookup with a default."""
        return self.params.get(name, default)

    def outputs(self, inputs):
        """Return {output port: value} for the current inputs/state."""
        raise NotImplementedError

    def clock_edge(self, inputs, fired):
        """Advance internal state; *fired* is the set of clock ports."""
        raise NotImplementedError
