"""Behavioral models of Intel's ``scfifo`` and ``dcfifo`` queue IPs.

Both implement *normal* (non-show-ahead) read mode: asserting ``rdreq``
pops an entry on the clock edge and the popped value appears on ``q``
after the edge. ``empty``/``full``/``usedw`` are combinational views of
the occupancy.

Parameters use the Intel LPM names the testbed designs pass:
``LPM_WIDTH`` (data width, default 32) and ``LPM_NUMWORDS`` (depth,
default 16).
"""

from __future__ import annotations

from collections import deque

from .base import IPModel


class _FifoCore:
    """Shared bounded-queue behavior."""

    def __init__(self, width, depth):
        self.width = width
        self.depth = depth
        self.entries = deque()
        self.q = 0
        #: Count of write requests dropped because the FIFO was full.
        self.dropped_writes = 0

    @property
    def used(self):
        return len(self.entries)

    @property
    def empty(self):
        return int(not self.entries)

    @property
    def full(self):
        return int(len(self.entries) >= self.depth)

    def push(self, data):
        if self.full:
            self.dropped_writes += 1
            return
        self.entries.append(data & ((1 << self.width) - 1))

    def pop(self):
        if self.entries:
            self.q = self.entries.popleft()

    # -- fault injection (repro.faults) ---------------------------------

    def inject_drop(self, position=0):
        """Silently lose one queued entry (flaky-IP fault model).

        Returns the dropped value, or None when the queue was empty.
        """
        if not self.entries:
            return None
        position %= len(self.entries)
        self.entries.rotate(-position)
        value = self.entries.popleft()
        self.entries.rotate(position)
        return value

    def inject_duplicate(self, position=0):
        """Duplicate one queued entry in place (flaky-IP fault model).

        Returns the duplicated value, or None when the queue was empty
        or the duplicate would not fit.
        """
        if not self.entries or self.full:
            return None
        position %= len(self.entries)
        self.entries.rotate(-position)
        value = self.entries[0]
        self.entries.appendleft(value)
        self.entries.rotate(position)
        return value


class SingleClockFifo(IPModel):
    """Single-clock FIFO (Intel scfifo), normal read mode."""

    INPUT_PORTS = ("data", "wrreq", "rdreq", "sclr")
    OUTPUT_PORTS = ("q", "empty", "full", "usedw")
    CLOCK_PORTS = ("clock",)

    def __init__(self, params=None):
        super().__init__(params)
        self.core = _FifoCore(
            int(self.param("LPM_WIDTH", 32)), int(self.param("LPM_NUMWORDS", 16))
        )

    def outputs(self, inputs):
        core = self.core
        return {
            "q": core.q,
            "empty": core.empty,
            "full": core.full,
            "usedw": core.used,
        }

    def clock_edge(self, inputs, fired):
        core = self.core
        if inputs.get("sclr", 0):
            core.entries.clear()
            core.q = 0
            return
        if inputs.get("rdreq", 0):
            core.pop()
        if inputs.get("wrreq", 0):
            core.push(inputs.get("data", 0))


class DualClockFifo(IPModel):
    """Dual-clock FIFO (Intel dcfifo), normal read mode.

    The model is functionally correct but does not model synchronizer
    latency between the clock domains (occupancy is visible immediately),
    which is conservative for the functional bugs the testbed reproduces.
    """

    INPUT_PORTS = ("data", "wrreq", "rdreq")
    OUTPUT_PORTS = ("q", "rdempty", "wrfull", "wrusedw", "rdusedw")
    CLOCK_PORTS = ("wrclk", "rdclk")

    def __init__(self, params=None):
        super().__init__(params)
        self.core = _FifoCore(
            int(self.param("LPM_WIDTH", 32)), int(self.param("LPM_NUMWORDS", 16))
        )

    def outputs(self, inputs):
        core = self.core
        return {
            "q": core.q,
            "rdempty": core.empty,
            "wrfull": core.full,
            "wrusedw": core.used,
            "rdusedw": core.used,
        }

    def clock_edge(self, inputs, fired):
        core = self.core
        if "rdclk" in fired and inputs.get("rdreq", 0):
            core.pop()
        if "wrclk" in fired and inputs.get("wrreq", 0):
            core.push(inputs.get("data", 0))
