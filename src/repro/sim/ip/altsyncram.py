"""Behavioral model of Intel's ``altsyncram`` block RAM IP.

Dual-port synchronous RAM with registered read outputs. Parameters follow
the Intel megafunction names used by the testbed designs:

* ``WIDTH_A`` / ``WIDTH_B`` — data width per port (default 32);
* ``NUMWORDS_A`` / ``NUMWORDS_B`` — memory depth (default 256).

Port A supports read and write; port B likewise. Reads are synchronous:
``q_a``/``q_b`` update on the clock edge from the address presented before
the edge (read-before-write on collisions).
"""

from __future__ import annotations

from .base import IPModel


class AltSyncRam(IPModel):
    """Dual-port synchronous block RAM (Intel altsyncram)."""

    INPUT_PORTS = (
        "address_a", "data_a", "wren_a",
        "address_b", "data_b", "wren_b",
    )
    OUTPUT_PORTS = ("q_a", "q_b")
    CLOCK_PORTS = ("clock0", "clock1")

    def __init__(self, params=None):
        super().__init__(params)
        self.width = int(self.param("WIDTH_A", 32))
        self.depth = int(self.param("NUMWORDS_A", 256))
        self.mem = [0] * self.depth
        self._q_a = 0
        self._q_b = 0

    def outputs(self, inputs):
        return {"q_a": self._q_a, "q_b": self._q_b}

    def _read(self, address):
        if 0 <= address < self.depth:
            return self.mem[address]
        if self.depth & (self.depth - 1) == 0:
            return self.mem[address & (self.depth - 1)]
        return 0

    def _write(self, address, data):
        data &= (1 << self.width) - 1
        if 0 <= address < self.depth:
            self.mem[address] = data
        elif self.depth & (self.depth - 1) == 0:
            self.mem[address & (self.depth - 1)] = data

    # -- fault injection (repro.faults) -------------------------------------

    def inject_bitflip(self, address, bit):
        """SEU fault model: flip one stored bit. Returns the new word."""
        address %= self.depth
        self.mem[address] ^= 1 << (bit % self.width)
        return self.mem[address]

    def clock_edge(self, inputs, fired):
        address_a = inputs.get("address_a", 0)
        address_b = inputs.get("address_b", 0)
        self._q_a = self._read(address_a)
        self._q_b = self._read(address_b)
        if inputs.get("wren_a", 0):
            self._write(address_a, inputs.get("data_a", 0))
        if inputs.get("wren_b", 0):
            self._write(address_b, inputs.get("data_b", 0))
