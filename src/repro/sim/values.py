"""Two-state value semantics for the simulator and the analyses.

Implements simplified-but-consistent Verilog width rules:

* every signal is an unsigned integer masked to its declared width
  (two-state, like Verilator — which the paper's testbed targets);
* arithmetic/bitwise operators evaluate at the *context width* (the max of
  both operands' self-determined widths and the assignment target), so
  idioms like ``if (a - 1 > 0)`` wrap the way real hardware does;
* size casts (``42'(e)``), concatenations and part selects are
  self-determined boundaries, which is exactly what makes the paper's bit
  truncation bug (§3.2.2) reproduce: ``42'(right) >> 6`` loses bits
  [47:42] while the fixed ``42'(right >> 6)`` keeps them.
"""

from __future__ import annotations

from ..hdl import ast_nodes as ast
from ..hdl.transform import NotConstantError, const_eval


class EvaluationError(ValueError):
    """Raised when an expression cannot be evaluated against the design."""


def mask(width):
    """Bit mask for *width* bits."""
    if width < 0:
        raise EvaluationError("negative width %d (reversed part select?)" % width)
    return (1 << width) - 1


class SymbolTable:
    """Declared widths/array depths for every signal of a flat module."""

    def __init__(self, module):
        self.widths = {}
        self.depths = {}
        self.signed = {}
        self.declarations = {}
        for decl in module.declarations():
            self.widths[decl.name] = decl.bit_width
            self.depths[decl.name] = decl.array_depth if decl.array else 0
            self.signed[decl.name] = decl.signed
            self.declarations[decl.name] = decl

    def width_of(self, name):
        """Declared element width of *name* in bits."""
        try:
            return self.widths[name]
        except KeyError:
            raise EvaluationError("undeclared signal %r" % name)

    def is_array(self, name):
        """True if *name* is a memory (array) declaration."""
        return self.depths.get(name, 0) > 0

    def depth_of(self, name):
        """Array depth of *name* (0 for scalars)."""
        return self.depths.get(name, 0)

    def initial_state(self):
        """Zero-initialized state mapping for all declared signals."""
        state = {}
        for name, width in self.widths.items():
            depth = self.depths[name]
            if depth:
                state[name] = [0] * depth
            else:
                state[name] = 0
        return state


def self_width(expr, symbols):
    """Self-determined width of *expr* in bits (Verilog-style, simplified)."""
    if isinstance(expr, ast.Number):
        return expr.width if expr.width is not None else 32
    if isinstance(expr, ast.Identifier):
        return symbols.width_of(expr.name)
    if isinstance(expr, ast.Index):
        if isinstance(expr.var, ast.Identifier) and symbols.is_array(expr.var.name):
            return symbols.width_of(expr.var.name)
        return 1
    if isinstance(expr, ast.PartSelect):
        try:
            return const_eval(expr.msb) - const_eval(expr.lsb) + 1
        except NotConstantError:
            raise EvaluationError("part select bounds must be constant")
    if isinstance(expr, ast.IndexedPartSelect):
        try:
            return const_eval(expr.width)
        except NotConstantError:
            raise EvaluationError("indexed part select width must be constant")
    if isinstance(expr, ast.Concat):
        return sum(self_width(p, symbols) for p in expr.parts)
    if isinstance(expr, ast.Repeat):
        try:
            count = const_eval(expr.count)
        except NotConstantError:
            raise EvaluationError("replication count must be constant")
        return count * self_width(expr.expr, symbols)
    if isinstance(expr, ast.UnaryOp):
        if expr.op in ("~", "-", "+"):
            return self_width(expr.operand, symbols)
        return 1
    if isinstance(expr, ast.BinaryOp):
        op = expr.op
        if op in ("==", "!=", "===", "!==", "<", "<=", ">", ">=", "&&", "||"):
            return 1
        if op in ("<<", ">>", "<<<", ">>>"):
            return self_width(expr.left, symbols)
        return max(self_width(expr.left, symbols), self_width(expr.right, symbols))
    if isinstance(expr, ast.Ternary):
        return max(self_width(expr.iftrue, symbols), self_width(expr.iffalse, symbols))
    if isinstance(expr, ast.SizeCast):
        return expr.width
    raise EvaluationError("cannot size expression %r" % (expr,))


def read_array(values, index, depth):
    """Array read honouring the paper's overflow semantics (§3.2.1).

    Power-of-two depths truncate the index (wrap); other depths return 0
    for out-of-range reads.
    """
    if 0 <= index < depth:
        return values[index]
    if depth & (depth - 1) == 0:
        return values[index & (depth - 1)]
    return 0


def write_array(values, index, depth, value):
    """Array write honouring the paper's overflow semantics (§3.2.1).

    Returns True if the write landed, False if it was dropped (overflow on
    a non-power-of-two buffer).
    """
    if 0 <= index < depth:
        values[index] = value
        return True
    if depth & (depth - 1) == 0:
        values[index & (depth - 1)] = value
        return True
    return False


class Evaluator:
    """Evaluates expressions against a state mapping.

    ``state`` maps signal name to int (scalars) or list of ints (memories).
    The evaluator is shared by the simulator's combinational settle loop and
    sequential blocks (which pass an overlay state for blocking assigns).
    """

    def __init__(self, symbols):
        self.symbols = symbols

    def eval(self, expr, state, ctx_width=0):
        """Evaluate *expr*; ``ctx_width`` is the assignment-context width."""
        symbols = self.symbols
        if isinstance(expr, ast.Number):
            value = expr.value
            if expr.width is not None:
                value &= mask(expr.width)
            return value
        if isinstance(expr, ast.Identifier):
            try:
                value = state[expr.name]
            except KeyError:
                raise EvaluationError("undeclared signal %r" % expr.name)
            if isinstance(value, list):
                raise EvaluationError(
                    "memory %r used without an index" % expr.name
                )
            return value
        if isinstance(expr, ast.Index):
            index = self.eval(expr.index, state)
            if isinstance(expr.var, ast.Identifier) and symbols.is_array(
                expr.var.name
            ):
                values = state[expr.var.name]
                return read_array(values, index, symbols.depth_of(expr.var.name))
            value = self.eval(expr.var, state)
            return (value >> index) & 1
        if isinstance(expr, ast.PartSelect):
            value = self.eval(expr.var, state)
            msb = const_eval(expr.msb)
            lsb = const_eval(expr.lsb)
            return (value >> lsb) & mask(msb - lsb + 1)
        if isinstance(expr, ast.IndexedPartSelect):
            value = self.eval(expr.var, state)
            base = self.eval(expr.base, state)
            width = const_eval(expr.width)
            lsb = base if expr.ascending else base - width + 1
            if lsb < 0:
                return 0
            return (value >> lsb) & mask(width)
        if isinstance(expr, ast.Concat):
            result = 0
            for part in expr.parts:
                width = self_width(part, symbols)
                result = (result << width) | (self.eval(part, state) & mask(width))
            return result
        if isinstance(expr, ast.Repeat):
            count = const_eval(expr.count)
            width = self_width(expr.expr, symbols)
            value = self.eval(expr.expr, state) & mask(width)
            result = 0
            for _ in range(count):
                result = (result << width) | value
            return result
        if isinstance(expr, ast.UnaryOp):
            return self._eval_unary(expr, state, ctx_width)
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr, state, ctx_width)
        if isinstance(expr, ast.Ternary):
            cond = self.eval(expr.cond, state)
            branch = expr.iftrue if cond else expr.iffalse
            width = max(self_width(expr, symbols), ctx_width)
            return self.eval(branch, state, width) & mask(width)
        if isinstance(expr, ast.SizeCast):
            return self.eval(expr.expr, state) & mask(expr.width)
        raise EvaluationError("cannot evaluate %r" % (expr,))

    def _eval_unary(self, expr, state, ctx_width):
        op = expr.op
        if op in ("~", "-"):
            width = max(self_width(expr, self.symbols), ctx_width)
            value = self.eval(expr.operand, state, width)
            if op == "~":
                return ~value & mask(width)
            return -value & mask(width)
        value = self.eval(expr.operand, state)
        width = self_width(expr.operand, self.symbols)
        if op == "!":
            return int(value == 0)
        if op == "&":
            return int(value == mask(width))
        if op == "~&":
            return int(value != mask(width))
        if op == "|":
            return int(value != 0)
        if op == "~|":
            return int(value == 0)
        if op in ("^", "~^"):
            parity = bin(value).count("1") & 1
            return parity if op == "^" else 1 - parity
        raise EvaluationError("unsupported unary operator %s" % op)

    def _eval_binary(self, expr, state, ctx_width):
        op = expr.op
        symbols = self.symbols
        if op in ("&&", "||"):
            left = self.eval(expr.left, state)
            if op == "&&":
                return int(bool(left) and bool(self.eval(expr.right, state)))
            return int(bool(left) or bool(self.eval(expr.right, state)))
        if op in ("==", "!=", "===", "!==", "<", "<=", ">", ">="):
            width = max(
                self_width(expr.left, symbols), self_width(expr.right, symbols)
            )
            left = self.eval(expr.left, state, width) & mask(width)
            right = self.eval(expr.right, state, width) & mask(width)
            table = {
                "==": left == right,
                "===": left == right,
                "!=": left != right,
                "!==": left != right,
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
            }
            return int(table[op])
        if op in ("<<", ">>", "<<<", ">>>"):
            width = max(self_width(expr.left, symbols), ctx_width)
            left = self.eval(expr.left, state, width) & mask(width)
            shift = self.eval(expr.right, state)
            if op in ("<<", "<<<"):
                return (left << shift) & mask(width)
            return left >> shift
        width = max(self_width(expr, symbols), ctx_width)
        left = self.eval(expr.left, state, width)
        right = self.eval(expr.right, state, width)
        if op == "+":
            return (left + right) & mask(width)
        if op == "-":
            return (left - right) & mask(width)
        if op == "*":
            return (left * right) & mask(width)
        if op == "/":
            return (left // right) & mask(width) if right else 0
        if op == "%":
            return (left % right) & mask(width) if right else 0
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        raise EvaluationError("unsupported binary operator %s" % op)
