"""Back-compat shim: the VCD writer moved to :mod:`repro.wave.vcd`.

``repro.sim`` predates the waveform subsystem; existing callers import
:func:`write_vcd`/:func:`dump_vcd` from here (or from ``repro.sim``
directly). The implementations now live in :mod:`repro.wave.vcd` —
with ``$dumpvars`` initial values, reserved-character escaping,
x/unknown support, and a :func:`~repro.wave.vcd.parse_vcd` inverse.

Calling through this shim emits a :class:`DeprecationWarning`; update
imports to ``repro.wave.vcd`` (same signatures, drop-in). The warning
fires at call time, not import time, because ``repro.sim`` itself
still re-exports these names for compatibility.
"""

from __future__ import annotations

import functools
import warnings

from ..wave import vcd as _wave_vcd

__all__ = ["dump_vcd", "parse_vcd", "write_vcd"]


def _deprecated(func):
    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        warnings.warn(
            "repro.sim.vcd.%s is deprecated; import it from "
            "repro.wave.vcd instead (same signature)" % func.__name__,
            DeprecationWarning,
            stacklevel=2,
        )
        return func(*args, **kwargs)

    return wrapper


dump_vcd = _deprecated(_wave_vcd.dump_vcd)
parse_vcd = _deprecated(_wave_vcd.parse_vcd)
write_vcd = _deprecated(_wave_vcd.write_vcd)
