"""Back-compat shim: the VCD writer moved to :mod:`repro.wave.vcd`.

``repro.sim`` predates the waveform subsystem; existing callers import
:func:`write_vcd`/:func:`dump_vcd` from here (or from ``repro.sim``
directly). The implementations now live in :mod:`repro.wave.vcd` —
with ``$dumpvars`` initial values, reserved-character escaping,
x/unknown support, and a :func:`~repro.wave.vcd.parse_vcd` inverse.
"""

from __future__ import annotations

from ..wave.vcd import dump_vcd, parse_vcd, write_vcd

__all__ = ["dump_vcd", "parse_vcd", "write_vcd"]
