"""VCD (value-change-dump) waveform export.

The paper motivates its tools against "inspecting a massive waveform";
this writer produces that baseline artifact from a simulator's trace so
the two debugging experiences can be compared side by side (and so
traces can be opened in GTKWave & co.).

Usage::

    sim = Simulator(design, trace="all")
    ... drive ...
    write_vcd(sim, "trace.vcd")
"""

from __future__ import annotations

import string

_ID_CHARS = string.ascii_letters + string.digits + "!#$%&'()*+,-./:;<=>?@[]^_`{|}~"


def _identifiers():
    """Yield unique short VCD identifier codes."""
    for char in _ID_CHARS:
        yield char
    for first in _ID_CHARS:
        for second in _ID_CHARS:
            yield first + second


def _format_value(value, width):
    if width == 1:
        return None, str(value & 1)
    return "b", bin(value)[2:]


def dump_vcd(waveform, widths, timescale="1ns", comment=""):
    """Render a waveform dict ({signal: [values by cycle]}) as VCD text."""
    lines = ["$date", "  repro reproduction run", "$end"]
    if comment:
        lines += ["$comment", "  " + comment, "$end"]
    lines += ["$timescale %s $end" % timescale, "$scope module top $end"]
    codes = {}
    id_gen = _identifiers()
    for name in sorted(waveform):
        code = next(id_gen)
        codes[name] = code
        lines.append(
            "$var wire %d %s %s $end" % (widths.get(name, 1), code, name)
        )
    lines += ["$upscope $end", "$enddefinitions $end"]
    cycles = max((len(v) for v in waveform.values()), default=0)
    previous = {}
    for cycle in range(cycles):
        changes = []
        for name, values in waveform.items():
            if cycle >= len(values):
                continue
            value = values[cycle]
            if previous.get(name) == value:
                continue
            previous[name] = value
            prefix, text = _format_value(value, widths.get(name, 1))
            if prefix:
                changes.append("%s%s %s" % (prefix, text, codes[name]))
            else:
                changes.append("%s%s" % (text, codes[name]))
        if changes or cycle == 0:
            lines.append("#%d" % cycle)
            lines.extend(changes)
    lines.append("#%d" % cycles)
    return "\n".join(lines) + "\n"


def write_vcd(sim, path, comment=""):
    """Write a simulator's captured trace (``trace=...``) to *path*."""
    if not sim.waveform:
        raise ValueError(
            "simulator has no trace; construct it with trace='all' or a "
            "signal list"
        )
    widths = {name: sim.symbols.width_of(name) for name in sim.waveform}
    text = dump_vcd(sim.waveform, widths, comment=comment)
    with open(path, "w") as handle:
        handle.write(text)
    return path
