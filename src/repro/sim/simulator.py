"""Cycle-accurate two-phase simulator for elaborated designs.

Execution model (matching synthesizable semantics, like Verilator's
two-state scheduler that the paper's testbed uses):

1. **Settle**: continuous assigns, ``always @(*)`` blocks and blackbox IP
   outputs are evaluated repeatedly until the state reaches a fixed point
   (a bounded loop; a true combinational cycle raises
   :class:`CombinationalLoopError`).
2. **Clock edge**: every ``always @(posedge clk)`` block executes against
   the pre-edge state; blocking assigns update a per-block overlay,
   nonblocking assigns are queued and committed together afterwards.
   Blackbox IPs clock their internal state with pre-edge inputs.
3. Settle again (and run ``negedge`` blocks, if any, as a second half).

``$display`` statements execute during sequential evaluation and append
:class:`DisplayEvent` records — the hook SignalCat builds on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .. import obs
from ..hdl import ast_nodes as ast
from ..hdl.elaborate import Design
from ..hdl.transform import const_eval
from .values import Evaluator, SymbolTable, mask, read_array, write_array


class SimulatorError(ValueError):
    """Raised for designs the simulator cannot execute."""


class CombinationalLoopError(SimulatorError):
    """Raised when combinational logic does not reach a fixed point."""


@dataclass
class DisplayEvent:
    """One executed ``$display``: cycle number, formatted text, raw values."""

    cycle: int
    text: str
    values: list = field(default_factory=list)
    lineno: int = 0
    label: str = ""
    format: str = ""

    def __str__(self):
        return "[%6d] %s" % (self.cycle, self.text)


_FORMAT_RE = re.compile(r"%(-?\d*)([dhxbcst%])", re.IGNORECASE)


def _pad(text, width_spec):
    """Apply a ``%5d``-style width: right-justify, ``-`` left, ``0`` zero."""
    if not width_spec:
        return text
    width = int(width_spec)
    if width < 0:
        return text.ljust(-width)
    if width_spec[0] == "0":
        return text.rjust(width, "0")
    return text.rjust(width)


def verilog_format(fmt, values):
    """Format a ``$display`` string with evaluated argument values."""
    values = list(values)

    def sub(match):
        spec = match.group(2).lower()
        if spec == "%":
            return "%"
        if spec == "t":
            spec = "d"
        if not values:
            return match.group(0)
        value = values.pop(0)
        if spec == "d":
            return _pad(str(value), match.group(1))
        if spec in ("h", "x"):
            return _pad("%x" % value, match.group(1))
        if spec == "b":
            return _pad(bin(value)[2:], match.group(1))
        if spec == "c":
            return chr(value & 0xFF)
        if spec == "s":
            return _pad(str(value), match.group(1))
        return match.group(0)

    return _FORMAT_RE.sub(sub, fmt)


class _Overlay(dict):
    """Blocking-assignment overlay over the committed state."""

    def __init__(self, base):
        super().__init__()
        self._base = base

    def __missing__(self, key):
        return self._base[key]

    def __contains__(self, key):
        return dict.__contains__(self, key) or key in self._base

    def array(self, name):
        """Copy-on-write access to a memory for blocking writes."""
        if not dict.__contains__(self, name):
            self[name] = list(self._base[name])
        return self[name]


class Simulator:
    """Simulates one elaborated :class:`~repro.hdl.elaborate.Design`.

    Parameters
    ----------
    design:
        An elaborated Design (or a flat Module).
    ips:
        Optional mapping of blackbox module name to a model factory
        ``factory(params: dict) -> model``. Defaults to the registry in
        :mod:`repro.sim.ip`.
    trace:
        Optional iterable of signal names to record every cycle (or the
        string ``"all"``); see :attr:`waveform`.
    """

    def __init__(self, design, ips=None, max_settle=100, trace=None,
                 compile_expressions=False):
        if isinstance(design, Design):
            module = design.top
        elif isinstance(design, ast.Module):
            module = design
        else:
            raise TypeError("design must be a Design or Module")
        self.module = module
        self.symbols = SymbolTable(module)
        self.state = self.symbols.initial_state()
        if compile_expressions:
            from .compiler import CompiledEvaluator

            self.evaluator = CompiledEvaluator(self.symbols)
        else:
            self.evaluator = Evaluator(self.symbols)
        self.cycle = 0
        self.finished = False
        self.display_events = []
        self.on_display = None
        #: Callables invoked with ``self`` at the start of every cycle,
        #: before the pre-edge settle. The fault-injection engine
        #: (:mod:`repro.faults`) and the harness watchdog attach here.
        self.cycle_hooks = []
        #: Nets forced to a fixed value (stuck-at faults): name -> value.
        #: Reapplied after every settle pass so combinational logic cannot
        #: overwrite the forced value; managed by :mod:`repro.faults`.
        self.forced = {}
        self._max_settle = max_settle
        self._comb_items = []
        self._seq_blocks = []
        self._instances = []
        self._classify_items(module)
        self._bind_ips(ips)
        if trace == "all":
            trace = [
                name
                for name, depth in self.symbols.depths.items()
                if depth == 0
            ]
        self._trace_signals = list(trace) if trace else []
        self.waveform = {name: [] for name in self._trace_signals}

    # -- construction -------------------------------------------------------

    def _classify_items(self, module):
        for item in module.items:
            if isinstance(item, ast.ContinuousAssign):
                self._comb_items.append(item)
            elif isinstance(item, ast.Always):
                if item.is_combinational:
                    self._check_no_display(item.body)
                    self._comb_items.append(item)
                else:
                    self._seq_blocks.append(item)
            elif isinstance(item, ast.Instance):
                self._instances.append(item)
            elif isinstance(item, (ast.Declaration, ast.ParameterDecl)):
                continue
            else:
                raise SimulatorError("unsupported module item %r" % (item,))

    def _check_no_display(self, stmt):
        for node in stmt.walk():
            if isinstance(node, ast.Display):
                raise SimulatorError(
                    "$display inside combinational always blocks is not "
                    "supported; move it into a clocked block"
                )

    def _bind_ips(self, ips):
        from . import ip as ip_registry

        factories = dict(ip_registry.REGISTRY)
        if ips:
            factories.update(ips)
        self._ip_models = {}
        for inst in self._instances:
            if inst.module_name not in factories:
                raise SimulatorError(
                    "no IP model registered for blackbox %r" % inst.module_name
                )
            params = {p.name: const_eval(p.value) for p in inst.params}
            self._ip_models[inst.instance_name] = factories[inst.module_name](params)

    def ip_model(self, instance_name):
        """Return the bound Python model for a blackbox instance."""
        return self._ip_models[instance_name]

    # -- state access -------------------------------------------------------

    def get(self, name):
        """Current value of signal *name* (int, or list for memories)."""
        return self.state[name]

    def set(self, name, value):
        """Drive signal *name* (used by testbenches for top-level inputs)."""
        if name not in self.state:
            raise SimulatorError("undeclared signal %r" % name)
        if isinstance(self.state[name], list):
            raise SimulatorError("cannot set a memory directly")
        self.state[name] = value & mask(self.symbols.width_of(name))

    def __getitem__(self, name):
        return self.get(name)

    def __setitem__(self, name, value):
        self.set(name, value)

    # -- combinational settle -------------------------------------------------

    def settle(self):
        """Evaluate combinational logic and IP outputs to a fixed point.

        Convergence is judged per *pass*, not per write: a pass that
        rewrites a signal several times (the two-process FSM idiom
        ``next = state; case (state) ... next = X;``) but ends where it
        started has converged.
        """
        before = {}
        array_writes = False
        for iteration in range(1, self._max_settle + 1):
            before = {
                name: value
                for name, value in self.state.items()
                if not isinstance(value, list)
            }
            array_writes = False
            for item in self._comb_items:
                if isinstance(item, ast.ContinuousAssign):
                    value = self.evaluator.eval(
                        item.rhs, self.state, self._lhs_width(item.lhs)
                    )
                    array_writes |= self._comb_write(item.lhs, value)
                else:
                    array_writes |= self._exec_comb(item.body)
            for inst in self._instances:
                for conn, value in self._ip_output_values(inst):
                    array_writes |= self._comb_write(conn, value)
            if self.forced:
                self._apply_forced()
            changed = array_writes or any(
                self.state[name] != value for name, value in before.items()
            )
            if not changed:
                if obs.enabled:
                    obs.histogram("sim.settle_iterations").observe(iteration)
                    if self._comb_items:
                        obs.counter("sim.comb_evals").inc(
                            iteration * len(self._comb_items)
                        )
                    if self._instances:
                        obs.counter("sim.ip_calls").inc(
                            iteration * len(self._instances)
                        )
                return
        unstable = sorted(
            name
            for name, value in before.items()
            if self.state[name] != value
        )
        if array_writes:
            unstable.append("<memory writes>")
        raise CombinationalLoopError(
            "combinational logic did not settle after %d passes; "
            "still changing: %s"
            % (self._max_settle, ", ".join(unstable) or "<none observed>")
        )

    def _comb_write(self, lhs, value):
        """Combinational write; returns True only for memory writes."""
        is_array = (
            isinstance(lhs, ast.Index)
            and isinstance(lhs.var, ast.Identifier)
            and self.symbols.is_array(lhs.var.name)
        )
        changed = self._write(lhs, value, self.state)
        return changed and is_array

    def _ip_output_values(self, inst):
        model = self._ip_models[inst.instance_name]
        inputs = self._ip_inputs(inst, model)
        outputs = model.outputs(inputs)
        for conn in inst.ports:
            if conn.port in outputs and conn.expr is not None:
                yield conn.expr, outputs[conn.port]

    def _exec_comb(self, stmt):
        """Execute a combinational statement; returns True on array writes."""
        changed = False
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                changed |= self._exec_comb(inner)
            return changed
        if isinstance(stmt, (ast.BlockingAssign, ast.NonblockingAssign)):
            value = self.evaluator.eval(
                stmt.rhs, self.state, self._lhs_width(stmt.lhs)
            )
            return self._comb_write(stmt.lhs, value)
        if isinstance(stmt, ast.If):
            if self.evaluator.eval(stmt.cond, self.state):
                return self._exec_comb(stmt.then_stmt)
            if stmt.else_stmt is not None:
                return self._exec_comb(stmt.else_stmt)
            return False
        if isinstance(stmt, ast.Case):
            arm = self._select_case_arm(stmt, self.state)
            if arm is not None:
                return self._exec_comb(arm)
            return False
        if isinstance(stmt, ast.Finish):
            self.finished = True
            return False
        raise SimulatorError("unsupported combinational statement %r" % (stmt,))

    def _ip_inputs(self, inst, model):
        inputs = {}
        for conn in inst.ports:
            if conn.port in model.OUTPUT_PORTS or conn.expr is None:
                continue
            inputs[conn.port] = self.evaluator.eval(conn.expr, self.state)
        return inputs

    # -- clocked execution -----------------------------------------------------

    def step(self, cycles=1, clock="clk"):
        """Advance *cycles* full cycles of *clock*."""
        for _ in range(cycles):
            if self.finished:
                return
            self._one_cycle(clock)

    def _apply_forced(self):
        """Reassert stuck-at forces over whatever the design computed."""
        for name, value in self.forced.items():
            self.state[name] = value & mask(self.symbols.width_of(name))

    def _one_cycle(self, clock):
        if self.cycle_hooks:
            for hook in list(self.cycle_hooks):
                hook(self)
        if self.forced:
            self._apply_forced()
        self.settle()
        self._record_trace()
        self._edge(clock, ast.Edge.POSEDGE)
        self.settle()
        negedge_blocks = [
            block
            for block in self._seq_blocks
            if self._triggered(block, clock, ast.Edge.NEGEDGE)
        ]
        if negedge_blocks:
            self._edge(clock, ast.Edge.NEGEDGE)
            self.settle()
        self.cycle += 1
        if obs.enabled:
            obs.counter("sim.cycles").inc()

    def _triggered(self, block, clock, edge):
        return any(
            item.edge is edge and item.signal == clock for item in block.sens
        )

    def _edge(self, clock, edge):
        pending = []
        for block in self._seq_blocks:
            if not self._triggered(block, clock, edge):
                continue
            overlay = _Overlay(self.state)
            self._exec_seq(block.body, overlay, pending)
        for inst in self._instances:
            model = self._ip_models[inst.instance_name]
            fired = self._fired_clock_ports(inst, model, clock)
            if fired:
                model.clock_edge(self._ip_inputs(inst, model), fired)
                if obs.enabled:
                    obs.counter("sim.ip_calls").inc()
        self._commit(pending)

    def _fired_clock_ports(self, inst, model, clock):
        fired = set()
        for conn in inst.ports:
            if conn.port not in model.CLOCK_PORTS or conn.expr is None:
                continue
            if isinstance(conn.expr, ast.Identifier) and conn.expr.name == clock:
                fired.add(conn.port)
        return fired

    def _exec_seq(self, stmt, overlay, pending):
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self._exec_seq(inner, overlay, pending)
            return
        if isinstance(stmt, ast.BlockingAssign):
            value = self.evaluator.eval(stmt.rhs, overlay, self._lhs_width(stmt.lhs))
            self._write(stmt.lhs, value, overlay, blocking=True)
            return
        if isinstance(stmt, ast.NonblockingAssign):
            value = self.evaluator.eval(stmt.rhs, overlay, self._lhs_width(stmt.lhs))
            pending.append((stmt.lhs, value, overlay))
            return
        if isinstance(stmt, ast.If):
            if self.evaluator.eval(stmt.cond, overlay):
                self._exec_seq(stmt.then_stmt, overlay, pending)
            elif stmt.else_stmt is not None:
                self._exec_seq(stmt.else_stmt, overlay, pending)
            return
        if isinstance(stmt, ast.Case):
            arm = self._select_case_arm(stmt, overlay)
            if arm is not None:
                self._exec_seq(arm, overlay, pending)
            return
        if isinstance(stmt, ast.Display):
            values = [self.evaluator.eval(arg, overlay) for arg in stmt.args]
            event = DisplayEvent(
                cycle=self.cycle,
                text=verilog_format(stmt.format, values),
                values=values,
                lineno=stmt.lineno,
                label=stmt.label,
                format=stmt.format,
            )
            self.display_events.append(event)
            if obs.enabled:
                obs.counter("sim.display_events").inc()
            if self.on_display is not None:
                self.on_display(event)
            return
        if isinstance(stmt, ast.Finish):
            self.finished = True
            return
        raise SimulatorError("unsupported sequential statement %r" % (stmt,))

    def _select_case_arm(self, stmt, state):
        subject = self.evaluator.eval(stmt.subject, state)
        default = None
        for item in stmt.items:
            if not item.labels:
                default = item.stmt
                continue
            for label in item.labels:
                if self.evaluator.eval(label, state) == subject:
                    return item.stmt
        return default

    def _commit(self, pending):
        for lhs, value, overlay in pending:
            self._write_pending(lhs, value, overlay)

    def _write_pending(self, lhs, value, overlay):
        # Index expressions in the lvalue were captured against the overlay
        # (pre-commit) state, per nonblocking semantics.
        self._write(lhs, value, self.state, index_state=overlay)

    # -- lvalue handling -----------------------------------------------------------

    def _lhs_width(self, lhs):
        symbols = self.symbols
        if isinstance(lhs, ast.Identifier):
            return symbols.width_of(lhs.name)
        if isinstance(lhs, ast.Index):
            base = ast.lvalue_base_name(lhs)
            if symbols.is_array(base) and isinstance(lhs.var, ast.Identifier):
                return symbols.width_of(base)
            return 1
        if isinstance(lhs, ast.PartSelect):
            return const_eval(lhs.msb) - const_eval(lhs.lsb) + 1
        if isinstance(lhs, ast.IndexedPartSelect):
            return const_eval(lhs.width)
        if isinstance(lhs, ast.Concat):
            return sum(self._lhs_width(p) for p in lhs.parts)
        raise SimulatorError("unsupported lvalue %r" % (lhs,))

    def _write(self, lhs, value, state, blocking=False, index_state=None):
        """Write *value* into *state* at lvalue *lhs*; returns True on change.

        ``index_state`` (defaults to *state*) is where lvalue index
        expressions are evaluated — for nonblocking commits these were
        captured pre-commit.
        """
        if index_state is None:
            index_state = state
        symbols = self.symbols
        if isinstance(lhs, ast.Identifier):
            name = lhs.name
            if symbols.is_array(name):
                raise SimulatorError("cannot assign whole memory %r" % name)
            new = value & mask(symbols.width_of(name))
            old = state[name] if not isinstance(state, _Overlay) else state[name]
            if blocking or isinstance(state, _Overlay):
                state[name] = new
                return old != new
            if state[name] != new:
                state[name] = new
                return True
            return False
        if isinstance(lhs, ast.Index):
            base = ast.lvalue_base_name(lhs)
            index = self.evaluator.eval(lhs.index, index_state)
            if symbols.is_array(base) and isinstance(lhs.var, ast.Identifier):
                depth = symbols.depth_of(base)
                if isinstance(state, _Overlay):
                    values = state.array(base)
                else:
                    values = state[base]
                new = value & mask(symbols.width_of(base))
                old = read_array(values, index, depth)
                landed = write_array(values, index, depth, new)
                return landed and old != new
            old = state[base]
            new = (old & ~(1 << index)) | ((value & 1) << index)
            state[base] = new & mask(symbols.width_of(base))
            return old != state[base]
        if isinstance(lhs, ast.PartSelect):
            base = ast.lvalue_base_name(lhs)
            msb = const_eval(lhs.msb)
            lsb = const_eval(lhs.lsb)
            width = msb - lsb + 1
            old = state[base]
            new = (old & ~(mask(width) << lsb)) | ((value & mask(width)) << lsb)
            new &= mask(symbols.width_of(base))
            state[base] = new
            return old != new
        if isinstance(lhs, ast.IndexedPartSelect):
            base = ast.lvalue_base_name(lhs)
            start = self.evaluator.eval(lhs.base, index_state)
            width = const_eval(lhs.width)
            lsb = start if lhs.ascending else start - width + 1
            if lsb < 0:
                return False
            old = state[base]
            new = (old & ~(mask(width) << lsb)) | ((value & mask(width)) << lsb)
            new &= mask(symbols.width_of(base))
            state[base] = new
            return old != new
        if isinstance(lhs, ast.Concat):
            changed = False
            shift = sum(self._lhs_width(p) for p in lhs.parts)
            for part in lhs.parts:
                width = self._lhs_width(part)
                shift -= width
                changed |= self._write(
                    part,
                    (value >> shift) & mask(width),
                    state,
                    blocking=blocking,
                    index_state=index_state,
                )
            return changed
        raise SimulatorError("unsupported lvalue %r" % (lhs,))

    # -- tracing -------------------------------------------------------------------

    def _record_trace(self):
        for name in self._trace_signals:
            self.waveform[name].append(self.state[name])

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self):
        """Capture the complete simulation state (§7's checkpointing).

        Returns an opaque snapshot: design registers/memories, cycle
        count, display log, and every blackbox IP's internal state.
        Restore with :meth:`restore` to replay from that point —
        StateMover/DESSERT-style debugging without re-running the prefix.
        """
        import copy
        import pickle

        ip_state = {
            name: copy.deepcopy(model.__dict__)
            for name, model in self._ip_models.items()
        }
        return pickle.dumps(
            {
                "state": copy.deepcopy(self.state),
                "cycle": self.cycle,
                "finished": self.finished,
                "displays": copy.deepcopy(self.display_events),
                "ips": ip_state,
                "waveform": copy.deepcopy(self.waveform),
                "forced": dict(self.forced),
            }
        )

    def restore(self, snapshot):
        """Restore a snapshot captured by :meth:`checkpoint`."""
        import pickle

        data = pickle.loads(snapshot)
        self.state = data["state"]
        self.cycle = data["cycle"]
        self.finished = data["finished"]
        self.display_events = data["displays"]
        self.waveform = data["waveform"]
        self.forced = dict(data.get("forced", {}))
        for name, model_state in data["ips"].items():
            self._ip_models[name].__dict__.update(model_state)

    def run(self, max_cycles, clock="clk", until=None):
        """Step until ``$finish``, *until(sim)* is truthy, or *max_cycles*.

        Returns the number of cycles executed.
        """
        start = self.cycle
        while self.cycle - start < max_cycles and not self.finished:
            self.step(clock=clock)
            if until is not None and until(self):
                break
        return self.cycle - start
