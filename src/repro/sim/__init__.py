"""Cycle-accurate simulation of elaborated designs.

Typical usage::

    from repro.hdl import parse, elaborate
    from repro.sim import Simulator

    design = elaborate(parse(text), top="counter")
    sim = Simulator(design)
    sim["enable"] = 1
    sim.step(10)
    assert sim["count"] == 10
"""

from .simulator import (
    CombinationalLoopError,
    DisplayEvent,
    Simulator,
    SimulatorError,
    verilog_format,
)
from .testbench import Testbench
from .values import EvaluationError, Evaluator, SymbolTable, mask
from .vcd import dump_vcd, parse_vcd, write_vcd

__all__ = [
    "Simulator",
    "SimulatorError",
    "CombinationalLoopError",
    "DisplayEvent",
    "verilog_format",
    "Testbench",
    "Evaluator",
    "SymbolTable",
    "EvaluationError",
    "mask",
    "dump_vcd",
    "parse_vcd",
    "write_vcd",
]
