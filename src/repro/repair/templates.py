"""Parameterized repair templates: rtl-repair-style AST edits.

Each template is a pure enumeration over one module's AST: given the
module and a :class:`SiteContext` (which signals and source lines the
diagnostics implicate), it yields every edit it knows how to make at
those sites. Edits are closures over nodes of a *freshly parsed* tree,
so applying edit *i* means: re-parse the pristine source, re-enumerate
(the traversal is deterministic), apply the *i*-th closure, and render
with :func:`repro.hdl.generate_source`. Templates never touch the
original text.

The registry follows rtl-repair's catalogue (replace_literals,
invert_condition, assign_const, add_guard, conditional_overwrite,
blocking<->nonblocking swap, widen-synchronizer) plus the extra edits
the paper's Table 1 bug subclasses call for: part-select shifts
(misindexing), part-select pair swaps (endianness), dropped conjuncts
(circular handshakes), and handshake-source replacement
(producer-consumer backpressure).

Anchoring reuses :mod:`repro.fuzz.mutator`'s site model: every edit
carries a :class:`~repro.fuzz.mutator.MutationAnchor` built by the same
``build_anchor_maps``/``anchor_of`` machinery the fuzzer uses, so a
``file.v:42`` or ``signal`` site means the same thing to a fuzz
mutation and to a repair template.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..fuzz.mutator import (
    MutationAnchor,
    anchor_of,
    build_anchor_maps,
    node_signals,
)
from ..hdl import ast_nodes as ast
from ..hdl import generate_source, parse


@dataclass(frozen=True)
class RepairSite:
    """One diagnostic-implicated location: a signal and/or a line."""

    signal: str = ""
    line: int = 0
    origin: str = ""
    detail: str = ""
    #: Lower ranks are searched first (0 = strongest localization).
    rank: int = 0

    def to_dict(self):
        return {
            "signal": self.signal,
            "line": self.line,
            "origin": self.origin,
            "detail": self.detail,
            "rank": self.rank,
        }


@dataclass
class SiteContext:
    """Site information resolved to one module's local namespace.

    ``signal_ranks``/``line_ranks`` map each implicated local signal
    name / file line to the best (lowest) rank of the sites naming it.
    An edit whose anchor hits nothing scores :attr:`miss_rank`, which
    orders it after every sited edit but keeps it enumerable — the
    budget, not the site list, is the hard bound on the search.
    """

    signal_ranks: dict = field(default_factory=dict)
    line_ranks: dict = field(default_factory=dict)
    miss_rank: int = 1000

    def rank_of(self, anchor):
        """Best site rank this anchor hits (``miss_rank`` when none)."""
        best = self.miss_rank
        for name in anchor.signals:
            rank = self.signal_ranks.get(name)
            if rank is not None and rank < best:
                best = rank
        for line in anchor.lines:
            rank = self.line_ranks.get(line)
            if rank is not None and rank < best:
                best = rank
        return best


@dataclass
class RepairEdit:
    """One enumerable edit: a description plus an in-place apply."""

    description: str
    apply: object
    anchor: MutationAnchor
    #: The most site-relevant signal, for report labelling.
    signal: str = ""


@dataclass
class RepairCandidate:
    """One fully instantiated candidate patch."""

    candidate_id: str
    template: str
    module: str
    description: str
    signal: str
    site_rank: int
    text: str

    def to_dict(self):
        return {
            "candidate": self.candidate_id,
            "template": self.template,
            "module": self.module,
            "description": self.description,
            "signal": self.signal,
            "site_rank": self.site_rank,
        }


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def _always_blocks(module):
    return [item for item in module.items if isinstance(item, ast.Always)]


def _statements(module):
    """Every procedural statement in *module*, pre-order."""
    for always in _always_blocks(module):
        for node in always.body.walk():
            if isinstance(node, ast.Statement):
                yield node


def _assignments(module):
    for stmt in _statements(module):
        if isinstance(stmt, (ast.NonblockingAssign, ast.BlockingAssign)):
            yield stmt


def _sequential_targets(module):
    """Names assigned by nonblocking statements, with their always blocks."""
    targets = {}
    for always in _always_blocks(module):
        for node in always.body.walk():
            if isinstance(node, ast.NonblockingAssign):
                try:
                    for name in ast.lvalue_base_names(node.lhs):
                        targets.setdefault(name, always)
                except TypeError:
                    continue
    return targets


def _clock_names(module):
    """Signals used as edge triggers (never valid repair guards)."""
    names = set()
    for always in _always_blocks(module):
        for item in always.sens:
            if item.signal and item.edge is not ast.Edge.STAR:
                names.add(item.signal)
    return names


def _bit_signals(module):
    """All declared 1-bit scalars (ports + regs/wires), sorted."""
    names = []
    for port in module.ports:
        if port.bit_width == 1:
            names.append(port.name)
    for decl in module.declarations():
        if decl.bit_width == 1 and decl.array is None:
            names.append(decl.name)
    clocks = _clock_names(module)
    return sorted(set(names) - clocks)


def _guard_pool(module):
    """Candidate guard expressions: each 1-bit signal and its negation."""
    guards = []
    for name in _bit_signals(module):
        guards.append((name, lambda n=name: ast.Identifier(n)))
        guards.append(
            ("!" + name,
             lambda n=name: ast.UnaryOp("!", ast.Identifier(n)))
        )
    return guards


def _reset_values(module, target):
    """Constant RHS values assigned to *target* under the reset branch.

    The reset branch is the then-arm of a top-level ``if`` in an edge
    triggered always block — the idiomatic place initial values live.
    """
    values = []
    for always in _always_blocks(module):
        if always.is_combinational:
            continue
        body = always.body
        stmts = body.statements if isinstance(body, ast.Block) else [body]
        for stmt in stmts:
            if not isinstance(stmt, ast.If):
                continue
            for node in stmt.then_stmt.walk():
                if not isinstance(node, ast.NonblockingAssign):
                    continue
                try:
                    names = ast.lvalue_base_names(node.lhs)
                except TypeError:
                    continue
                if target in names and isinstance(node.rhs, ast.Number):
                    values.append(node.rhs)
    return values


def _const_int(expr):
    return expr.value if isinstance(expr, ast.Number) else None


def _iter_expr_slots(module):
    """Yield ``(parent, field, expr)`` for every expression position."""
    from dataclasses import fields as dc_fields

    def visit(node):
        for f in dc_fields(node):
            value = getattr(node, f.name)
            if isinstance(value, ast.Node):
                if isinstance(value, ast.Expression):
                    yield (node, f.name, value)
                yield from visit(value)
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, ast.Node):
                        if isinstance(item, ast.Expression):
                            yield (value, index, item)
                        yield from visit(item)

    for item in module.items:
        yield from visit(item)


def _set_slot(parent, slot, value):
    if isinstance(parent, list):
        parent[slot] = value
    else:
        setattr(parent, slot, value)


def _stmt_slots(module):
    """Every statement position that can be wrapped/replaced:
    ``(parent, slot, stmt)`` where parent is a Block statement list, an
    If (then_stmt/else_stmt), a CaseItem (stmt), or an Always (body).
    """
    slots = []

    def visit_stmt(stmt):
        if isinstance(stmt, ast.Block):
            for index, child in enumerate(stmt.statements):
                slots.append((stmt.statements, index, child))
                visit_stmt(child)
        elif isinstance(stmt, ast.If):
            slots.append((stmt, "then_stmt", stmt.then_stmt))
            visit_stmt(stmt.then_stmt)
            if stmt.else_stmt is not None:
                slots.append((stmt, "else_stmt", stmt.else_stmt))
                visit_stmt(stmt.else_stmt)
        elif isinstance(stmt, ast.Case):
            for item in stmt.items:
                slots.append((item, "stmt", item.stmt))
                visit_stmt(item.stmt)
        elif isinstance(stmt, ast.For):
            visit_stmt(stmt.body)

    for always in _always_blocks(module):
        visit_stmt(always.body)
    return slots


def _lhs_names(stmt):
    try:
        return ast.lvalue_base_names(stmt.lhs)
    except (TypeError, AttributeError):
        return []


# ---------------------------------------------------------------------------
# Templates
# ---------------------------------------------------------------------------


def t_replace_literals(module, ctx, maps):
    """Replace integer literals with nearby values; fix SizeCast widths."""
    edits = []
    seen = set()
    for parent, slot, expr in _iter_expr_slots(module):
        if isinstance(expr, ast.SizeCast):
            # Candidate widths: the declared width of any identifier in
            # the cast operand (cast-before-shift truncation, D5-style)
            # and double the current width.
            widths = []
            for name in sorted(node_signals(expr.expr)):
                decl = module.find_declaration(name)
                if decl is not None and decl.width is not None:
                    widths.append(decl.width.bits())
                for port in module.ports:
                    if port.name == name and port.width is not None:
                        widths.append(port.bit_width)
            widths.append(expr.width * 2)
            anchor = anchor_of(maps, expr)
            for width in sorted(set(widths)):
                if width == expr.width:
                    continue
                key = (id(expr), "cast", width)
                if key in seen:
                    continue
                seen.add(key)
                edits.append(RepairEdit(
                    description="size cast %d'(...) -> %d'(...)"
                    % (expr.width, width),
                    apply=(lambda e=expr, w=width:
                           setattr(e, "width", w)),
                    anchor=anchor,
                    signal=_first_signal(anchor, ctx),
                ))
            continue
        if not isinstance(expr, ast.Number):
            continue
        if isinstance(parent, ast.Width):
            continue  # declaration widths belong to widen_synchronizer
        anchor = anchor_of(maps, expr)
        for value in (expr.value - 1, expr.value + 1):
            if value < 0:
                continue
            edits.append(RepairEdit(
                description="literal %s -> %d" % (expr, value),
                apply=(lambda e=expr, v=value: setattr(e, "value", v)),
                anchor=anchor,
                signal=_first_signal(anchor, ctx),
            ))
    return edits


def t_shift_partselect(module, ctx, maps):
    """Shift a constant part select by its own width (misindexing)."""
    edits = []
    for _parent, _slot, expr in _iter_expr_slots(module):
        if not isinstance(expr, ast.PartSelect):
            continue
        msb, lsb = _const_int(expr.msb), _const_int(expr.lsb)
        if msb is None or lsb is None or msb < lsb:
            continue
        width = msb - lsb + 1
        anchor = anchor_of(maps, expr)
        for delta in (-width, width):
            if lsb + delta < 0:
                continue
            edits.append(RepairEdit(
                description="part select [%d:%d] -> [%d:%d]"
                % (msb, lsb, msb + delta, lsb + delta),
                apply=(lambda e=expr, d=delta: (
                    setattr(e.msb, "value", e.msb.value + d),
                    setattr(e.lsb, "value", e.lsb.value + d),
                )),
                anchor=anchor,
                signal=_first_signal(anchor, ctx),
            ))
    return edits


def t_swap_partselect_pair(module, ctx, maps):
    """Swap the ranges of two part-select writes to the same base.

    The endianness-mismatch shape (D9): ``resp[7:0] <= a`` in one case
    arm and ``resp[15:8] <= b`` in another — swapping which half each
    write fills flips the byte order.
    """
    writes = {}
    for stmt in _assignments(module):
        lhs = stmt.lhs
        if not isinstance(lhs, ast.PartSelect):
            continue
        if not isinstance(lhs.var, ast.Identifier):
            continue
        msb, lsb = _const_int(lhs.msb), _const_int(lhs.lsb)
        if msb is None or lsb is None:
            continue
        writes.setdefault(lhs.var.name, []).append((stmt, msb, lsb))
    edits = []
    for name in sorted(writes):
        entries = writes[name]
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                stmt_a, msb_a, lsb_a = entries[i]
                stmt_b, msb_b, lsb_b = entries[j]
                if (msb_a, lsb_a) == (msb_b, lsb_b):
                    continue
                anchor = MutationAnchor(
                    lines=(anchor_of(maps, stmt_a).lines
                           | anchor_of(maps, stmt_b).lines),
                    signals=(anchor_of(maps, stmt_a).signals
                             | anchor_of(maps, stmt_b).signals),
                )
                edits.append(RepairEdit(
                    description="swap %s[%d:%d] and %s[%d:%d] writes"
                    % (name, msb_a, lsb_a, name, msb_b, lsb_b),
                    apply=(lambda a=stmt_a, b=stmt_b: (
                        _swap_ranges(a.lhs, b.lhs)
                    )),
                    anchor=anchor,
                    signal=name,
                ))
    return edits


def _swap_ranges(lhs_a, lhs_b):
    lhs_a.msb, lhs_b.msb = lhs_b.msb, lhs_a.msb
    lhs_a.lsb, lhs_b.lsb = lhs_b.lsb, lhs_a.lsb


def t_widen_synchronizer(module, ctx, maps):
    """Widen a register or deepen a buffer (truncation / overflow).

    Variants: +1 bit on a scalar width, +1 / x2 entries on a memory
    array (all arrays of the same depth grow together — parallel flag
    arrays must track the data array), and x2 on an integer instance
    parameter (an IP FIFO's LPM_NUMWORDS).
    """
    edits = []
    port_names = set(module.port_map())
    by_depth = {}
    for decl in module.declarations():
        if decl.array is not None:
            depth = decl.array_depth
            by_depth.setdefault(depth, []).append(decl)
    for decl in module.declarations():
        anchor = MutationAnchor(
            lines=frozenset({decl.lineno}),
            signals=frozenset({decl.name}),
        )
        if decl.array is not None:
            depth = decl.array_depth
            group = by_depth[depth]
            for new_depth in (depth + 1, depth * 2):
                edits.append(RepairEdit(
                    description="deepen %s [%d entries] -> [%d entries]"
                    % (
                        "/".join(d.name for d in group),
                        depth, new_depth,
                    ),
                    apply=(lambda g=tuple(group), n=new_depth:
                           [_set_depth(d, n) for d in g]),
                    anchor=MutationAnchor(
                        lines=frozenset(d.lineno for d in group),
                        signals=frozenset(d.name for d in group),
                    ),
                    signal=decl.name,
                ))
        elif (
            decl.width is not None
            and decl.kind is not ast.NetKind.INTEGER
            and decl.name not in port_names  # widening a port changes the interface
        ):
            bits = decl.width.bits()
            edits.append(RepairEdit(
                description="widen %s [%d bits] -> [%d bits]"
                % (decl.name, bits, bits + 1),
                apply=(lambda d=decl: _set_width(d, d.width.bits() + 1)),
                anchor=anchor,
                signal=decl.name,
            ))
    for item in module.items:
        if not isinstance(item, ast.Instance):
            continue
        for override in item.params:
            value = _const_int(override.value)
            if value is None or value <= 1:
                continue
            edits.append(RepairEdit(
                description="instance %s: %s %d -> %d"
                % (item.instance_name, override.name, value, value * 2),
                apply=(lambda o=override, v=value * 2:
                       setattr(o.value, "value", v)),
                anchor=MutationAnchor(
                    lines=frozenset({item.lineno}),
                    signals=frozenset({item.instance_name}),
                ),
                signal=item.instance_name,
            ))
    return edits


def _set_depth(decl, entries):
    """Rewrite an array bound to hold *entries* elements, keeping order."""
    msb, lsb = decl.array.msb, decl.array.lsb
    if isinstance(msb, ast.Number) and isinstance(lsb, ast.Number):
        if msb.value >= lsb.value:
            msb.value = lsb.value + entries - 1
        else:
            lsb.value = msb.value + entries - 1


def _set_width(decl, bits):
    msb, lsb = decl.width.msb, decl.width.lsb
    if isinstance(msb, ast.Number) and isinstance(lsb, ast.Number):
        if msb.value >= lsb.value:
            msb.value = lsb.value + bits - 1
        else:
            lsb.value = msb.value + bits - 1


def t_assign_const(module, ctx, maps):
    """Replace an assignment's RHS with the constant 0 or 1."""
    edits = []
    targets = list(_assignments(module))
    targets.extend(
        item for item in module.items
        if isinstance(item, ast.ContinuousAssign)
    )
    for stmt in targets:
        anchor = anchor_of(maps, stmt)
        names = _lhs_names(stmt)
        for value in (0, 1):
            if isinstance(stmt.rhs, ast.Number) and stmt.rhs.value == value:
                continue
            edits.append(RepairEdit(
                description="%s <= const %d"
                % ("/".join(names) or "?", value),
                apply=(lambda s=stmt, v=value:
                       setattr(s, "rhs", ast.Number(v))),
                anchor=anchor,
                signal=names[0] if names else "",
            ))
    return edits


def t_invert_condition(module, ctx, maps):
    """Invert (or un-invert) an if/ternary condition."""
    edits = []
    for _parent, _slot, expr in _iter_expr_slots(module):
        conds = []
        if isinstance(expr, ast.Ternary):
            conds.append(("cond", expr.cond))
        if not conds:
            continue
        for slot, cond in conds:
            edits.append(_invert_edit(expr, slot, cond, ctx, maps))
    for stmt in _statements(module):
        if isinstance(stmt, ast.If):
            edits.append(_invert_edit(stmt, "cond", stmt.cond, ctx, maps))
    return [e for e in edits if e is not None]


def _invert_edit(owner, slot, cond, ctx, maps):
    anchor = anchor_of(maps, cond)
    if isinstance(cond, ast.UnaryOp) and cond.op == "!":
        return RepairEdit(
            description="condition !(%s) -> un-negated"
            % _expr_label(cond.operand),
            apply=(lambda o=owner, s=slot, c=cond:
                   setattr(o, s, c.operand)),
            anchor=anchor,
            signal=_first_signal(anchor, ctx),
        )
    return RepairEdit(
        description="invert condition (%s)" % _expr_label(cond),
        apply=(lambda o=owner, s=slot, c=cond:
               setattr(o, s, ast.UnaryOp("!", c))),
        anchor=anchor,
        signal=_first_signal(anchor, ctx),
    )


def t_drop_conjunct(module, ctx, maps):
    """Drop one term of an ``&&`` condition (circular-handshake breaker)."""
    edits = []
    for stmt in _statements(module):
        if not isinstance(stmt, ast.If):
            continue
        cond = stmt.cond
        if not (isinstance(cond, ast.BinaryOp) and cond.op == "&&"):
            continue
        anchor = anchor_of(maps, cond)
        for keep, dropped in (
            (cond.left, cond.right), (cond.right, cond.left)
        ):
            edits.append(RepairEdit(
                description="drop conjunct (%s) from (%s)"
                % (_expr_label(dropped), _expr_label(cond)),
                apply=(lambda s=stmt, k=keep: setattr(s, "cond", k)),
                anchor=anchor,
                signal=_first_signal(anchor, ctx),
            ))
    return edits


def t_swap_blocking(module, ctx, maps):
    """Swap a blocking assignment for nonblocking (and vice versa)."""
    edits = []
    for parent, slot, stmt in _stmt_slots(module):
        if isinstance(stmt, ast.NonblockingAssign):
            new_cls, label = ast.BlockingAssign, "nonblocking -> blocking"
        elif isinstance(stmt, ast.BlockingAssign):
            new_cls, label = ast.NonblockingAssign, "blocking -> nonblocking"
        else:
            continue
        anchor = anchor_of(maps, stmt)
        names = _lhs_names(stmt)
        edits.append(RepairEdit(
            description="%s on %s" % (label, "/".join(names) or "?"),
            apply=(lambda p=parent, sl=slot, s=stmt, c=new_cls:
                   _set_slot(p, sl, c(
                       lhs=s.lhs, rhs=s.rhs,
                       lineno=s.lineno, col=s.col,
                   ))),
            anchor=anchor,
            signal=names[0] if names else "",
        ))
    return edits


def t_replace_rhs(module, ctx, maps):
    """Re-source a constant continuous assign from a live 1-bit signal.

    The stuck-backpressure shape (C2, D3): ``assign ready = 1`` never
    throttles the producer; the repair drives it from occupancy state
    (``assign ready = !pending``).
    """
    edits = []
    pool = _guard_pool(module)
    for item in module.items:
        if not isinstance(item, ast.ContinuousAssign):
            continue
        if not isinstance(item.rhs, ast.Number):
            continue
        names = _lhs_names(item)
        anchor = MutationAnchor(
            lines=frozenset({item.lineno}),
            signals=frozenset(names),
        )
        for label, make in pool:
            if label.lstrip("!") in names:
                continue
            edits.append(RepairEdit(
                description="assign %s = %s"
                % ("/".join(names) or "?", label),
                apply=(lambda i=item, m=make: setattr(i, "rhs", m())),
                anchor=anchor,
                signal=names[0] if names else "",
            ))
    return edits


def t_add_guard(module, ctx, maps):
    """Guard a statement or strengthen a condition with a 1-bit signal.

    Three shapes: wrap a statement in ``if (g) ...``, strengthen an
    existing ``if (c)`` to ``if (c && g)``, and strengthen a 1-bit
    assignment's RHS to ``rhs && g`` (control pulses that must also
    respect *g* without holding their old value).
    """
    edits = []
    pool = _guard_pool(module)
    for parent, slot, stmt in _stmt_slots(module):
        anchor = anchor_of(maps, stmt)
        stmt_signals = node_signals(stmt)
        if isinstance(stmt, ast.If):
            for label, make in pool:
                if label.lstrip("!") in stmt_signals and "!" not in label:
                    continue  # `if (c && c)` is a no-op shape
                edits.append(RepairEdit(
                    description="strengthen if (%s) with && %s"
                    % (_expr_label(stmt.cond), label),
                    apply=(lambda s=stmt, m=make:
                           setattr(s, "cond",
                                   ast.BinaryOp("&&", s.cond, m()))),
                    anchor=anchor,
                    signal=_first_signal(anchor, ctx),
                ))
        elif isinstance(
            stmt, (ast.NonblockingAssign, ast.BlockingAssign, ast.Block)
        ):
            if isinstance(stmt, ast.Block) and isinstance(parent, list):
                continue  # whole case arms / if branches only, not nested blocks
            names = _lhs_names(stmt)
            for label, make in pool:
                if label.lstrip("!") in names:
                    continue
                edits.append(RepairEdit(
                    description="guard %s with if (%s)"
                    % ("/".join(names) or "case arm", label),
                    apply=(lambda p=parent, sl=slot, s=stmt, m=make:
                           _set_slot(p, sl, ast.If(cond=m(), then_stmt=s))),
                    anchor=anchor,
                    signal=names[0] if names else _first_signal(anchor, ctx),
                ))
            if isinstance(stmt, (ast.NonblockingAssign, ast.BlockingAssign)):
                for label, make in pool:
                    if label.lstrip("!") in names:
                        continue
                    edits.append(RepairEdit(
                        description="strengthen %s rhs with && %s"
                        % ("/".join(names) or "?", label),
                        apply=(lambda s=stmt, m=make:
                               setattr(s, "rhs",
                                       ast.BinaryOp("&&", s.rhs, m()))),
                        anchor=anchor,
                        signal=names[0] if names else "",
                    ))
    return edits


def t_conditional_overwrite(module, ctx, maps):
    """Append ``if (g) R <= V;`` so a guard re-initializes a register.

    The failure-to-update family (D10-D13): a register that should be
    re-seeded on some control event never is. Values come from the
    register's reset-branch constants plus 0 and 1; the overwrite lands
    at the end of the driving always block's non-reset branch, winning
    last-assignment priority.
    """
    edits = []
    pool = _guard_pool(module)
    targets = _sequential_targets(module)
    for name in sorted(targets):
        always = targets[name]
        block = _overwrite_block(always)
        if block is None:
            continue
        values = []
        for number in _reset_values(module, name):
            values.append((str(number), number))
        for value in (0, 1):
            if not any(
                isinstance(v, ast.Number) and v.value == value
                for _, v in values
            ):
                values.append((str(value), ast.Number(value)))
        anchor = MutationAnchor(
            lines=frozenset({always.lineno}),
            signals=frozenset({name}),
        )
        for g_label, g_make in pool:
            if g_label.lstrip("!") == name:
                continue
            for v_label, v_expr in values:
                edits.append(RepairEdit(
                    description="append if (%s) %s <= %s"
                    % (g_label, name, v_label),
                    apply=(lambda b=block, g=g_make, n=name, v=v_expr:
                           b.statements.append(ast.If(
                               cond=g(),
                               then_stmt=ast.NonblockingAssign(
                                   lhs=ast.Identifier(n),
                                   rhs=copy.deepcopy(v),
                               ),
                           ))),
                    anchor=anchor,
                    signal=name,
                ))
    return edits


def _overwrite_block(always):
    """The block a conditional overwrite appends to: the non-reset arm
    of a top-level reset ``if``, else the always body itself."""
    body = always.body
    if isinstance(body, ast.Block) and len(body.statements) == 1:
        only = body.statements[0]
        if isinstance(only, ast.If) and isinstance(only.else_stmt, ast.Block):
            return only.else_stmt
    if isinstance(body, ast.Block):
        return body
    return None


# ---------------------------------------------------------------------------
# Registry + enumeration driver
# ---------------------------------------------------------------------------


#: Enumeration order: precise, single-node edits first; the generative
#: guard/overwrite families (large pools) last.
TEMPLATES = {
    "replace_literals": t_replace_literals,
    "shift_partselect": t_shift_partselect,
    "swap_partselect_pair": t_swap_partselect_pair,
    "widen_synchronizer": t_widen_synchronizer,
    "assign_const": t_assign_const,
    "invert_condition": t_invert_condition,
    "drop_conjunct": t_drop_conjunct,
    "swap_blocking": t_swap_blocking,
    "replace_rhs": t_replace_rhs,
    "add_guard": t_add_guard,
    "conditional_overwrite": t_conditional_overwrite,
}

TEMPLATE_NAMES = list(TEMPLATES)

#: Search tiers: tier 0 templates enumerate a handful of precise edits
#: per site; tier 1 templates are generative (every guard x every
#: value) and would flood the budget if interleaved by site rank alone.
#: The plan tries every tier-0 edit (any rank) before any tier-1 edit.
TEMPLATE_TIERS = {
    "add_guard": 1,
    "conditional_overwrite": 1,
}


def _expr_label(expr):
    from ..hdl import generate_expression

    try:
        text = generate_expression(expr)
    except Exception:
        text = str(expr)
    return text if len(text) <= 40 else text[:37] + "..."


def _first_signal(anchor, ctx):
    """The most site-relevant signal name an anchor carries."""
    ranked = [
        name for name in sorted(anchor.signals)
        if name in ctx.signal_ranks
    ]
    if ranked:
        return min(ranked, key=lambda n: (ctx.signal_ranks[n], n))
    return min(anchor.signals) if anchor.signals else ""


def resolve_sites(source, top, sites):
    """Distribute flattened site names over the modules they live in.

    A dotted name (``out_fifo.data``) follows one Instance level: when
    the instanced module is defined in *source* the local tail is
    charged to that module; when it is a blackbox IP the instance name
    itself becomes the site (widening an IP's parameters is the only
    edit possible there). Returns ``{module_name: SiteContext}`` for
    the top module and every source-defined module it instantiates.
    """
    modules = {top: source.find_module(top)}
    order = [top]
    queue = [top]
    module_map = source.module_map()
    while queue:
        name = queue.pop(0)
        for item in modules[name].items:
            if isinstance(item, ast.Instance):
                child = module_map.get(item.module_name)
                if child is not None and item.module_name not in modules:
                    modules[item.module_name] = child
                    order.append(item.module_name)
                    queue.append(item.module_name)
    contexts = {name: SiteContext() for name in order}

    def charge(module_name, signal, line, rank):
        ctx = contexts[module_name]
        if signal:
            prev = ctx.signal_ranks.get(signal)
            if prev is None or rank < prev:
                ctx.signal_ranks[signal] = rank
        if line:
            prev = ctx.line_ranks.get(line)
            if prev is None or rank < prev:
                ctx.line_ranks[line] = rank

    for site in sites:
        name = site.signal
        if name and "." in name:
            head, tail = name.split(".", 1)
            placed = False
            for item in modules[top].items:
                if isinstance(item, ast.Instance) and item.instance_name == head:
                    child = module_map.get(item.module_name)
                    if child is not None:
                        charge(item.module_name, tail, 0, site.rank)
                    else:
                        charge(top, head, 0, site.rank)  # blackbox IP
                    placed = True
                    break
            if not placed:
                charge(top, head, site.line, site.rank)
            if site.line:
                for module_name in order:
                    charge(module_name, "", site.line, site.rank)
            continue
        for module_name in order:
            charge(module_name, name if module_name == top else "",
                   site.line, site.rank)
    return order, contexts


def _plan_edits(text, top, sites, templates, filename):
    """The sorted edit plan: one lightweight tuple per enumerable edit.

    Sorted by ``(template tier, site_rank, template order, module
    order, edit index)`` — the deterministic order the search consumes
    edits in: all precise edits (site-rank order) first, then the
    generative guard/overwrite families, again best-localized first.
    """
    base = parse(text, filename=filename or "<input>")
    order, contexts = resolve_sites(base, top, sites)
    chosen = [(name, TEMPLATES[name]) for name in (templates or TEMPLATE_NAMES)]
    maps = build_anchor_maps(base)
    entries = []
    for t_index, (t_name, template) in enumerate(chosen):
        for m_index, module_name in enumerate(order):
            module = base.find_module(module_name)
            edits = template(module, contexts[module_name], maps)
            for e_index, edit in enumerate(edits):
                rank = contexts[module_name].rank_of(edit.anchor)
                entries.append(
                    (rank, t_index, m_index, e_index, t_name, module_name,
                     edit.description, edit.signal)
                )
    entries.sort(
        key=lambda e: (TEMPLATE_TIERS.get(e[4], 0),) + e[:4]
    )
    return contexts, entries


def _instantiate_entry(text, top, sites, templates, filename, entry):
    """Apply one planned edit on a fresh parse of the pristine source."""
    rank, _t_index, _m_index, e_index, t_name, module_name, desc, signal = entry
    fresh = parse(text, filename=filename or "<input>")
    _order, contexts = resolve_sites(fresh, top, sites)
    maps = build_anchor_maps(fresh)
    module = fresh.find_module(module_name)
    edits = TEMPLATES[t_name](module, contexts[module_name], maps)
    edit = edits[e_index]
    edit.apply()
    patched = generate_source(fresh)
    if patched == text:
        return None
    return RepairCandidate(
        candidate_id="%s:%s:%d" % (t_name, module_name, e_index),
        template=t_name,
        module=module_name,
        description=desc,
        signal=signal,
        site_rank=rank,
        text=patched,
    )


def enumerate_candidates(text, top, sites, templates=None, filename=""):
    """Yield candidate patches for *text* in site-rank order, lazily.

    Each yielded :class:`RepairCandidate` is instantiated on demand (a
    fresh parse of the pristine source per candidate), so a search with
    a budget of *N* only pays for *N* instantiations, however many edits
    the plan holds. No-op edits (patched text identical to the
    original) are skipped.
    """
    _contexts, entries = _plan_edits(text, top, sites, templates, filename)
    for entry in entries:
        candidate = _instantiate_entry(
            text, top, sites, templates, filename, entry
        )
        if candidate is not None:
            yield candidate


def count_edits(text, top, sites, templates=None, filename=""):
    """Size of the full edit plan (without instantiating anything)."""
    _contexts, entries = _plan_edits(text, top, sites, templates, filename)
    return len(entries)


def instantiate(text, top, sites, candidate_id, templates=None, filename=""):
    """Re-create one candidate's patched text by its stable id."""
    _contexts, entries = _plan_edits(text, top, sites, templates, filename)
    for entry in entries:
        _rank, _t, _m, e_index, t_name, module_name = entry[:6]
        if "%s:%s:%d" % (t_name, module_name, e_index) == candidate_id:
            candidate = _instantiate_entry(
                text, top, sites, templates, filename, entry
            )
            if candidate is not None:
                return candidate
    raise KeyError("no candidate %r" % candidate_id)
