"""Diagnostic-bounded repair site enumeration.

The repair search is only tractable because it is *localized*: instead
of trying every template everywhere, candidate sites come from the
diagnostics the rest of the stack already produces, in decreasing order
of trust:

1. **LossCheck localization** (rank 0) — for loss bugs, the shadow
   variables LossCheck's analyze() names are the registers where data
   actually disappeared;
2. **`repro check` findings** (rank 1) — L03xx lint, L04xx flow, and
   L05xx value-analysis findings carry both a source line and,
   usually, a quoted signal name;
3. **fault sensitivity** (rank 2) — an architecture-only
   :class:`~repro.faults.scoring.DetectionScorer` flips one bit in each
   state register mid-scenario; registers whose flip perturbs the
   scenario's observation sit on the behaviour cone of the failure;
4. **the observable cone** (rank 3) — every state register, output
   port, and IP instance, so a within-budget search can still reach a
   repair whose site no diagnostic named.

Sites are plain :class:`~repro.repair.templates.RepairSite` records;
:func:`repro.repair.templates.resolve_sites` later distributes them
over module namespaces (following one level of dotted instance paths).
"""

from __future__ import annotations

import re

from .. import obs
from ..diag.check import check_targets
from ..faults.models import SEU_REG, FaultEvent, FaultSchedule
from ..faults.scoring import DetectionScorer
from ..hdl import ast_nodes as ast
from ..testbed.harness import load_design
from ..testbed.metadata import SPECS
from ..wave.trace import classify_signals
from .templates import RepairSite

#: Quoted identifiers (possibly dotted) inside a diagnostic message.
_QUOTED_NAME = re.compile(r"'([A-Za-z_][\w.]*)'")

RANK_LOSSCHECK = 0
RANK_CHECK = 1
RANK_FAULT = 2
RANK_CONE = 3


def _losscheck_sites(bug_id):
    """Registers LossCheck's shadow variables localized data loss to."""
    spec = SPECS[bug_id]
    if spec.losscheck is None:
        return []
    from ..testbed.harness import run_losscheck

    try:
        outcome = run_losscheck(bug_id)
    except Exception as exc:
        return [RepairSite(
            origin="losscheck-error", detail=str(exc), rank=RANK_CONE,
        )]
    sites = []
    for name in sorted(set(outcome.result.localized)):
        sites.append(RepairSite(
            signal=name,
            origin="losscheck",
            detail="shadow variable localized loss at %s" % name,
            rank=RANK_LOSSCHECK,
        ))
    return sites


def _check_sites(bug_id):
    """Lint (L03xx), flow (L04xx), and value (L05xx) findings."""
    sites = []
    try:
        results = check_targets([bug_id])
    except Exception as exc:
        return [RepairSite(
            origin="check-error", detail=str(exc), rank=RANK_CONE,
        )]
    for result in results:
        for diag in result.sink.diagnostics:
            if not diag.code.startswith(("L03", "L04", "L05")):
                continue
            names = _QUOTED_NAME.findall(diag.message)
            if not names:
                names = [""]
            for name in names:
                sites.append(RepairSite(
                    signal=name,
                    line=diag.span.line,
                    origin="check:%s" % diag.code,
                    detail=diag.message,
                    rank=RANK_CHECK,
                ))
    return sites


def _fault_sites(bug_id, scorer=None):
    """State registers whose mid-scenario bit flip perturbs the scenario.

    Uses an architecture-only scorer (instrumented tools cleared) — two
    simulations per register, golden cached — so this is the most
    expensive source; it still runs in seconds on testbed designs.
    """
    if scorer is None:
        try:
            scorer = DetectionScorer(bug_id)
        except Exception as exc:
            return [RepairSite(
                origin="fault-error", detail=str(exc), rank=RANK_CONE,
            )]
    scorer.tools = {}  # architecture-only: skip instrumented-tool replays
    try:
        golden, _ = scorer.golden()
        mid_cycle = max(1, golden["__trace__"].cycles // 2)
    except Exception as exc:
        return [RepairSite(
            origin="fault-error", detail=str(exc), rank=RANK_CONE,
        )]
    kinds = classify_signals(scorer.module)
    sites = []
    for name in sorted(n for n, k in kinds.items() if k == "state"):
        schedule = FaultSchedule(
            events=[FaultEvent(cycle=mid_cycle, kind=SEU_REG, target=name)],
            label="repair-localize:%s" % name,
        )
        try:
            case = scorer.score(schedule)
        except Exception:
            continue
        if case.effect:
            sites.append(RepairSite(
                signal=name,
                origin="fault",
                detail="bit flip at cycle %d perturbs the scenario"
                % mid_cycle,
                rank=RANK_FAULT,
            ))
    return sites


def _cone_sites(bug_id):
    """The full observable cone: state regs, outputs, and IP instances."""
    design = load_design(bug_id)
    kinds = classify_signals(design.top)
    sites = []
    for name in sorted(
        n for n, k in kinds.items() if k in ("state", "output", "memory")
    ):
        sites.append(RepairSite(
            signal=name,
            origin="cone",
            detail="observable-cone fallback",
            rank=RANK_CONE,
        ))
    for item in design.top.items:
        if isinstance(item, ast.Instance):
            sites.append(RepairSite(
                signal=item.instance_name,
                origin="cone",
                detail="IP/submodule instance",
                rank=RANK_CONE,
            ))
    return sites


def enumerate_sites(bug_id, use_faults=True, scorer=None):
    """All repair sites for *bug_id*, strongest localization first.

    Returns a deduplicated, deterministically ordered list of
    :class:`RepairSite`. Each (signal, line) pair keeps only its best
    (lowest) rank. The cone fallback is always appended so the search
    degrades to budget-bounded instead of giving up when no diagnostic
    fires.
    """
    with obs.span("repair:localize", bug=bug_id):
        sites = []
        sites.extend(_losscheck_sites(bug_id))
        sites.extend(_check_sites(bug_id))
        if use_faults:
            sites.extend(_fault_sites(bug_id, scorer=scorer))
        sites.extend(_cone_sites(bug_id))
    best = {}
    order = []
    for site in sites:
        key = (site.signal, site.line)
        if key == ("", 0):
            continue  # error placeholders carry no location
        if key not in best or site.rank < best[key].rank:
            if key not in best:
                order.append(key)
            best[key] = site
    result = [best[key] for key in order]
    result.sort(key=lambda s: (s.rank, s.signal, s.line, s.origin))
    if obs.enabled:
        obs.gauge("repair.sites").set(len(result))
    return result
