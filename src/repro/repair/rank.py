"""Waveform-guided ranking of validated repair candidates.

Several candidates often pass a scenario; the scenario is a *sampled*
oracle, so passing is necessary but not sufficient. The tie-breaker is
the waveform: each surviving candidate's traced run is diffed against
the *fixed* reference design's run with
:func:`repro.wave.diff_traces`, and candidates whose behaviour is
closer to the reference rank higher. "Closer" follows the paper's
observability ordering:

1. full trace equivalence with the reference beats everything;
2. later **first output divergence** beats earlier — the patch is
   right for longer on the externally visible surface;
3. fewer **divergent signals** beats more — the patch perturbs less of
   the design;
4. higher **OSDD** (output minus state divergence cycle) beats lower —
   internal deviations that take longer to become visible are the
   benign kind (e.g. don't-care state encodings);
5. the stable candidate id, so the order is deterministic.

Ranking never re-simulates: validation already traced every candidate
run, and the fixed reference is captured once per campaign.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..wave.align import diff_traces
from ..wave.capture import capture_scenario

#: Sort key sentinel: a candidate that never diverges on outputs.
_NEVER = 10 ** 9


@dataclass
class RankMetrics:
    """The waveform-comparison numbers one candidate is ranked by."""

    equivalent: bool = False
    #: Golden-side cycle of the earliest output divergence (None: never).
    output_divergence_cycle: object = None
    output_divergence_signal: str = ""
    divergent_signals: int = 0
    signals_compared: int = 0
    osdd: object = None

    def sort_key(self):
        out_cycle = (
            _NEVER if self.output_divergence_cycle is None
            else self.output_divergence_cycle
        )
        osdd = self.osdd if self.osdd is not None else _NEVER
        return (
            0 if self.equivalent else 1,
            -out_cycle,
            self.divergent_signals,
            -osdd,
        )

    def to_dict(self):
        return {
            "equivalent": self.equivalent,
            "output_divergence_cycle": self.output_divergence_cycle,
            "output_divergence_signal": self.output_divergence_signal,
            "divergent_signals": self.divergent_signals,
            "signals_compared": self.signals_compared,
            "osdd": self.osdd,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            equivalent=data["equivalent"],
            output_divergence_cycle=data["output_divergence_cycle"],
            output_divergence_signal=data["output_divergence_signal"],
            divergent_signals=data["divergent_signals"],
            signals_compared=data["signals_compared"],
            osdd=data["osdd"],
        )


def reference_trace(bug_id):
    """The fixed variant's traced scenario run (the ranking reference)."""
    trace, _observation = capture_scenario(bug_id, fixed=True)
    return trace


def score_candidate(reference, candidate_trace):
    """Rank metrics for one candidate trace against the fixed reference."""
    diff = diff_traces(reference, candidate_trace)
    out_cycle = None
    out_signal = ""
    if diff.output_divergence is not None:
        out_cycle, out_signal = diff.output_divergence
    return RankMetrics(
        equivalent=not diff.diverged,
        output_divergence_cycle=out_cycle,
        output_divergence_signal=out_signal,
        divergent_signals=diff.divergent_signals,
        signals_compared=diff.signals_compared,
        osdd=diff.osdd,
    )


def rank_candidates(entries):
    """Sort ``(candidate_id, RankMetrics)`` pairs, best candidate first."""
    return sorted(
        entries, key=lambda e: e[1].sort_key() + (e[0],)
    )
