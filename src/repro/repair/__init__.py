"""``repro.repair`` — template-based automated repair, waveform-ranked.

Closes the paper's debugging loop: the diagnostics (SignalCat, the
monitors, LossCheck, the L03xx/L04xx checkers) *localize* a bug; this
subsystem turns that localization into candidate patches and picks the
best one by simulation:

* :mod:`~repro.repair.templates` — rtl-repair-style parameterized AST
  edits (literal tweaks, condition inversion, guards, conditional
  overwrites, width/depth widening, …) enumerated at diagnostic sites
  via the same anchor model as :mod:`repro.fuzz`;
* :mod:`~repro.repair.sites` — candidate sites from LossCheck shadow
  variables, ``repro check`` findings, and fault-sensitivity probes,
  so the search is diagnostic-bounded, not exhaustive;
* :mod:`~repro.repair.validate` — differential scenario replay on each
  patched design against the buggy baseline;
* :mod:`~repro.repair.rank` — :func:`repro.wave.diff_traces` scoring
  against the fixed reference run (later first output divergence,
  fewer divergent signals, higher OSDD rank higher);
* :mod:`~repro.repair.search` — the resumable, journaled,
  budget-bounded campaign behind ``python -m repro repair``.

Exports resolve lazily (PEP 562): importing :mod:`repro.repair` does
not drag in the simulator/testbed layers until a repair actually runs.
"""

from __future__ import annotations

_EXPORTS = {
    "RepairCandidate": ".templates",
    "RepairEdit": ".templates",
    "RepairSite": ".templates",
    "SiteContext": ".templates",
    "TEMPLATES": ".templates",
    "TEMPLATE_NAMES": ".templates",
    "count_edits": ".templates",
    "enumerate_candidates": ".templates",
    "instantiate": ".templates",
    "resolve_sites": ".templates",
    "enumerate_sites": ".sites",
    "ValidationResult": ".validate",
    "baseline_result": ".validate",
    "bug_source_text": ".validate",
    "run_scenario_on_text": ".validate",
    "validate_candidate": ".validate",
    "RankMetrics": ".rank",
    "rank_candidates": ".rank",
    "reference_trace": ".rank",
    "score_candidate": ".rank",
    "DEFAULT_BUDGET": ".search",
    "RepairConfig": ".search",
    "RepairOutcome": ".search",
    "SCHEMA": ".search",
    "build_report": ".search",
    "render_repair_report": ".search",
    "render_repair_summary": ".search",
    "run_repair": ".search",
    "unified_patch": ".search",
    "write_repair_report": ".search",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name)
        )
    import importlib

    module = importlib.import_module(module_name, __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
