"""The resumable repair campaign: localize, enumerate, validate, rank.

One :func:`run_repair` call is the whole loop for one bug:

1. :func:`repro.repair.sites.enumerate_sites` localizes the search;
2. :func:`repro.repair.templates.enumerate_candidates` lazily yields
   candidate patches in site-rank order;
3. each candidate is validated by scenario replay
   (:mod:`repro.repair.validate`) under a watchdog, with one retry on a
   wall-clock overrun;
4. scenario-passing candidates are ranked against the fixed reference
   trace (:mod:`repro.repair.rank`);
5. everything is journaled to a crash-safe
   :class:`~repro.runtime.JsonlJournal`, so an interrupted campaign
   resumes instead of restarting — a journaled candidate is never
   re-simulated.

The final ``repro.repair/v1`` report is byte-deterministic: no wall
clock, no environment, all tables sorted.
"""

from __future__ import annotations

import difflib
import json
import os
from dataclasses import dataclass, field

from .. import obs
from ..hdl import generate_source, parse
from ..runtime import JsonlJournal, TimeLimitExceeded, retry_with_backoff
from ..testbed.metadata import SPECS
from .rank import RankMetrics, rank_candidates, reference_trace, score_candidate
from .sites import enumerate_sites
from .templates import count_edits, enumerate_candidates
from .validate import (
    DEFAULT_WATCHDOG,
    STATUS_PASSED,
    ValidationResult,
    baseline_result,
    bug_source_text,
    validate_candidate,
)

SCHEMA = "repro.repair/v1"

#: Default candidate budget: enough for every testbed repair while
#: keeping the worst-case campaign under a couple of minutes.
DEFAULT_BUDGET = 400

#: How many top-ranked plausible candidates get full patch text.
PATCH_TOP_N = 3


@dataclass
class RepairConfig:
    """Knobs for one repair campaign."""

    bug_id: str
    budget: int = DEFAULT_BUDGET
    watchdog: float = DEFAULT_WATCHDOG
    #: Journal path; empty disables resumability.
    journal_path: str = ""
    #: Ignore (and overwrite) an existing journal.
    fresh: bool = False
    #: Restrict to these template names (empty: the full registry).
    templates: tuple = ()
    #: Include the fault-sensitivity localization pass (slowest source).
    use_faults: bool = True
    #: Stop early once this many scenario-passing candidates exist
    #: (0: exhaust the budget). Several survivors are wanted so the
    #: waveform ranking has something to discriminate between.
    stop_after: int = 5
    #: Validate only candidates whose enumeration index falls in
    #: ``[lo, hi)``. Enumeration order is deterministic, so disjoint
    #: windows partition one campaign across workers (the serve fabric's
    #: repair sharding); merging the windows' records reproduces the
    #: whole campaign only when ``stop_after`` is 0 — early stopping
    #: depends on global order no single window can see.
    candidate_range: tuple = None


@dataclass
class RepairOutcome:
    """Everything one campaign produced."""

    report: dict
    #: ``{candidate_id: patched_text}`` for the top plausible candidates.
    patches: dict = field(default_factory=dict)
    #: Raw per-candidate journal records, in enumeration order — what
    #: :func:`build_report_from_parts` needs to merge sharded windows.
    records: list = field(default_factory=list)

    @property
    def repaired(self):
        return self.report["repaired"]


def _journal_key(record):
    return record.get("candidate")


def _record_for(candidate, result, metrics):
    record = dict(candidate.to_dict())
    record["validation"] = result.to_dict()
    record["rank"] = metrics.to_dict() if metrics is not None else None
    return record


def _result_from_record(record):
    data = record["validation"]
    return ValidationResult(
        status=data["status"],
        symptoms=tuple(data["symptoms"]),
        detail=data["detail"],
        improved=data["improved"],
        cycles=data["cycles"],
    )


def run_repair(config):
    """Run one repair campaign; returns a :class:`RepairOutcome`."""
    bug_id = config.bug_id
    if bug_id not in SPECS:
        raise KeyError(bug_id)
    spec = SPECS[bug_id]
    text = bug_source_text(bug_id)
    templates = tuple(config.templates) or None

    sites = enumerate_sites(bug_id, use_faults=config.use_faults)

    with obs.span("repair:baseline", bug=bug_id):
        baseline = baseline_result(bug_id, watchdog=config.watchdog)
        reference = reference_trace(bug_id)

    journal = None
    seen = {}
    if config.journal_path:
        journal = JsonlJournal(config.journal_path)
        if config.fresh:
            if os.path.exists(config.journal_path):
                os.remove(config.journal_path)
        else:
            for record in journal.load():
                key = _journal_key(record)
                if key:
                    seen[key] = record

    with obs.span("repair:enumerate", bug=bug_id):
        planned = count_edits(
            text, spec.top, sites, templates=templates,
            filename=spec.design_file,
        )
        candidates = enumerate_candidates(
            text, spec.top, sites, templates=templates,
            filename=spec.design_file,
        )

    lo, hi = 0, None
    if config.candidate_range is not None:
        lo, hi = int(config.candidate_range[0]), int(config.candidate_range[1])
    records = []
    patches = {}
    tried = 0
    passing = 0
    try:
        with obs.span("repair:validate", bug=bug_id):
            for position, candidate in enumerate(candidates):
                if hi is not None and position >= hi:
                    break
                if tried >= config.budget:
                    break
                if config.stop_after and passing >= config.stop_after:
                    break
                if position < lo:
                    continue
                tried += 1
                cached = seen.get(candidate.candidate_id)
                if cached is not None:
                    records.append(cached)
                    if cached["validation"]["status"] == STATUS_PASSED:
                        passing += 1
                        patches[candidate.candidate_id] = candidate.text
                    continue
                result, metrics = _validate_one(
                    bug_id, candidate, baseline, reference, config
                )
                record = _record_for(candidate, result, metrics)
                records.append(record)
                if journal is not None:
                    journal.append(record)
                if result.passed:
                    passing += 1
                    patches[candidate.candidate_id] = candidate.text
    finally:
        if journal is not None:
            journal.close()

    report = build_report(
        bug_id, config, baseline, sites, planned, tried, records
    )
    top_ids = [entry["candidate"] for entry in report["ranking"][:PATCH_TOP_N]]
    patches = {cid: patches[cid] for cid in top_ids if cid in patches}
    if obs.enabled:
        obs.gauge("repair.candidates").set(tried)
        obs.gauge("repair.validated").set(len(records))
        obs.gauge("repair.plausible").set(len(report["ranking"]))
    return RepairOutcome(report=report, patches=patches, records=records)


def _validate_one(bug_id, candidate, baseline, reference, config):
    """Validate and (when passing) rank one candidate.

    A wall-clock overrun gets one retry — SIGALRM timing near the limit
    is noisy; a candidate that hangs twice is recorded as a hang.
    """
    def attempt():
        result = validate_candidate(
            bug_id, candidate.text, baseline,
            watchdog=config.watchdog,
            label="%s:%s" % (bug_id, candidate.candidate_id),
        )
        if result.status == "hang":
            raise TimeLimitExceeded(result.detail)
        return result

    try:
        result, _attempts = retry_with_backoff(
            attempt, retries=1, base_delay=0.01,
            retry_on=(TimeLimitExceeded,),
        )
    except TimeLimitExceeded as exc:
        result = ValidationResult(status="hang", detail=str(exc))
    metrics = None
    if result.passed and result.trace is not None:
        metrics = score_candidate(reference, result.trace)
    return result, metrics


def build_report(bug_id, config, baseline, sites, planned, tried, records):
    """The byte-deterministic ``repro.repair/v1`` report dict."""
    return build_report_from_parts(
        bug_id=bug_id,
        budget=config.budget,
        watchdog=config.watchdog,
        baseline={
            "status": baseline.status,
            "symptoms": list(baseline.symptoms),
        },
        sites=[site.to_dict() for site in sites],
        planned=planned,
        tried=tried,
        records=records,
    )


def build_report_from_parts(bug_id, budget, watchdog, baseline, sites,
                            planned, tried, records):
    """:func:`build_report` from already-serialized parts.

    *baseline* and *sites* are the JSON-ready dicts the report embeds;
    *records* are per-candidate journal records in enumeration order.
    The serve fabric merges sharded repair windows through this — each
    shard ships its records, the parent rebuilds the one report the
    unsharded campaign would have written.
    """
    by_status = {}
    by_template = {}
    improved = []
    plausible = []
    for record in records:
        status = record["validation"]["status"]
        by_status[status] = by_status.get(status, 0) + 1
        template = record["template"]
        by_template[template] = by_template.get(template, 0) + 1
        if record["validation"]["improved"]:
            improved.append(record["candidate"])
        if status == STATUS_PASSED and record.get("rank") is not None:
            plausible.append(
                (record["candidate"], RankMetrics.from_dict(record["rank"]))
            )
    ranked = rank_candidates(plausible)
    record_by_id = {r["candidate"]: r for r in records}
    ranking = []
    for rank_index, (candidate_id, metrics) in enumerate(ranked):
        record = record_by_id[candidate_id]
        ranking.append({
            "rank": rank_index + 1,
            "candidate": candidate_id,
            "template": record["template"],
            "module": record["module"],
            "description": record["description"],
            "signal": record["signal"],
            "site_rank": record["site_rank"],
            "metrics": dict(record["rank"]),
        })
    best = ranking[0] if ranking else None
    return {
        "schema": SCHEMA,
        "bug": bug_id,
        "budget": budget,
        "watchdog": watchdog,
        "baseline": dict(baseline),
        "sites": list(sites),
        "candidates": {
            "planned": planned,
            "tried": tried,
            "by_status": dict(sorted(by_status.items())),
            "by_template": dict(sorted(by_template.items())),
        },
        "improved": sorted(improved),
        "ranking": ranking,
        "repaired": bool(ranking),
        "best": best,
    }


def render_repair_report(report):
    """The canonical byte-deterministic JSON rendering."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def write_repair_report(report, path):
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(render_repair_report(report))


def render_repair_summary(report):
    """Human-readable campaign summary."""
    lines = []
    lines.append("repair %s: %s" % (
        report["bug"],
        "REPAIRED" if report["repaired"] else "no repair found",
    ))
    lines.append("  baseline: %s (%s)" % (
        report["baseline"]["status"],
        ", ".join(report["baseline"]["symptoms"]) or "no symptoms",
    ))
    lines.append("  sites: %d  candidates: %d tried of %d planned "
                 "(budget %d)" % (
                     len(report["sites"]),
                     report["candidates"]["tried"],
                     report["candidates"]["planned"],
                     report["budget"],
                 ))
    by_status = report["candidates"]["by_status"]
    lines.append("  outcomes: " + ", ".join(
        "%s=%d" % (k, v) for k, v in sorted(by_status.items())
    ))
    if report["improved"]:
        lines.append("  improved (fewer symptoms, still failing): %d"
                     % len(report["improved"]))
    for entry in report["ranking"][:5]:
        metrics = entry["metrics"]
        if metrics["equivalent"]:
            closeness = "trace-equivalent to the fix"
        elif metrics["output_divergence_cycle"] is None:
            closeness = "outputs match the fix (%d internal divergent)" \
                % metrics["divergent_signals"]
        else:
            closeness = "first output divergence @%d (%s), %d divergent" \
                % (
                    metrics["output_divergence_cycle"],
                    metrics["output_divergence_signal"],
                    metrics["divergent_signals"],
                )
        lines.append("  #%d %s [%s] %s — %s" % (
            entry["rank"], entry["candidate"], entry["template"],
            entry["description"], closeness,
        ))
    return "\n".join(lines) + "\n"


def unified_patch(bug_id, candidate_id, patched_text):
    """A unified diff of one candidate against the buggy source.

    Candidate text comes out of the code generator, so the baseline
    side is normalized through the same parse -> generate pipeline:
    the diff then shows only the semantic edit, not comment and
    formatting noise.
    """
    spec = SPECS[bug_id]
    original = generate_source(parse(
        bug_source_text(bug_id), filename=spec.design_file
    ))
    return "".join(difflib.unified_diff(
        original.splitlines(keepends=True),
        patched_text.splitlines(keepends=True),
        fromfile="a/%s" % spec.design_file,
        tofile="b/%s (%s)" % (spec.design_file, candidate_id),
    ))
