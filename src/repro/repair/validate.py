"""Differential validation of candidate patches by scenario replay.

A candidate repairs a bug exactly when the bug's own testbed scenario —
the reproduction recipe, not a new oracle — stops observing symptoms on
the patched design. Validation is differential against the *buggy*
baseline: a candidate that still fails but shows a strict subset of the
baseline's symptoms is recorded as ``improved`` (useful search signal,
not a repair).

Every run traces all signals, so the same simulation that validates a
candidate also produces the :class:`~repro.wave.trace.Trace` the
ranking stage diffs against the fixed reference — one simulation per
candidate, not two.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl import (
    ElaborationError,
    LexerError,
    ParseError,
    elaborate,
    parse,
)
from ..runtime import TimeLimitExceeded, time_limit
from ..sim import Simulator
from ..testbed.metadata import SPECS
from ..testbed.scenarios import SCENARIOS
from ..wave.trace import Trace

#: Validation statuses, from best to worst.
STATUS_PASSED = "passed"
STATUS_SYMPTOMATIC = "symptomatic"
STATUS_HANG = "hang"
STATUS_PARSE_ERROR = "parse-error"
STATUS_ELABORATE_ERROR = "elaborate-error"
STATUS_SIMULATE_ERROR = "simulate-error"

#: Default per-candidate wall-clock bound (seconds). Testbed scenarios
#: finish in well under a second; a patch that loops a scenario (e.g.
#: a broken handshake wait) must not stall the whole campaign.
DEFAULT_WATCHDOG = 10


@dataclass
class ValidationResult:
    """Outcome of replaying one scenario on one (patched) design."""

    status: str
    symptoms: tuple = ()
    detail: str = ""
    #: Strict subset of the baseline's symptoms (still failing, closer).
    improved: bool = False
    cycles: int = 0
    trace: object = field(default=None, repr=False)

    @property
    def passed(self):
        return self.status == STATUS_PASSED

    def to_dict(self):
        return {
            "status": self.status,
            "symptoms": list(self.symptoms),
            "detail": self.detail,
            "improved": self.improved,
            "cycles": self.cycles,
        }


def _symptom_tuple(observation):
    return tuple(sorted(s.value for s in observation.symptoms))


def run_scenario_on_text(bug_id, text, watchdog=DEFAULT_WATCHDOG,
                         label=""):
    """Parse, elaborate, and replay *bug_id*'s scenario on *text*.

    Returns a :class:`ValidationResult`; its ``trace`` is populated for
    every run that simulated to completion (pass or fail alike).
    """
    spec = SPECS[bug_id]
    try:
        source = parse(text, filename=spec.design_file)
    except (ParseError, LexerError) as exc:
        return ValidationResult(status=STATUS_PARSE_ERROR, detail=str(exc))
    try:
        design = elaborate(source, top=spec.top)
    except (ElaborationError, KeyError) as exc:
        return ValidationResult(
            status=STATUS_ELABORATE_ERROR, detail=str(exc)
        )
    sim = Simulator(design, trace="all")
    try:
        with time_limit(watchdog):
            observation = SCENARIOS[bug_id](sim)
    except TimeLimitExceeded:
        return ValidationResult(
            status=STATUS_HANG,
            detail="scenario exceeded %ss at cycle %d"
            % (watchdog, sim.cycle),
            cycles=sim.cycle,
        )
    except Exception as exc:  # any runtime fault in the patched design
        return ValidationResult(
            status=STATUS_SIMULATE_ERROR,
            detail="%s: %s" % (type(exc).__name__, exc),
            cycles=sim.cycle,
        )
    symptoms = _symptom_tuple(observation)
    trace = Trace.from_simulator(
        sim, label=label or "%s:candidate" % bug_id
    )
    return ValidationResult(
        status=STATUS_PASSED if not observation.failed
        else STATUS_SYMPTOMATIC,
        symptoms=symptoms,
        cycles=sim.cycle,
        trace=trace,
    )


def bug_source_text(bug_id):
    """The buggy design's original source text (diagnostic line numbers
    in repair sites refer to this text, so repair operates on it
    verbatim, not on a regenerated rendering)."""
    from ..testbed.harness import _design_text

    return _design_text(SPECS[bug_id].design_file)


def baseline_result(bug_id, watchdog=DEFAULT_WATCHDOG):
    """The buggy design's own scenario outcome (the differential anchor)."""
    return run_scenario_on_text(
        bug_id, bug_source_text(bug_id), watchdog=watchdog,
        label="%s:buggy" % bug_id,
    )


def validate_candidate(bug_id, candidate_text, baseline,
                       watchdog=DEFAULT_WATCHDOG, label=""):
    """Validate one candidate differentially against *baseline*.

    *baseline* is the :class:`ValidationResult` of the unpatched
    design. A candidate whose scenario still fails but with a strict
    subset of the baseline symptoms gets ``improved=True``.
    """
    result = run_scenario_on_text(
        bug_id, candidate_text, watchdog=watchdog, label=label
    )
    if result.status == STATUS_SYMPTOMATIC and baseline is not None:
        base = set(baseline.symptoms)
        mine = set(result.symptoms)
        result.improved = mine < base
    return result
