"""Structural resource estimation for elaborated designs (§6.4).

Stands in for the Quartus/Vivado synthesis reports the paper reads: the
estimator counts, from the elaborated AST,

* **registers** — bits of sequentially-assigned scalar registers, plus
  small memories that synthesize to register banks;
* **block RAM bits** — large memories, FIFO/BRAM IP capacity, and the
  recording IP's ``DEPTH x WIDTH`` buffer (the dominant, linearly-growing
  term in Figure 2);
* **logic cells** — a LUT-packing estimate over every expression the
  design evaluates per cycle.

Absolute numbers are estimates, but the properties the paper's Figures 2
and 3 rest on are structural and hold exactly: BRAM grows linearly with
recording-buffer depth while registers and logic stay flat.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..hdl import ast_nodes as ast
from ..hdl.elaborate import Design
from ..hdl.transform import const_eval, try_const_eval
from ..analysis.assignments import analyze_module
from ..sim.values import SymbolTable, self_width

#: Memories at or below this many bits synthesize to register banks.
BRAM_THRESHOLD_BITS = 1024


@dataclass
class ResourceEstimate:
    """Estimated resource usage of one design."""

    registers: int = 0
    logic_cells: int = 0
    bram_bits: int = 0

    def __add__(self, other):
        return ResourceEstimate(
            registers=self.registers + other.registers,
            logic_cells=self.logic_cells + other.logic_cells,
            bram_bits=self.bram_bits + other.bram_bits,
        )

    def __sub__(self, other):
        return ResourceEstimate(
            registers=self.registers - other.registers,
            logic_cells=self.logic_cells - other.logic_cells,
            bram_bits=self.bram_bits - other.bram_bits,
        )

    def normalized(self, platform):
        """Usage as fractions of a platform's capacity (Figure 3)."""
        return {
            "registers": self.registers / platform.registers,
            "logic": self.logic_cells / platform.logic_cells,
            "bram": self.bram_bits / platform.bram_bits,
        }


def _logic_cost(expr, symbols, lut_inputs):
    """LUT-equivalent count of evaluating *expr* once."""
    if isinstance(expr, (ast.Number, ast.Identifier)):
        return 0
    if isinstance(expr, (ast.Index, ast.PartSelect, ast.IndexedPartSelect)):
        base = _logic_cost(expr.var, symbols, lut_inputs)
        if isinstance(expr, ast.Index) and try_const_eval(expr.index) is None:
            # Variable bit/element select: a mux tree over the source.
            width = self_width(expr, symbols)
            source = self_width(expr.var, symbols)
            base += max(1, (source * width) // (lut_inputs - 2) // 4)
            base += _logic_cost(expr.index, symbols, lut_inputs)
        return base
    if isinstance(expr, ast.Concat):
        return sum(_logic_cost(p, symbols, lut_inputs) for p in expr.parts)
    if isinstance(expr, ast.Repeat):
        return _logic_cost(expr.expr, symbols, lut_inputs)
    if isinstance(expr, ast.SizeCast):
        return _logic_cost(expr.expr, symbols, lut_inputs)
    if isinstance(expr, ast.UnaryOp):
        inner = _logic_cost(expr.operand, symbols, lut_inputs)
        width = self_width(expr.operand, symbols)
        if expr.op in ("~", "-"):
            return inner + max(1, width // lut_inputs + 1)
        # Reductions and logical not collapse through a LUT tree.
        return inner + max(1, math.ceil(width / lut_inputs))
    if isinstance(expr, ast.BinaryOp):
        cost = _logic_cost(expr.left, symbols, lut_inputs)
        cost += _logic_cost(expr.right, symbols, lut_inputs)
        width = max(
            self_width(expr.left, symbols), self_width(expr.right, symbols)
        )
        op = expr.op
        if op in ("&", "|", "^", "~^", "^~"):
            cost += max(1, math.ceil(width / (lut_inputs - 3)))
        elif op in ("+", "-"):
            cost += width  # one carry-chain cell per bit
        elif op == "*":
            cost += max(4, (width * width) // 4)
        elif op in ("/", "%"):
            cost += max(8, width * width // 2)
        elif op in ("==", "!=", "===", "!=="):
            cost += max(1, math.ceil(width / 3))
        elif op in ("<", "<=", ">", ">="):
            cost += max(1, math.ceil(width / 2))
        elif op in ("<<", ">>", "<<<", ">>>"):
            if try_const_eval(expr.right) is None:
                shift_levels = max(1, math.ceil(math.log2(max(width, 2))))
                cost += width * shift_levels // 2
        elif op in ("&&", "||"):
            cost += 1
        return cost
    if isinstance(expr, ast.Ternary):
        width = self_width(expr, symbols)
        return (
            _logic_cost(expr.cond, symbols, lut_inputs)
            + _logic_cost(expr.iftrue, symbols, lut_inputs)
            + _logic_cost(expr.iffalse, symbols, lut_inputs)
            + max(1, math.ceil(width / 2))
        )
    raise TypeError("cannot cost %r" % (expr,))


def _ip_resources(inst):
    """Resource contribution of one blackbox IP instance."""
    params = {p.name: const_eval(p.value) for p in inst.params}
    estimate = ResourceEstimate()
    if inst.module_name == "signal_recorder":
        width = int(params.get("WIDTH", 32))
        depth = int(params.get("DEPTH", 8192))
        estimate.bram_bits += width * depth
        address_bits = max(1, math.ceil(math.log2(max(depth, 2))))
        # Sample staging register, write pointer, control.
        estimate.registers += width + address_bits + 8
        estimate.logic_cells += width // 2 + address_bits + 8
    elif inst.module_name in ("scfifo", "dcfifo"):
        width = int(params.get("LPM_WIDTH", 32))
        depth = int(params.get("LPM_NUMWORDS", 16))
        estimate.bram_bits += width * depth
        pointer_bits = max(1, math.ceil(math.log2(max(depth, 2))))
        pointers = 2 if inst.module_name == "scfifo" else 4
        estimate.registers += pointers * pointer_bits + 4
        estimate.logic_cells += pointers * pointer_bits + 8
    elif inst.module_name == "altsyncram":
        width = int(params.get("WIDTH_A", 32))
        depth = int(params.get("NUMWORDS_A", 256))
        estimate.bram_bits += width * depth
        estimate.registers += 2 * width  # registered q_a / q_b
        estimate.logic_cells += 8
    else:
        # Unknown blackbox: charge a token amount so it is not free.
        estimate.logic_cells += 16
    return estimate


def estimate_resources(design, lut_inputs=6):
    """Estimate the resources of an elaborated design.

    *design* may be a :class:`Design` or a flat module. ``lut_inputs``
    matches the platform's LUT architecture.
    """
    module = design.top if isinstance(design, Design) else design
    symbols = SymbolTable(module)
    view = analyze_module(module)
    estimate = ResourceEstimate()
    sequential_targets = {
        record.target for record in view.assignments if record.sequential
    }
    for decl in module.declarations():
        if decl.kind is not ast.NetKind.REG:
            continue
        bits = decl.bit_width * decl.array_depth
        if decl.array is not None and bits > BRAM_THRESHOLD_BITS:
            estimate.bram_bits += bits
        elif decl.name in sequential_targets or decl.array is not None:
            estimate.registers += bits
    for record in view.assignments:
        estimate.logic_cells += _logic_cost(record.rhs, symbols, lut_inputs)
        if record.condition is not None:
            estimate.logic_cells += _logic_cost(
                record.condition, symbols, lut_inputs
            )
            if record.sequential:
                # Conditional load: an enable/data mux in front of the
                # register.
                width = self_width(record.lhs, symbols) if not isinstance(
                    record.lhs, ast.Concat
                ) else 1
                estimate.logic_cells += max(1, width // 2)
    for item in module.items:
        if isinstance(item, ast.Instance):
            estimate = estimate + _ip_resources(item)
    return estimate


def overhead(instrumented, baseline):
    """Resource overhead of instrumentation: instrumented - baseline."""
    return instrumented - baseline
