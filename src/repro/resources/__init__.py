"""Synthesis resource and timing estimation (stands in for Quartus/Vivado).

Used by the Figure 2 / Figure 3 benchmark harnesses and the §6.4
frequency results.
"""

from .platforms import HARP, KC705, PlatformModel, platform_for
from .estimator import (
    BRAM_THRESHOLD_BITS,
    ResourceEstimate,
    estimate_resources,
    overhead,
)
from .timing import (
    RECORDER_WIDE_THRESHOLD,
    TimingReport,
    achievable_frequency,
    estimate_timing,
)

__all__ = [
    "PlatformModel",
    "HARP",
    "KC705",
    "platform_for",
    "ResourceEstimate",
    "estimate_resources",
    "overhead",
    "BRAM_THRESHOLD_BITS",
    "TimingReport",
    "estimate_timing",
    "achievable_frequency",
    "RECORDER_WIDE_THRESHOLD",
]
