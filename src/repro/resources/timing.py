"""Frequency (Fmax) estimation for the §6.4 timing results.

Two effects bound an instrumented design's clock:

1. **Design logic depth** — the longest register-to-register
   combinational path, estimated per logic level through the expression
   graph (carry chains and LUT packing make equality tests and small
   bitwise ops a single level; adders cost roughly one level per 16
   bits on the carry chain; variable shifts cost a mux level per stage).
2. **The recording IP** — vendor trace IPs (SignalTap/ILA) close timing
   comfortably for narrow sample words but add a wide capture mux for
   wide ones; the platform model carries the two Fmax bins. This is what
   makes Optimus — whose debug configuration samples a wide word — miss
   its 400 MHz target and fall back to 200 MHz while every other design
   keeps its target (§6.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..hdl import ast_nodes as ast
from ..hdl.elaborate import Design
from ..hdl.transform import const_eval, try_const_eval
from ..analysis.assignments import analyze_module
from ..sim.values import SymbolTable, self_width

#: Sample words wider than this use the recording IP's wide (slow) bin.
RECORDER_WIDE_THRESHOLD = 96


def _expr_levels(expr, symbols, signal_depth):
    """Logic levels through *expr*, given each signal's arrival depth."""
    if isinstance(expr, ast.Number):
        return 0
    if isinstance(expr, ast.Identifier):
        return signal_depth.get(expr.name, 0)
    if isinstance(expr, (ast.PartSelect, ast.IndexedPartSelect)):
        return _expr_levels(expr.var, symbols, signal_depth)
    if isinstance(expr, ast.Index):
        base = _expr_levels(expr.var, symbols, signal_depth)
        if try_const_eval(expr.index) is None:
            index = _expr_levels(expr.index, symbols, signal_depth)
            width = self_width(expr.var, symbols)
            mux_levels = max(1, math.ceil(math.log2(max(width, 2))) // 2)
            return max(base, index) + mux_levels
        return base
    if isinstance(expr, (ast.Concat,)):
        return max(
            (_expr_levels(p, symbols, signal_depth) for p in expr.parts),
            default=0,
        )
    if isinstance(expr, (ast.Repeat, ast.SizeCast)):
        inner = expr.expr
        return _expr_levels(inner, symbols, signal_depth)
    if isinstance(expr, ast.UnaryOp):
        inner = _expr_levels(expr.operand, symbols, signal_depth)
        width = self_width(expr.operand, symbols)
        if expr.op == "~" or (expr.op == "!" and width == 1):
            return inner  # absorbed into the consuming LUT
        if expr.op == "-":
            return inner + 1 + width // 16
        return inner + max(1, math.ceil(math.log2(max(width, 2))) // 2)
    if isinstance(expr, ast.BinaryOp):
        left = _expr_levels(expr.left, symbols, signal_depth)
        right = _expr_levels(expr.right, symbols, signal_depth)
        width = max(
            self_width(expr.left, symbols), self_width(expr.right, symbols)
        )
        op = expr.op
        if op in ("&&", "||"):
            # Control conjunction chains pack into wide-input LUT trees;
            # the consuming mux level (added at the register) covers them.
            cost = 0
        elif op in ("&", "|", "^", "~^", "^~"):
            cost = 1
        elif op in ("+", "-"):
            cost = max(1, width // 16)  # fast carry chain
        elif op == "*":
            cost = 2 + width // 8
        elif op in ("/", "%"):
            cost = 4 + width // 4
        elif op in ("==", "!=", "===", "!=="):
            cost = 1 if width <= 9 else 2
        elif op in ("<", "<=", ">", ">="):
            cost = 1 + width // 16
        elif op in ("<<", ">>", "<<<", ">>>"):
            if try_const_eval(expr.right) is None:
                cost = max(1, math.ceil(math.log2(max(width, 2))) // 2)
            else:
                cost = 0
        else:
            cost = 1
        return max(left, right) + cost
    if isinstance(expr, ast.Ternary):
        return (
            max(
                _expr_levels(expr.cond, symbols, signal_depth),
                _expr_levels(expr.iftrue, symbols, signal_depth),
                _expr_levels(expr.iffalse, symbols, signal_depth),
            )
            + 1
        )
    raise TypeError("cannot estimate levels for %r" % (expr,))


@dataclass
class TimingReport:
    """Fmax estimate for one (possibly instrumented) design."""

    logic_depth: int
    design_fmax_mhz: float
    recorder_fmax_mhz: float
    fmax_mhz: float
    recorder_width: int = 0

    def meets(self, target_mhz):
        """True if the design closes timing at *target_mhz*."""
        return self.fmax_mhz >= target_mhz


def _comb_signal_depths(module, symbols):
    """Arrival depth of every combinationally-driven signal."""
    view = analyze_module(module)
    depths = {}
    comb = [r for r in view.assignments if not r.sequential]
    # Iterate to a fixed point (combinational graphs are shallow).
    for _ in range(len(comb) + 1):
        changed = False
        for record in comb:
            level = _expr_levels(record.rhs, symbols, depths)
            if record.condition is not None:
                level = max(
                    level,
                    _expr_levels(record.condition, symbols, depths) + 1,
                )
            if depths.get(record.target, -1) < level:
                depths[record.target] = level
                changed = True
        if not changed:
            break
    return depths, view


def estimate_timing(design, platform, recorder_width=0):
    """Estimate the achievable clock frequency of *design*.

    ``recorder_width`` is the recording IP's sample width (0 when no
    recorder is instantiated); the IP's own Fmax bin caps the result.
    """
    module = design.top if isinstance(design, Design) else design
    symbols = SymbolTable(module)
    depths, view = _comb_signal_depths(module, symbols)
    worst = 1
    for record in view.assignments:
        if not record.sequential:
            continue
        level = _expr_levels(record.rhs, symbols, depths)
        if record.condition is not None:
            level = max(
                level, _expr_levels(record.condition, symbols, depths)
            ) + 1
        worst = max(worst, level)
    for item in module.items:
        if isinstance(item, ast.Instance):
            for conn in item.ports:
                if conn.expr is not None:
                    worst = max(
                        worst,
                        _expr_levels(conn.expr, symbols, depths),
                    )
            if item.module_name == "signal_recorder":
                for param in item.params:
                    if param.name == "WIDTH":
                        recorder_width = max(
                            recorder_width, const_eval(param.value)
                        )
    period = platform.t_overhead_ns + worst * platform.t_level_ns
    design_fmax = 1000.0 / period
    if recorder_width == 0:
        recorder_fmax = float("inf")
    elif recorder_width <= RECORDER_WIDE_THRESHOLD:
        recorder_fmax = platform.recorder_fmax_narrow
    else:
        recorder_fmax = platform.recorder_fmax_wide
    return TimingReport(
        logic_depth=worst,
        design_fmax_mhz=design_fmax,
        recorder_fmax_mhz=recorder_fmax,
        fmax_mhz=min(design_fmax, recorder_fmax),
        recorder_width=recorder_width,
    )


def achievable_frequency(report, target_mhz):
    """The frequency the design runs at, honouring the §6.4 fallback.

    Designs that meet their target keep it; a design that misses its
    target falls back to the next standard grade (400 -> 200 MHz), as
    the paper does for Optimus.
    """
    if report.meets(target_mhz):
        return target_mhz
    fallback = target_mhz
    while fallback > report.fmax_mhz and fallback > 50:
        fallback //= 2
    return fallback
