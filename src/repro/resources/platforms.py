"""FPGA platform capacity models (§6.2).

The paper synthesizes HARP-specific designs to the Intel HARP platform
(an Arria 10 GX 1150) with Quartus 17.0 and everything else to the
Xilinx KC705 (a Kintex-7 325T) with Vivado 2020.2. These records hold
the device capacities used to normalize overheads (Figure 3) and the
recording-IP timing model used for the §6.4 frequency results.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PlatformModel:
    """Capacity and timing characteristics of one target platform."""

    name: str
    device: str
    #: Total flip-flops.
    registers: int
    #: Total logic cells (ALMs on Intel, LUTs on Xilinx).
    logic_cells: int
    #: Total block RAM bits.
    bram_bits: int
    #: LUT input count used by the logic-packing estimate.
    lut_inputs: int
    #: Register clock-to-out + setup, ns (fixed per-path overhead).
    t_overhead_ns: float
    #: Delay per logic level, ns.
    t_level_ns: float
    #: Recording-IP Fmax for narrow (<= 96-bit) sample words, MHz.
    recorder_fmax_narrow: float
    #: Recording-IP Fmax for wide sample words, MHz.
    recorder_fmax_wide: float


#: Intel HARP: Arria 10 GX 1150 (Quartus 17.0 target, §6.2).
HARP = PlatformModel(
    name="Intel HARP",
    device="Arria 10 GX 1150",
    registers=1_708_800,
    logic_cells=427_200,
    bram_bits=55_562_240,
    lut_inputs=6,
    t_overhead_ns=0.70,
    t_level_ns=0.35,
    recorder_fmax_narrow=420.0,
    recorder_fmax_wide=340.0,
)

#: Xilinx KC705: Kintex-7 325T (Vivado 2020.2 target, §6.2).
KC705 = PlatformModel(
    name="Xilinx KC705",
    device="Kintex-7 325T",
    registers=407_600,
    logic_cells=203_800,
    bram_bits=16_404_480,
    lut_inputs=6,
    t_overhead_ns=0.75,
    t_level_ns=0.40,
    recorder_fmax_narrow=400.0,
    recorder_fmax_wide=320.0,
)


def platform_for(spec):
    """The synthesis platform for a testbed bug (§6.2 grouping)."""
    from ..testbed.metadata import Platform

    return HARP if spec.platform is Platform.HARP else KC705
