"""Shared runtime-resilience utilities for long-running campaigns.

The campaign runners (:mod:`repro.fuzz.runner`, :mod:`repro.faults.campaign`,
:mod:`repro.repair.search`) and the job server (:mod:`repro.serve`) all
execute work against designs that may hang, crash, or fail transiently.
This module concentrates the machinery they share:

* :func:`time_limit` — a wall-clock watchdog built on ``SIGALRM`` (a
  no-op on platforms without it, e.g. Windows). ``SIGALRM`` can only be
  armed on the main thread; off-main-thread callers get a clear
  :class:`RuntimeError` pointing them at the process-kill watchdog
  (:class:`repro.serve.watchdog.DeadlineWatchdog`) instead;
* :func:`retry_with_backoff` — bounded retries with exponential backoff
  and optional jitter for transiently failing work;
* :class:`JsonlJournal` — crash-safe incremental journaling: one JSON
  record per line, flushed and fsynced per append, tolerant of a torn
  final line (and of corrupt interior lines) when reloading after a
  crash.
"""

from __future__ import annotations

import json
import os
import random
import signal
import threading
import time
from contextlib import contextmanager


class TimeLimitExceeded(Exception):
    """Raised inside :func:`time_limit` when the wall-clock budget runs out."""


HAS_ALARM = hasattr(signal, "SIGALRM")


@contextmanager
def time_limit(seconds):
    """Raise :class:`TimeLimitExceeded` after *seconds* of wall clock.

    Uses ``setitimer``/``SIGALRM``, so it interrupts pure-Python loops
    (the simulator's settle loop, a runaway scenario) that a cooperative
    check would never reach. Nested limits restore the outer handler and
    remaining budget. A falsy *seconds* — or a platform without
    ``SIGALRM`` — disables the limit entirely.

    ``SIGALRM`` handlers can only be installed from the main thread, so
    arming a limit anywhere else raises :class:`RuntimeError` up front
    (instead of the cryptic ``ValueError`` ``signal`` would emit).
    Worker threads that need a wall-clock bound should run the work in a
    subprocess monitored by
    :class:`repro.serve.watchdog.DeadlineWatchdog`, which kills the
    child on a monotonic deadline and works from any thread.
    """
    if not seconds or not HAS_ALARM:
        yield
        return
    if threading.current_thread() is not threading.main_thread():
        raise RuntimeError(
            "time_limit() arms SIGALRM and only works on the main thread; "
            "run the work in a subprocess under "
            "repro.serve.watchdog.DeadlineWatchdog instead"
        )

    def handler(signum, frame):
        raise TimeLimitExceeded("exceeded %.1fs wall-clock budget" % seconds)

    old_handler = signal.signal(signal.SIGALRM, handler)
    old_delay, old_interval = signal.setitimer(signal.ITIMER_REAL, seconds)
    started = time.monotonic()
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, old_handler)
        if old_delay:
            remaining = max(0.001, old_delay - (time.monotonic() - started))
            signal.setitimer(signal.ITIMER_REAL, remaining, old_interval)


def retry_with_backoff(
    func,
    retries=2,
    base_delay=0.5,
    factor=2.0,
    jitter=0.0,
    retry_on=(TimeLimitExceeded,),
    sleep=time.sleep,
    on_retry=None,
    rng=None,
):
    """Call *func()* with up to *retries* retries on *retry_on* failures.

    Waits ``base_delay * factor**attempt`` seconds between attempts
    (exponential backoff). *jitter*, when non-zero, scales each wait by
    a uniform factor in ``[1, 1 + jitter]`` so a fleet of workers
    retrying the same hiccup does not thunder back in lockstep; *rng*
    (a zero-argument callable returning ``[0, 1)``) is injectable for
    deterministic tests and defaults to :func:`random.random`.
    *on_retry*, when given, is called with ``(attempt_number,
    exception)`` before each wait — campaign runners use it for
    progress lines and metrics. The final failure propagates.

    Returns ``(result, attempts)`` where *attempts* counts executions.
    """
    if rng is None:
        rng = random.random
    attempt = 0
    while True:
        attempt += 1
        try:
            return func(), attempt
        except retry_on as exc:
            if attempt > retries:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            delay = base_delay * (factor ** (attempt - 1))
            if jitter:
                delay *= 1.0 + jitter * rng()
            sleep(delay)


def backoff_delay(attempt, base_delay=0.5, factor=2.0, jitter=0.0, rng=None):
    """The wait before retry number *attempt* (1-based), with jitter.

    The same schedule :func:`retry_with_backoff` uses, exposed for
    callers that requeue work instead of looping in place (the serve
    worker pool re-enqueues killed jobs rather than blocking a retry
    loop on one worker slot).
    """
    if rng is None:
        rng = random.random
    delay = base_delay * (factor ** (max(1, attempt) - 1))
    if jitter:
        delay *= 1.0 + jitter * rng()
    return delay


class JsonlJournal:
    """Append-only JSON-lines journal with crash-safe incremental writes.

    Every :meth:`append` writes one compact JSON record, flushes, and
    fsyncs, so an interrupted campaign loses at most the record being
    written when the process died. :meth:`load` tolerates the two ways a
    journal gets damaged in the field instead of raising
    ``json.JSONDecodeError``:

    * a *torn final line* (crash mid-append) is skipped and counted on
      the ``runtime.journal.truncated`` obs counter;
    * a *corrupt interior line* (bit rot, or two uncoordinated writers
      interleaving) is skipped — not silently discarding everything
      after it — and counted on ``runtime.journal.corrupt``.

    Appends are a single ``write`` on an ``O_APPEND`` handle, so
    multiple processes may safely append to one journal; reloads see
    every intact record.
    """

    def __init__(self, path):
        self.path = path
        self._handle = None
        self._lock = threading.Lock()

    def load(self, dedupe=None):
        """All intact records currently in the journal (oldest first).

        *dedupe*, when given, maps a record to a hashable key or None;
        a record whose key was already seen is dropped (first write
        wins) and counted on ``runtime.journal.duplicate``. Records
        keyed None are never deduplicated. A crashed writer that
        re-appends an event it already journaled — the double-``done``
        hazard ``--resume`` must survive — is thereby invisible to
        callers who declare the event's identity.
        """
        records = []
        if not os.path.exists(self.path):
            return records
        from . import obs

        with open(self.path, "r") as handle:
            lines = handle.readlines()
        last_index = len(lines) - 1
        seen = set()
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                if index == last_index:
                    # Torn write from a crash mid-append: drop the tail.
                    if obs.enabled:
                        obs.counter("runtime.journal.truncated").inc()
                else:
                    # Damaged interior record: skip it, keep the rest.
                    if obs.enabled:
                        obs.counter("runtime.journal.corrupt").inc()
                continue
            if dedupe is not None:
                key = dedupe(record)
                if key is not None:
                    if key in seen:
                        if obs.enabled:
                            obs.counter("runtime.journal.duplicate").inc()
                        continue
                    seen.add(key)
            records.append(record)
        return records

    def append(self, record):
        """Durably append one JSON-serializable *record* (thread-safe)."""
        with self._lock:
            if self._handle is None:
                directory = os.path.dirname(self.path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                self._handle = open(self.path, "a")
            self._handle.write(
                json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
            )
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self):
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
