"""Shared runtime-resilience utilities for long-running campaigns.

Both campaign runners (:mod:`repro.fuzz.runner` and
:mod:`repro.faults.campaign`) execute thousands of cases against designs
that may hang, crash, or fail transiently. This module concentrates the
machinery they share:

* :func:`time_limit` — a wall-clock watchdog built on ``SIGALRM`` (a
  no-op on platforms without it, e.g. Windows);
* :func:`retry_with_backoff` — bounded retries with exponential backoff
  for transiently failing work;
* :class:`JsonlJournal` — crash-safe incremental journaling: one JSON
  record per line, flushed and fsynced per append, tolerant of a torn
  final line when reloading after a crash.
"""

from __future__ import annotations

import json
import os
import signal
import time
from contextlib import contextmanager


class TimeLimitExceeded(Exception):
    """Raised inside :func:`time_limit` when the wall-clock budget runs out."""


HAS_ALARM = hasattr(signal, "SIGALRM")


@contextmanager
def time_limit(seconds):
    """Raise :class:`TimeLimitExceeded` after *seconds* of wall clock.

    Uses ``setitimer``/``SIGALRM``, so it interrupts pure-Python loops
    (the simulator's settle loop, a runaway scenario) that a cooperative
    check would never reach. Nested limits restore the outer handler and
    remaining budget. A falsy *seconds* — or a platform without
    ``SIGALRM`` — disables the limit entirely.
    """
    if not seconds or not HAS_ALARM:
        yield
        return

    def handler(signum, frame):
        raise TimeLimitExceeded("exceeded %.1fs wall-clock budget" % seconds)

    old_handler = signal.signal(signal.SIGALRM, handler)
    old_delay, old_interval = signal.setitimer(signal.ITIMER_REAL, seconds)
    started = time.monotonic()
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, old_handler)
        if old_delay:
            remaining = max(0.001, old_delay - (time.monotonic() - started))
            signal.setitimer(signal.ITIMER_REAL, remaining, old_interval)


def retry_with_backoff(
    func,
    retries=2,
    base_delay=0.5,
    factor=2.0,
    retry_on=(TimeLimitExceeded,),
    sleep=time.sleep,
    on_retry=None,
):
    """Call *func()* with up to *retries* retries on *retry_on* failures.

    Waits ``base_delay * factor**attempt`` seconds between attempts
    (exponential backoff). *on_retry*, when given, is called with
    ``(attempt_number, exception)`` before each wait — campaign runners
    use it for progress lines and metrics. The final failure propagates.

    Returns ``(result, attempts)`` where *attempts* counts executions.
    """
    attempt = 0
    while True:
        attempt += 1
        try:
            return func(), attempt
        except retry_on as exc:
            if attempt > retries:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(base_delay * (factor ** (attempt - 1)))


class JsonlJournal:
    """Append-only JSON-lines journal with crash-safe incremental writes.

    Every :meth:`append` writes one compact JSON record, flushes, and
    fsyncs, so an interrupted campaign loses at most the record being
    written when the process died. :meth:`load` skips a torn final line,
    letting a resumed campaign trust everything it reads.
    """

    def __init__(self, path):
        self.path = path
        self._handle = None

    def load(self):
        """All intact records currently in the journal (oldest first)."""
        records = []
        if not os.path.exists(self.path):
            return records
        with open(self.path, "r") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    # Torn write from a crash mid-append: drop the tail.
                    break
        return records

    def append(self, record):
        """Durably append one JSON-serializable *record*."""
        if self._handle is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a")
        self._handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
