"""AST mutation operators for fuzzing the HDL stack with realistic bugs.

Two families, following the mutation-based tool-bug-detection literature:

* **semantics-preserving** mutations rewrite a design without changing
  its cycle-accurate behavior (commutative operand swaps, double
  negation, if/else inversion, block wrapping, signal renames). Any
  oracle violation on a preserving mutant is a stack bug by
  construction.
* **semantics-perturbing** mutations inject the paper's bug classes
  (erroneous expressions, off-by-one misindexing, bit truncation,
  blocking/nonblocking races, dropped statements). They broaden the
  input distribution beyond what the generator emits — the oracles must
  still hold on the perturbed design, because instrumentation
  invariance and backend equivalence are properties of the *tools*, not
  of design correctness.

Entry point: :func:`mutate_source`. Every candidate mutation carries a
:class:`MutationAnchor` naming the source lines and signals it touches,
so callers — the repair subsystem's template enumeration in particular —
can target a *specific* AST site (``site="file.v:42"`` or
``site="resp"``) instead of the seeded random choice the fuzzer uses.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field

from ..hdl import ast_nodes as ast
from ..hdl import parse
from ..hdl.codegen import generate_source

#: Perturbing operator substitutions (never introduces shifts, whose
#: width semantics would allow huge intermediate values).
_FLIP_OPS = {
    "+": "-", "-": "+", "*": "+",
    "&": "|", "|": "&", "^": "&",
    "==": "!=", "!=": "==",
    "<": "<=", "<=": "<", ">": ">=", ">=": ">",
    "&&": "||", "||": "&&",
}

_COMMUTATIVE_OPS = frozenset(["+", "*", "&", "|", "^", "==", "!="])


@dataclass
class MutationResult:
    """One applied mutation: new source text plus what was done."""

    text: str
    name: str
    preserving: bool
    description: str


@dataclass(frozen=True)
class MutationAnchor:
    """Where a candidate mutation would land: source lines + signals."""

    lines: frozenset = field(default_factory=frozenset)
    signals: frozenset = field(default_factory=frozenset)

    def matches(self, target):
        """True when this anchor hits a :func:`parse_site` target."""
        kind, value = target
        if kind == "line":
            return value in self.lines
        return value in self.signals


def parse_site(site):
    """Normalize a site spec into ``("line", N)`` or ``("signal", name)``.

    Accepts an int line number, a ``"file.v:42"``-style location (the
    file part is informational — mutation operates on one source), a
    bare line-number string, or a signal name.
    """
    if site is None:
        return None
    if isinstance(site, int):
        return ("line", site)
    text = str(site).strip()
    if ":" in text:
        tail = text.rsplit(":", 1)[1]
        if tail.isdigit():
            return ("line", int(tail))
    if text.isdigit():
        return ("line", int(text))
    return ("signal", text)


def _node_signals(node):
    """All identifier names inside *node*'s subtree."""
    return frozenset(
        n.name for n in node.walk() if isinstance(n, ast.Identifier)
    )


def _build_anchor_maps(source):
    """Per-node position context: ``(line_map, signal_map)``.

    Expressions carry no position of their own; they inherit the line
    of the innermost statement/item that does (0 when nothing does —
    synthesized code) and the signal set of that enclosing statement,
    so ``site="q"`` finds the constants inside ``q``'s assignment too.
    """
    lines = {}
    signals = {}

    def visit(node, current_line, current_signals):
        line = getattr(node, "lineno", 0) or current_line
        if isinstance(node, (ast.Statement, ast.ModuleItem)):
            current_signals = _node_signals(node)
        lines[id(node)] = line
        signals[id(node)] = current_signals
        for child in node.children():
            visit(child, line, current_signals)

    for module in source.modules:
        for item in module.items:
            visit(item, getattr(item, "lineno", 0) or 0, frozenset())
    return lines, signals


def _anchor(maps, node, extra_signals=()):
    """The :class:`MutationAnchor` for a candidate editing *node*."""
    line_map, signal_map = maps
    return MutationAnchor(
        lines=frozenset({line_map.get(id(node), 0)}),
        signals=(
            signal_map.get(id(node), frozenset())
            | _node_signals(node)
            | frozenset(extra_signals)
        ),
    )


#: Public names for the anchor machinery: the repair subsystem's
#: template enumeration reuses the same site model as the mutator.
node_signals = _node_signals
build_anchor_maps = _build_anchor_maps
anchor_of = _anchor


def _walk_statements(stmt, blocks):
    """Collect every Block node reachable from *stmt*."""
    for node in stmt.walk():
        if isinstance(node, ast.Block) and node.statements:
            blocks.append(node)


def _candidates(source):
    """Collect (name, preserving, apply) mutation closures over *source*.

    ``apply`` mutates the (already copied) tree in place and returns a
    short human-readable description.
    """
    maps = _build_anchor_maps(source)
    cands = []
    exprs = []
    ifs = []
    ternaries = []
    numbers = []
    indexes = []
    blocks = []
    nonblocking = []
    assigns = []

    for module in source.modules:
        for item in module.items:
            if isinstance(item, (ast.ContinuousAssign,)):
                assigns.append(item)
            if isinstance(item, ast.Always):
                _walk_statements(item.body, blocks)
            for node in item.walk():
                if isinstance(node, ast.BinaryOp):
                    exprs.append(node)
                elif isinstance(node, ast.If):
                    ifs.append(node)
                elif isinstance(node, ast.Ternary):
                    ternaries.append(node)
                elif isinstance(node, ast.Number) and not isinstance(
                    item, (ast.Declaration, ast.ParameterDecl)
                ):
                    numbers.append(node)
                elif isinstance(node, ast.Index):
                    indexes.append(node)
                elif isinstance(node, ast.NonblockingAssign):
                    nonblocking.append(node)

    # -- semantics-preserving ------------------------------------------------

    for node in exprs:
        if node.op in _COMMUTATIVE_OPS:
            def swap(node=node):
                node.left, node.right = node.right, node.left
                return "swapped operands of commutative %r" % node.op
            cands.append(
                ("swap_commutative", True, swap, _anchor(maps, node))
            )

    for node in ifs:
        def double_negate(node=node):
            node.cond = ast.UnaryOp(
                op="!", operand=ast.UnaryOp(op="!", operand=node.cond)
            )
            return "double-negated an if condition"
        cands.append(
            ("double_negate_cond", True, double_negate, _anchor(maps, node))
        )
        if node.else_stmt is not None:
            def invert(node=node):
                node.cond = ast.UnaryOp(op="!", operand=node.cond)
                node.then_stmt, node.else_stmt = node.else_stmt, node.then_stmt
                return "negated an if condition and swapped its branches"
            cands.append(
                ("invert_if_else", True, invert, _anchor(maps, node))
            )

    for block in blocks:
        for index in range(len(block.statements)):
            def wrap(block=block, index=index):
                block.statements[index] = ast.Block(
                    statements=[block.statements[index]]
                )
                return "wrapped a statement in begin/end"
            cands.append((
                "wrap_block", True, wrap,
                _anchor(maps, block.statements[index]),
            ))

    regs = [
        decl.name
        for module in source.modules
        for decl in module.declarations()
        if decl.kind is ast.NetKind.REG
        and decl.array is None
        and decl.name not in {p.name for p in module.ports}
    ]
    for name in regs:
        def rename(name=name, source=source):
            replacement = name + "_renamed"
            for module in source.modules:
                if module.find_declaration(name) is None:
                    continue
                for item in module.items:
                    if isinstance(item, ast.Declaration) and item.name == name:
                        item.name = replacement
                    for node in item.walk():
                        if isinstance(node, ast.Identifier) and node.name == name:
                            node.name = replacement
                return "renamed register %s -> %s" % (name, replacement)
            return "rename skipped"
        cands.append((
            "rename_register", True, rename,
            MutationAnchor(signals=frozenset({name})),
        ))

    # -- semantics-perturbing ------------------------------------------------

    for node in exprs:
        if node.op in _FLIP_OPS:
            def flip(node=node):
                old = node.op
                node.op = _FLIP_OPS[old]
                return "flipped operator %r -> %r" % (old, node.op)
            cands.append(
                ("flip_binop", False, flip, _anchor(maps, node))
            )

    for node in numbers:
        def tweak(node=node):
            old = node.value
            delta = 1 if old == 0 else random.Random(old).choice((1, -1))
            node.value = old + delta
            if node.width is not None:
                node.value &= (1 << node.width) - 1
            return "tweaked constant %d -> %d" % (old, node.value)
        cands.append(
            ("tweak_constant", False, tweak, _anchor(maps, node))
        )

    for node in ifs:
        def negate(node=node):
            node.cond = ast.UnaryOp(op="!", operand=node.cond)
            return "negated an if condition (branches kept)"
        cands.append(
            ("negate_condition", False, negate, _anchor(maps, node))
        )

    for node in ternaries:
        def swap_arms(node=node):
            node.iftrue, node.iffalse = node.iffalse, node.iftrue
            return "swapped ternary arms"
        cands.append(
            ("swap_ternary_arms", False, swap_arms, _anchor(maps, node))
        )

    for node in indexes:
        def off_by_one(node=node):
            node.index = ast.BinaryOp(
                op="+", left=node.index, right=ast.Number(value=1)
            )
            return "off-by-one index (misindexing)"
        cands.append(
            ("off_by_one_index", False, off_by_one, _anchor(maps, node))
        )

    for node in nonblocking:
        def make_blocking(node=node, source=source):
            for module in source.modules:
                for item in module.items:
                    if not isinstance(item, ast.Always):
                        continue
                    replaced = _replace_nonblocking(item.body, node)
                    if replaced:
                        return "nonblocking -> blocking assignment (race)"
            return "assignment left unchanged"
        cands.append((
            "nonblocking_to_blocking", False, make_blocking,
            _anchor(maps, node),
        ))

    for block in blocks:
        if len(block.statements) > 1:
            for index in range(len(block.statements)):
                def drop(block=block, index=index):
                    del block.statements[index]
                    return "dropped a statement (incomplete implementation)"
                cands.append((
                    "drop_statement", False, drop,
                    _anchor(maps, block.statements[index]),
                ))

    for node in assigns:
        def truncate(node=node):
            node.rhs = ast.SizeCast(width=2, expr=node.rhs)
            return "truncated an assign rhs to 2 bits (bit truncation)"
        cands.append(
            ("truncate_assign", False, truncate, _anchor(maps, node))
        )

    return cands


def _replace_nonblocking(stmt, target):
    """Swap *target* for a BlockingAssign inside *stmt*; True on success."""
    if isinstance(stmt, ast.Block):
        for index, inner in enumerate(stmt.statements):
            if inner is target:
                stmt.statements[index] = ast.BlockingAssign(
                    lhs=target.lhs, rhs=target.rhs, lineno=target.lineno
                )
                return True
            if _replace_nonblocking(inner, target):
                return True
        return False
    if isinstance(stmt, ast.If):
        if stmt.then_stmt is target:
            stmt.then_stmt = ast.BlockingAssign(
                lhs=target.lhs, rhs=target.rhs, lineno=target.lineno
            )
            return True
        if _replace_nonblocking(stmt.then_stmt, target):
            return True
        if stmt.else_stmt is not None:
            if stmt.else_stmt is target:
                stmt.else_stmt = ast.BlockingAssign(
                    lhs=target.lhs, rhs=target.rhs, lineno=target.lineno
                )
                return True
            return _replace_nonblocking(stmt.else_stmt, target)
        return False
    if isinstance(stmt, ast.Case):
        for item in stmt.items:
            if item.stmt is target:
                item.stmt = ast.BlockingAssign(
                    lhs=target.lhs, rhs=target.rhs, lineno=target.lineno
                )
                return True
            if _replace_nonblocking(item.stmt, target):
                return True
    return False


def mutation_names(preserving=None):
    """All operator names, optionally filtered by family."""
    names = []
    seen = set()
    for name, is_preserving, _, _ in _candidates(parse(_PROBE)):
        if preserving is not None and is_preserving != preserving:
            continue
        if name not in seen:
            seen.add(name)
            names.append(name)
    return names


_PROBE = """
module probe (input wire clk, input wire a, output reg [3:0] q);
    reg [3:0] t;
    reg [3:0] m [0:3];
    wire [3:0] w;
    assign w = (t + 1);
    always @(posedge clk) begin
        if (a) begin
            q <= (a ? t : w);
            m[t] <= 2;
        end
        else begin
            t <= (q & 3);
            q <= 0;
        end
    end
endmodule
"""


def mutate_source(text, seed, preserving=None, site=None):
    """Apply one random mutation to Verilog *text*.

    ``preserving`` selects the family: True for semantics-preserving
    only, False for perturbing only, None for either. ``site``
    restricts candidates to a specific AST location: an int or
    ``"file.v:42"`` string targets a source line, any other string
    targets a signal name. Returns a :class:`MutationResult`, or None
    when no operator applies.
    """
    rng = random.Random(seed)
    source = copy.deepcopy(parse(text))
    cands = _candidates(source)
    if preserving is not None:
        cands = [c for c in cands if c[1] == preserving]
    target = parse_site(site)
    if target is not None:
        cands = [c for c in cands if c[3].matches(target)]
    if not cands:
        return None
    name, is_preserving, apply_fn, _ = rng.choice(cands)
    description = apply_fn()
    return MutationResult(
        text=generate_source(source),
        name=name,
        preserving=is_preserving,
        description=description,
    )
