"""Random-but-valid Verilog design generation for fuzz campaigns.

The generator builds an AST directly (so every emitted design is within
the subset :mod:`repro.hdl.parser` accepts) and renders it through
:mod:`repro.hdl.codegen`, which means every generated case also
exercises the parse/codegen round-trip. Designs are seeded and
size-bounded: the same ``(seed, config)`` pair always produces the same
module, which is what makes campaign runs reproducible across
``--jobs`` settings.

Structural guarantees (what makes a generated design *valid*):

* combinational signals are defined in strict dependency order, so the
  settle loop always converges (no combinational cycles);
* every ``always @(*)`` register is assigned a default before any
  conditional assignment (the two-process FSM idiom);
* shift amounts come from narrow operands only, so compiled expressions
  cannot allocate astronomically wide intermediate integers;
* memories are only referenced through an index, clocked registers are
  written by exactly one ``always`` block, and blackbox IP outputs feed
  dedicated wires that nothing else drives.

Generated designs cover the constructs the paper's testbed uses:
edge-triggered and combinational ``always`` blocks, continuous assigns,
FSM ``case`` idioms, memories with indexed reads/writes, ``$display``
statements, ``for`` loops (unrolled during elaboration), submodule
instantiation (flattened during elaboration), and the scfifo /
altsyncram vendor IPs the simulator models.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..hdl import ast_nodes as ast
from ..hdl.codegen import generate_source


@dataclass
class GeneratorConfig:
    """Size bounds and feature probabilities for one generated design."""

    max_inputs: int = 4
    max_seq_regs: int = 5
    max_wires: int = 5
    max_seq_statements: int = 6
    max_expr_depth: int = 3
    #: Probability of including an FSM (state register + case idiom).
    fsm_prob: float = 0.7
    #: Probability of declaring a memory array with indexed access.
    memory_prob: float = 0.5
    #: Probability of an ``always @(*)`` block (vs assigns only).
    comb_always_prob: float = 0.5
    #: Probability of instantiating a vendor IP (scfifo / altsyncram).
    ip_prob: float = 0.4
    #: Probability of generating and instantiating a helper submodule.
    submodule_prob: float = 0.25
    #: Probability of a ``$display`` statement in a clocked block.
    display_prob: float = 0.5
    #: Probability of a ``for`` loop writing a memory.
    for_loop_prob: float = 0.2
    #: Widths drawn for data signals.
    width_pool: tuple = (1, 1, 2, 3, 4, 5, 8, 8, 12, 16)


@dataclass
class GeneratedDesign:
    """One generated case: Verilog text plus the metadata the runner needs."""

    seed: int
    text: str
    top: str
    #: Names of the top module's non-clock input ports (stimulus targets).
    inputs: list = field(default_factory=list)


@dataclass
class _Sig:
    name: str
    width: int


_BINARY_OPS = ("+", "-", "*", "&", "|", "^", "+", "&", "|")
_COMPARE_OPS = ("==", "!=", "<", "<=", ">", ">=")
_UNARY_OPS = ("~", "-", "&", "|", "^", "!")


def _num(value, width=None):
    return ast.Number(value=value, width=width)


def _ident(name):
    return ast.Identifier(name=name)


class _DesignBuilder:
    """Builds one random module tree from a seeded RNG."""

    def __init__(self, seed, config):
        self.rng = random.Random(seed)
        self.config = config
        self.seed = seed
        #: Scalars readable from any expression (inputs, regs, IP outputs).
        self.readable = []
        #: Memories: name -> (width, depth).
        self.memories = {}
        self.fresh_counter = 0

    # -- expressions --------------------------------------------------------

    def _pick_signal(self, narrow=None):
        pool = self.readable
        if narrow is not None:
            narrow_pool = [s for s in pool if s.width <= narrow]
            if narrow_pool:
                pool = narrow_pool
        return self.rng.choice(pool)

    def expr(self, depth=None):
        """A random expression over the readable signals."""
        rng = self.rng
        if depth is None:
            depth = rng.randint(1, self.config.max_expr_depth)
        if depth <= 0 or rng.random() < 0.3:
            return self._leaf()
        kind = rng.random()
        if kind < 0.45:
            return ast.BinaryOp(
                op=rng.choice(_BINARY_OPS),
                left=self.expr(depth - 1),
                right=self.expr(depth - 1),
            )
        if kind < 0.55:
            op = rng.choice(_UNARY_OPS)
            return ast.UnaryOp(op=op, operand=self.expr(depth - 1))
        if kind < 0.65:
            return ast.Ternary(
                cond=self.cond(depth - 1),
                iftrue=self.expr(depth - 1),
                iffalse=self.expr(depth - 1),
            )
        if kind < 0.73:
            parts = [self.expr(depth - 1) for _ in range(rng.randint(2, 3))]
            return ast.Concat(parts=parts)
        if kind < 0.78:
            return ast.Repeat(
                count=_num(rng.randint(2, 3)), expr=self._leaf()
            )
        if kind < 0.84:
            return ast.SizeCast(
                width=rng.randint(1, 16), expr=self.expr(depth - 1)
            )
        if kind < 0.92:
            # Shift by a narrow amount only: wide shift counts would make
            # compiled closures allocate gigantic Python integers.
            shift = (
                _num(rng.randint(0, 7))
                if rng.random() < 0.6
                else _ident(self._pick_signal(narrow=3).name)
            )
            return ast.BinaryOp(
                op=rng.choice(("<<", ">>", ">>", "<<")),
                left=self.expr(depth - 1),
                right=shift,
            )
        if kind < 0.96 and self.rng.random() < 0.8:
            return ast.BinaryOp(
                op=rng.choice(("/", "%")),
                left=self.expr(depth - 1),
                right=self.expr(depth - 1),
            )
        return self._select()

    def _leaf(self):
        rng = self.rng
        roll = rng.random()
        if roll < 0.55:
            return _ident(self._pick_signal().name)
        if roll < 0.75:
            width = rng.choice(self.config.width_pool)
            return _num(rng.randrange(1 << width), width=width)
        if roll < 0.85 and self.memories:
            name = rng.choice(sorted(self.memories))
            width, depth = self.memories[name]
            return ast.Index(
                var=_ident(name), index=self.expr(0)
            )
        return _num(rng.randrange(256))

    def _select(self):
        """A bit/part select over a declared multi-bit signal."""
        rng = self.rng
        wide = [s for s in self.readable if s.width >= 2]
        if not wide:
            return self._leaf()
        sig = rng.choice(wide)
        roll = rng.random()
        if roll < 0.4:
            lsb = rng.randrange(sig.width)
            msb = rng.randrange(lsb, sig.width)
            return ast.PartSelect(
                var=_ident(sig.name), msb=_num(msb), lsb=_num(lsb)
            )
        if roll < 0.7:
            width = rng.randint(1, min(4, sig.width))
            return ast.IndexedPartSelect(
                var=_ident(sig.name),
                base=_num(rng.randrange(sig.width)),
                width=_num(width),
                ascending=rng.random() < 0.5,
            )
        return ast.Index(var=_ident(sig.name), index=self.expr(0))

    def cond(self, depth=1):
        """A random 1-bit condition."""
        rng = self.rng
        roll = rng.random()
        if roll < 0.35:
            narrow = [s for s in self.readable if s.width == 1]
            if narrow:
                return _ident(rng.choice(narrow).name)
        if roll < 0.7 or depth <= 0:
            return ast.BinaryOp(
                op=rng.choice(_COMPARE_OPS),
                left=self.expr(max(depth - 1, 0)),
                right=self.expr(max(depth - 1, 0)),
            )
        if roll < 0.85:
            return ast.BinaryOp(
                op=rng.choice(("&&", "||")),
                left=self.cond(depth - 1),
                right=self.cond(depth - 1),
            )
        return ast.UnaryOp(op=rng.choice(("!", "|", "&", "^")), operand=self.expr(0))

    # -- statements ---------------------------------------------------------

    def _fresh(self, prefix):
        self.fresh_counter += 1
        return "%s%d" % (prefix, self.fresh_counter)

    def seq_statement(self, writable, depth=2):
        """A random statement for a clocked block writing only *writable*."""
        rng = self.rng
        roll = rng.random()
        if depth > 0 and roll < 0.2:
            stmt = ast.If(
                cond=self.cond(),
                then_stmt=self.seq_block(writable, depth - 1),
            )
            if rng.random() < 0.5:
                stmt.else_stmt = self.seq_block(writable, depth - 1)
            return stmt
        if depth > 0 and roll < 0.3:
            subject = _ident(self._pick_signal(narrow=4).name)
            labels = rng.sample(range(8), rng.randint(2, 3))
            items = [
                ast.CaseItem(
                    labels=[_num(label, width=3)],
                    stmt=self.seq_block(writable, depth - 1),
                )
                for label in labels
            ]
            if rng.random() < 0.7:
                items.append(
                    ast.CaseItem(
                        labels=[], stmt=self.seq_block(writable, depth - 1)
                    )
                )
            return ast.Case(subject=subject, items=items, casez=False)
        if self.memories and roll < 0.45:
            name = rng.choice(sorted(self.memories))
            return ast.NonblockingAssign(
                lhs=ast.Index(var=_ident(name), index=self.expr(1)),
                rhs=self.expr(),
            )
        if roll < 0.55 and rng.random() < self.config.display_prob:
            return ast.Display(
                format="gen%d: %%d %%d" % rng.randrange(10),
                args=[self.expr(1), self.expr(1)],
            )
        target = rng.choice(writable)
        return ast.NonblockingAssign(lhs=_ident(target.name), rhs=self.expr())

    def seq_block(self, writable, depth):
        statements = [
            self.seq_statement(writable, depth)
            for _ in range(self.rng.randint(1, 2))
        ]
        return ast.Block(statements=statements)

    # -- module assembly ----------------------------------------------------

    def build(self):
        rng = self.rng
        config = self.config
        items = []
        ports = [
            ast.Port(
                direction=ast.PortDirection.INPUT,
                kind=ast.NetKind.WIRE,
                name="clk",
            ),
            ast.Port(
                direction=ast.PortDirection.INPUT,
                kind=ast.NetKind.WIRE,
                name="rst",
            ),
        ]
        self.readable.append(_Sig("rst", 1))
        input_names = ["rst"]
        for index in range(rng.randint(1, config.max_inputs)):
            width = rng.choice(config.width_pool)
            name = "in%d" % index
            ports.append(
                ast.Port(
                    direction=ast.PortDirection.INPUT,
                    kind=ast.NetKind.WIRE,
                    name=name,
                    width=(
                        ast.Width(msb=_num(width - 1), lsb=_num(0))
                        if width > 1
                        else None
                    ),
                )
            )
            self.readable.append(_Sig(name, width))
            input_names.append(name)

        def declare(kind, name, width, array_depth=None):
            items.append(
                ast.Declaration(
                    kind=kind,
                    name=name,
                    width=(
                        ast.Width(msb=_num(width - 1), lsb=_num(0))
                        if width > 1
                        else None
                    ),
                    array=(
                        ast.Width(msb=_num(array_depth - 1), lsb=_num(0))
                        if array_depth
                        else None
                    ),
                )
            )

        # Sequential registers (including an optional FSM state register).
        seq_regs = []
        for index in range(rng.randint(1, config.max_seq_regs)):
            width = rng.choice(config.width_pool)
            name = "r%d" % index
            declare(ast.NetKind.REG, name, width)
            sig = _Sig(name, width)
            seq_regs.append(sig)
            self.readable.append(sig)
        fsm_state = None
        if rng.random() < config.fsm_prob:
            declare(ast.NetKind.REG, "state", 2)
            fsm_state = _Sig("state", 2)
            self.readable.append(fsm_state)
            for value, label in enumerate(("S_IDLE", "S_RUN", "S_WAIT", "S_DONE")):
                items.append(
                    ast.ParameterDecl(name=label, value=_num(value), local=True)
                )

        # Memory array, written by clocked logic, read through indexes.
        if rng.random() < config.memory_prob:
            width = rng.choice(config.width_pool)
            depth = rng.choice((4, 8, 16))
            declare(ast.NetKind.REG, "mem", width, array_depth=depth)
            self.memories["mem"] = (width, depth)

        # Vendor IP instance: outputs land on dedicated wires.
        ip_kind = None
        if rng.random() < config.ip_prob:
            ip_kind = rng.choice(("scfifo", "altsyncram"))
            if ip_kind == "scfifo":
                width = rng.choice((4, 8, 16))
                declare(ast.NetKind.WIRE, "fifo_q", width)
                declare(ast.NetKind.WIRE, "fifo_empty", 1)
                declare(ast.NetKind.WIRE, "fifo_full", 1)
                items.append(
                    ast.Instance(
                        module_name="scfifo",
                        instance_name="u_fifo",
                        params=[
                            ast.ParamOverride(name="LPM_WIDTH", value=_num(width)),
                            ast.ParamOverride(
                                name="LPM_NUMWORDS", value=_num(rng.choice((4, 8)))
                            ),
                        ],
                        ports=[
                            ast.PortConnection(port="clock", expr=_ident("clk")),
                            ast.PortConnection(port="data", expr=self.expr(1)),
                            ast.PortConnection(port="wrreq", expr=self.cond(0)),
                            ast.PortConnection(port="rdreq", expr=self.cond(0)),
                            ast.PortConnection(port="q", expr=_ident("fifo_q")),
                            ast.PortConnection(
                                port="empty", expr=_ident("fifo_empty")
                            ),
                            ast.PortConnection(
                                port="full", expr=_ident("fifo_full")
                            ),
                        ],
                    )
                )
                self.readable.extend(
                    [_Sig("fifo_q", width), _Sig("fifo_empty", 1), _Sig("fifo_full", 1)]
                )
            else:
                width = rng.choice((4, 8))
                depth = rng.choice((16, 32))
                declare(ast.NetKind.WIRE, "ram_q", width)
                items.append(
                    ast.Instance(
                        module_name="altsyncram",
                        instance_name="u_ram",
                        params=[
                            ast.ParamOverride(name="WIDTH_A", value=_num(width)),
                            ast.ParamOverride(name="NUMWORDS_A", value=_num(depth)),
                        ],
                        ports=[
                            ast.PortConnection(port="clock0", expr=_ident("clk")),
                            ast.PortConnection(port="address_a", expr=self.expr(1)),
                            ast.PortConnection(port="data_a", expr=self.expr(1)),
                            ast.PortConnection(port="wren_a", expr=self.cond(0)),
                            ast.PortConnection(port="q_a", expr=_ident("ram_q")),
                        ],
                    )
                )
                self.readable.append(_Sig("ram_q", width))

        # Helper submodule (flattened during elaboration).
        helper = None
        if rng.random() < config.submodule_prob:
            helper = self._build_helper()
            width = helper["width"]
            declare(ast.NetKind.WIRE, "sub_y", width)
            items.append(
                ast.Instance(
                    module_name=helper["module"].name,
                    instance_name="u_sub",
                    params=[],
                    ports=[
                        ast.PortConnection(
                            port="a", expr=_ident(self._pick_signal().name)
                        ),
                        ast.PortConnection(
                            port="b", expr=_ident(self._pick_signal().name)
                        ),
                        ast.PortConnection(port="y", expr=_ident("sub_y")),
                    ],
                )
            )
            self.readable.append(_Sig("sub_y", width))

        # Combinational wires, defined in strict dependency order.
        for index in range(rng.randint(0, config.max_wires)):
            width = rng.choice(config.width_pool)
            name = "w%d" % index
            declare(ast.NetKind.WIRE, name, width)
            items.append(
                ast.ContinuousAssign(lhs=_ident(name), rhs=self.expr())
            )
            self.readable.append(_Sig(name, width))

        # Optional always @(*) block: default assignment first, then a
        # conditional override (two-process style; never a latch loop).
        if rng.random() < config.comb_always_prob:
            width = rng.choice(config.width_pool)
            declare(ast.NetKind.REG, "c0", width)
            statements = [
                ast.BlockingAssign(lhs=_ident("c0"), rhs=self.expr(1))
            ]
            if rng.random() < 0.5:
                statements.append(
                    ast.If(
                        cond=self.cond(),
                        then_stmt=ast.BlockingAssign(
                            lhs=_ident("c0"), rhs=self.expr(1)
                        ),
                    )
                )
            else:
                statements.append(
                    ast.Case(
                        subject=_ident(self._pick_signal(narrow=4).name),
                        items=[
                            ast.CaseItem(
                                labels=[_num(0)],
                                stmt=ast.BlockingAssign(
                                    lhs=_ident("c0"), rhs=self.expr(1)
                                ),
                            ),
                            ast.CaseItem(
                                labels=[],
                                stmt=ast.BlockingAssign(
                                    lhs=_ident("c0"), rhs=self.expr(1)
                                ),
                            ),
                        ],
                    )
                )
            items.append(
                ast.Always(
                    sens=[ast.SensItem(edge=ast.Edge.STAR)],
                    body=ast.Block(statements=statements),
                )
            )
            self.readable.append(_Sig("c0", width))

        # Output ports: one clocked reg, one combinational wire.
        out_width = rng.choice(config.width_pool)
        ports.append(
            ast.Port(
                direction=ast.PortDirection.OUTPUT,
                kind=ast.NetKind.REG,
                name="out_r",
                width=(
                    ast.Width(msb=_num(out_width - 1), lsb=_num(0))
                    if out_width > 1
                    else None
                ),
            )
        )
        out_reg = _Sig("out_r", out_width)
        wire_width = rng.choice(config.width_pool)
        ports.append(
            ast.Port(
                direction=ast.PortDirection.OUTPUT,
                kind=ast.NetKind.WIRE,
                name="out_w",
                width=(
                    ast.Width(msb=_num(wire_width - 1), lsb=_num(0))
                    if wire_width > 1
                    else None
                ),
            )
        )
        items.append(
            ast.ContinuousAssign(lhs=_ident("out_w"), rhs=self.expr())
        )

        # The main clocked block: reset, FSM transitions, then random
        # statements over this block's private write set.
        writable = seq_regs + [out_reg]
        reset_assigns = [
            ast.NonblockingAssign(lhs=_ident(sig.name), rhs=_num(0))
            for sig in writable
        ]
        body_statements = []
        if fsm_state is not None:
            reset_assigns.append(
                ast.NonblockingAssign(lhs=_ident("state"), rhs=_ident("S_IDLE"))
            )
            body_statements.append(self._fsm_case())
        for _ in range(rng.randint(1, config.max_seq_statements)):
            body_statements.append(self.seq_statement(writable))
        if self.memories and rng.random() < config.for_loop_prob:
            declare(ast.NetKind.INTEGER, "i", 32)
            name = rng.choice(sorted(self.memories))
            body_statements.append(
                ast.For(
                    init=ast.BlockingAssign(lhs=_ident("i"), rhs=_num(0)),
                    cond=ast.BinaryOp(op="<", left=_ident("i"), right=_num(4)),
                    step=ast.BlockingAssign(
                        lhs=_ident("i"),
                        rhs=ast.BinaryOp(op="+", left=_ident("i"), right=_num(1)),
                    ),
                    body=ast.NonblockingAssign(
                        lhs=ast.Index(var=_ident(name), index=_ident("i")),
                        rhs=self.expr(1),
                    ),
                )
            )
        items.append(
            ast.Always(
                sens=[ast.SensItem(edge=ast.Edge.POSEDGE, signal="clk")],
                body=ast.Block(
                    statements=[
                        ast.If(
                            cond=_ident("rst"),
                            then_stmt=ast.Block(statements=reset_assigns),
                            else_stmt=ast.Block(statements=body_statements),
                        )
                    ]
                ),
            )
        )

        top = ast.Module(
            name="fuzz_top_%d" % (self.seed & 0xFFFF),
            ports=ports,
            items=items,
        )
        modules = [helper["module"]] if helper else []
        modules.append(top)
        return ast.Source(modules=modules), input_names

    def _fsm_case(self):
        """The FSM idiom: case (state) with input-guarded transitions."""
        rng = self.rng
        labels = ("S_IDLE", "S_RUN", "S_WAIT", "S_DONE")
        arms = []
        for index, label in enumerate(labels):
            target = labels[(index + rng.randint(1, 3)) % len(labels)]
            move = ast.NonblockingAssign(lhs=_ident("state"), rhs=_ident(target))
            stmt = (
                ast.If(cond=self.cond(), then_stmt=move)
                if rng.random() < 0.7
                else move
            )
            arms.append(ast.CaseItem(labels=[_ident(label)], stmt=stmt))
        arms.append(
            ast.CaseItem(
                labels=[],
                stmt=ast.NonblockingAssign(lhs=_ident("state"), rhs=_ident("S_IDLE")),
            )
        )
        return ast.Case(subject=_ident("state"), items=arms)

    def _build_helper(self):
        """A tiny pure-combinational helper module to exercise flattening."""
        rng = self.rng
        width = rng.choice((4, 8))
        saved_readable = self.readable
        self.readable = [_Sig("a", width), _Sig("b", width)]
        rhs = self.expr(2)
        self.readable = saved_readable
        module = ast.Module(
            name="fuzz_helper",
            ports=[
                ast.Port(
                    direction=ast.PortDirection.INPUT,
                    kind=ast.NetKind.WIRE,
                    name="a",
                    width=ast.Width(msb=_num(width - 1), lsb=_num(0)),
                ),
                ast.Port(
                    direction=ast.PortDirection.INPUT,
                    kind=ast.NetKind.WIRE,
                    name="b",
                    width=ast.Width(msb=_num(width - 1), lsb=_num(0)),
                ),
                ast.Port(
                    direction=ast.PortDirection.OUTPUT,
                    kind=ast.NetKind.WIRE,
                    name="y",
                    width=ast.Width(msb=_num(width - 1), lsb=_num(0)),
                ),
            ],
            items=[ast.ContinuousAssign(lhs=_ident("y"), rhs=rhs)],
        )
        return {"module": module, "width": width}


def generate_design(seed, config=None):
    """Generate one seeded random design; returns :class:`GeneratedDesign`."""
    builder = _DesignBuilder(seed, config or GeneratorConfig())
    source, input_names = builder.build()
    return GeneratedDesign(
        seed=seed,
        text=generate_source(source),
        top=source.modules[-1].name,
        inputs=input_names,
    )
