"""repro.fuzz — differential fuzzing & metamorphic testing for the HDL stack.

The debugging tools this repo reproduces are only trustworthy if the
stack under them is: the parser and code generator must be inverses, the
two simulator backends must agree bit-for-bit, and no instrumentation
pass may perturb the design it observes. This package checks those
properties automatically::

    python -m repro fuzz --seed 0 --cases 200 --jobs 4

Pieces:

* :mod:`~repro.fuzz.generator` — seeded random-but-valid Verilog designs
  covering the simulator's dialect (FSMs, memories, IP blocks, hierarchy);
* :mod:`~repro.fuzz.mutator` — semantics-preserving and -perturbing AST
  mutations over generated and testbed designs;
* :mod:`~repro.fuzz.oracles` — the round-trip, differential, and
  metamorphic correctness oracles;
* :mod:`~repro.fuzz.runner` — the parallel campaign driver with crash
  bucketing and reproducer saving;
* :mod:`~repro.fuzz.reducer` — delta-debugging minimization of failures.
"""

from .generator import GeneratedDesign, GeneratorConfig, generate_design
from .mutator import (
    MutationAnchor,
    MutationResult,
    anchor_of,
    build_anchor_maps,
    mutate_source,
    mutation_names,
    node_signals,
    parse_site,
)
from .oracles import (
    ORACLE_NAMES,
    ORACLES,
    OracleOutcome,
    absint_oracle,
    differential_oracle,
    metamorphic_oracle,
    roundtrip_oracle,
)
from .reducer import ddmin, reduce_source
from .runner import (
    CampaignConfig,
    CampaignReport,
    CaseResult,
    crash_signature,
    run_campaign,
)

__all__ = [
    "GeneratedDesign",
    "GeneratorConfig",
    "generate_design",
    "MutationAnchor",
    "MutationResult",
    "anchor_of",
    "build_anchor_maps",
    "mutate_source",
    "mutation_names",
    "node_signals",
    "parse_site",
    "ORACLE_NAMES",
    "ORACLES",
    "OracleOutcome",
    "absint_oracle",
    "roundtrip_oracle",
    "differential_oracle",
    "metamorphic_oracle",
    "ddmin",
    "reduce_source",
    "CampaignConfig",
    "CampaignReport",
    "CaseResult",
    "crash_signature",
    "run_campaign",
]
