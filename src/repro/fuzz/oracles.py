"""Correctness oracles: what a fuzz case must satisfy to pass.

Six oracle families, each checking a different layer of the stack:

* **round-trip** — ``parse(codegen(parse(src)))`` must be AST-equal to
  ``parse(src)``: the parser and code generator are inverses over the
  supported subset. Violations are parser/codegen bugs.
* **differential** — the interpreted :class:`~repro.sim.values.Evaluator`
  and the :class:`~repro.sim.compiler.CompiledEvaluator` backends must
  produce bit-identical per-cycle state traces, ``$display`` logs, and
  termination behavior under the same stimulus. Violations are simulator
  backend bugs.
* **metamorphic** — applying any instrumentation pass (SignalCat, FSM
  Monitor, Dependency Monitor, Statistics Monitor, LossCheck) must leave
  every *original* signal cycle-identical and every original ``$display``
  event unchanged: instrumentation never perturbs the design it observes
  (the property the paper's tools depend on). Violations are
  instrumentation bugs.
* **lint** — ``repro check`` must yield a *well-formed* verdict on any
  input: no crash, only registered rule codes, sane spans, agreement
  with the strict parser about validity, and a byte-deterministic
  report. Violations are diagnostics bugs.
* **flow** — the design-level dataflow engine must terminate with a
  deterministic verdict on any elaborable design: no crash, every
  fixpoint converges, only registered L04xx codes with sane spans, and
  two runs render byte-identical findings. Violations are flow-engine
  bugs.
* **absint** — the abstract interpreter's per-signal facts must be
  *sound*: simulating the design under seeded stimulus, no concrete
  value may ever escape its static interval or contradict its known
  bits; the fact fixpoint must converge (a cap hit is a failure, since
  capped facts are unusable under-approximations) and two runs must
  render byte-identical :class:`~repro.flow.absint.FactTable` JSON.
  Violations are abstract-domain/transfer-function bugs.

All oracles take Verilog source text, so reducer output can be re-run
through the same predicate unchanged. Outcomes are ``pass``, ``fail``
(with a first-divergence detail string), or ``inapplicable`` (the design
lacks what the oracle needs, e.g. LossCheck without a dataflow path).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.dependency_monitor import DependencyMonitor
from ..core.fsm_monitor import FSMMonitor
from ..core.losscheck import LossCheck
from ..core.signalcat import Mode, SignalCat
from ..core.statistics_monitor import StatisticsMonitor
from ..core.instrument import dominant_clock
from ..hdl import ast_nodes as ast
from ..hdl import elaborate, parse
from ..hdl.ast_nodes import ast_diff
from ..hdl.codegen import generate_source
from ..sim import Simulator

PASS = "pass"
FAIL = "fail"
INAPPLICABLE = "inapplicable"

#: Oracle registry: name -> callable(text, top, seed, cycles).
ORACLE_NAMES = (
    "roundtrip", "differential", "metamorphic", "lint", "flow", "absint"
)

_RESET_HIGH = frozenset(["rst", "reset"])
_RESET_LOW = frozenset(["rst_n", "resetn", "rstn", "nreset"])


@dataclass
class OracleOutcome:
    """Verdict of one oracle on one case."""

    oracle: str
    status: str
    detail: str = ""

    @property
    def failed(self):
        return self.status == FAIL


# ---------------------------------------------------------------------------
# Stimulus
# ---------------------------------------------------------------------------


def build_stimulus(module, seed, cycles, clock):
    """A deterministic per-cycle input schedule for *module*.

    Reset-like ports are held active for the first two cycles and
    released; every other non-clock input gets a fresh seeded random
    value each cycle. Returns ``[{name: value}, ...]`` of length
    *cycles*.
    """
    rng = random.Random(seed)
    inputs = [
        (port.name, port.bit_width)
        for port in module.ports
        if port.direction is ast.PortDirection.INPUT and port.name != clock
    ]
    schedule = []
    for cycle in range(cycles):
        vector = {}
        for name, width in inputs:
            if name in _RESET_HIGH:
                vector[name] = 1 if cycle < 2 else 0
            elif name in _RESET_LOW:
                vector[name] = 0 if cycle < 2 else 1
            else:
                vector[name] = rng.randrange(1 << min(width, 32))
        schedule.append(vector)
    return schedule


def simulate_trace(design, stimulus, clock, signals=None, **sim_kwargs):
    """Run *design* under *stimulus*; returns (per-cycle snapshots, sim).

    Each snapshot maps signal name to value (memories copied). When
    *signals* is given, snapshots are restricted to those names.
    """
    sim = Simulator(design, **sim_kwargs)
    trace = []
    for vector in stimulus:
        for name, value in vector.items():
            sim.set(name, value)
        sim.step(clock=clock)
        snapshot = {}
        for name, value in sim.state.items():
            if signals is not None and name not in signals:
                continue
            snapshot[name] = list(value) if isinstance(value, list) else value
        trace.append(snapshot)
    return trace, sim


def _first_trace_divergence(trace_a, trace_b, label_a, label_b):
    """Readable first mismatch between two traces, or None.

    Thin wrapper over the shared :mod:`repro.wave` aligner — the same
    primitive the fault scorer uses — preserving the historical detail
    string format (fuzz failure bucketing keys on it).
    """
    from ..wave.align import first_snapshot_divergence

    divergence = first_snapshot_divergence(trace_a, trace_b)
    if divergence is None:
        return None
    return divergence.describe(label_a, label_b)


def _display_log(sim, unlabeled_only=False):
    events = sim.display_events
    if unlabeled_only:
        events = [e for e in events if not e.label]
    return [(e.cycle, e.text) for e in events]


# ---------------------------------------------------------------------------
# Oracles
# ---------------------------------------------------------------------------


def roundtrip_oracle(text, top=None, seed=0, cycles=0):
    """parse -> codegen -> parse must reproduce the same AST."""
    first = parse(text)
    regenerated = generate_source(first)
    second = parse(regenerated)
    diff = ast_diff(first, second)
    if diff is None:
        return OracleOutcome(oracle="roundtrip", status=PASS)
    return OracleOutcome(oracle="roundtrip", status=FAIL, detail=diff)


def differential_oracle(text, top=None, seed=0, cycles=48,
                        compiled_factory=None):
    """Interpreted and compiled evaluators must be bit-identical.

    ``compiled_factory`` (tests only) swaps in an alternative evaluator
    class for the second simulation, to verify the oracle itself catches
    a divergent backend.
    """
    design = elaborate(parse(text), top=top)
    clock = dominant_clock(design.top)
    stimulus = build_stimulus(design.top, seed, cycles, clock)
    trace_interp, sim_interp = simulate_trace(design, stimulus, clock)
    if compiled_factory is None:
        trace_comp, sim_comp = simulate_trace(
            design, stimulus, clock, compile_expressions=True
        )
    else:
        sim_comp = Simulator(design)
        sim_comp.evaluator = compiled_factory(sim_comp.symbols)
        trace_comp = []
        for vector in stimulus:
            for name, value in vector.items():
                sim_comp.set(name, value)
            sim_comp.step(clock=clock)
            trace_comp.append(
                {
                    name: list(v) if isinstance(v, list) else v
                    for name, v in sim_comp.state.items()
                }
            )
    divergence = _first_trace_divergence(
        trace_interp, trace_comp, "interpreted", "compiled"
    )
    if divergence is None and _display_log(sim_interp) != _display_log(sim_comp):
        divergence = "display logs differ: %r != %r" % (
            _display_log(sim_interp)[:3], _display_log(sim_comp)[:3]
        )
    if divergence is None and sim_interp.finished != sim_comp.finished:
        divergence = "finished flags differ: interpreted=%r compiled=%r" % (
            sim_interp.finished, sim_comp.finished
        )
    if divergence is None:
        return OracleOutcome(oracle="differential", status=PASS)
    return OracleOutcome(oracle="differential", status=FAIL, detail=divergence)


def _pick_dependency_target(module):
    """A clocked register to trace for the Dependency Monitor pass."""
    for item in module.items:
        if isinstance(item, ast.Always) and not item.is_combinational:
            for node in item.body.walk():
                if isinstance(node, ast.NonblockingAssign) and isinstance(
                    node.lhs, ast.Identifier
                ):
                    return node.lhs.name
    return None


def _pick_statistics_event(module, clock):
    """A 1-bit-ish condition to count with the Statistics Monitor pass."""
    for port in module.ports:
        if port.direction is ast.PortDirection.INPUT and port.name != clock:
            return "%s != 0" % port.name
    return None


def _pick_loss_endpoints(module):
    """(source, sink) guesses for LossCheck on an arbitrary design."""
    source = None
    for port in module.ports:
        if port.direction is ast.PortDirection.INPUT and port.bit_width > 1:
            source = port.name
            break
    sink = _pick_dependency_target(module)
    if source is None or sink is None or source == sink:
        return None
    return source, sink


def default_tools(design, losscheck=None):
    """The instrumentation-pass factories the metamorphic oracle applies.

    Returns ``[(name, factory)]`` where ``factory()`` builds the pass
    over *design* and exposes the instrumented module as ``.module``.
    Factories may raise ValueError/KeyError for designs the pass does
    not apply to (reported as ``inapplicable``, not failures).
    """
    module = design.top
    clock = dominant_clock(module)
    tools = [
        ("signalcat", lambda: SignalCat(design, mode=Mode.SIMULATION)),
        # On-FPGA mode replaces the original $display statements with the
        # recorder IP, so only the signal trace is comparable.
        (
            "signalcat_fpga",
            lambda: SignalCat(design, mode=Mode.ON_FPGA, buffer_depth=64),
            False,
        ),
        ("fsm_monitor", lambda: FSMMonitor(design)),
    ]
    target = _pick_dependency_target(module)
    if target is not None:
        tools.append(
            (
                "dependency_monitor",
                lambda: DependencyMonitor(design, target=target, depth=2),
            )
        )
    event = _pick_statistics_event(module, clock)
    if event is not None:
        tools.append(
            (
                "statistics_monitor",
                lambda: StatisticsMonitor(design, events={"fuzz_event": event}),
            )
        )
    endpoints = losscheck or _pick_loss_endpoints(module)
    if endpoints is not None:
        source, sink = endpoints
        tools.append(
            (
                "losscheck",
                lambda: LossCheck(design, source=source, sink=sink),
            )
        )
    return tools


def metamorphic_oracle(text, top=None, seed=0, cycles=48, tools=None,
                       losscheck=None):
    """Instrumentation must not change any original signal or display.

    Simulates the plain design, then each instrumented variant, under
    identical stimulus; every signal declared in the *original* module
    must match cycle-for-cycle, and the original (unlabeled) ``$display``
    events must be reproduced exactly. Tool-generated signals (prefixed
    ``sc_``/``fsmmon_``/...) and labeled monitor displays are excluded —
    they are the instrumentation's own additions.
    """
    design = elaborate(parse(text), top=top)
    module = design.top
    clock = dominant_clock(module)
    stimulus = build_stimulus(module, seed, cycles, clock)
    base_signals = {decl.name for decl in module.declarations()}
    baseline_trace, baseline_sim = simulate_trace(
        design, stimulus, clock, signals=base_signals
    )
    baseline_displays = _display_log(baseline_sim, unlabeled_only=True)
    if tools is None:
        tools = default_tools(design, losscheck=losscheck)
    applied = 0
    for entry in tools:
        name, factory = entry[0], entry[1]
        compare_displays = entry[2] if len(entry) > 2 else True
        try:
            tool = factory()
        except (KeyError, ValueError):
            continue
        applied += 1
        try:
            instr_trace, instr_sim = simulate_trace(
                tool.module, stimulus, clock, signals=base_signals
            )
        except Exception as exc:
            return OracleOutcome(
                oracle="metamorphic",
                status=FAIL,
                detail="pass %s broke simulation: %s: %s"
                % (name, type(exc).__name__, exc),
            )
        divergence = _first_trace_divergence(
            baseline_trace, instr_trace, "plain", name
        )
        if divergence is None and compare_displays:
            instr_displays = _display_log(instr_sim, unlabeled_only=True)
            if instr_displays != baseline_displays:
                divergence = "original $display log changed under %s" % name
        if divergence is not None:
            return OracleOutcome(
                oracle="metamorphic",
                status=FAIL,
                detail="pass %s perturbed the design: %s" % (name, divergence),
            )
    if not applied:
        return OracleOutcome(
            oracle="metamorphic",
            status=INAPPLICABLE,
            detail="no instrumentation pass applies to this design",
        )
    return OracleOutcome(oracle="metamorphic", status=PASS)


def lint_oracle(text, top=None, seed=0, cycles=48):
    """``repro check`` must produce a well-formed, deterministic verdict.

    Whatever the fuzzer feeds it, the recovering frontend must (a) not
    crash, (b) emit only registered rule codes with sane spans, (c) agree
    with the strict parser about validity — an input the strict parse
    accepts must check with zero parse-stage errors and vice versa — and
    (d) be byte-deterministic: two runs render identical reports.
    """
    from ..diag import is_registered
    from ..diag.check import (
        build_check_report,
        check_text,
        render_check_report,
    )
    from ..hdl.lexer import LexerError
    from ..hdl.parser import ParseError

    result = check_text(text, run_tools=False, run_flow=False)
    for diagnostic in result.sink.diagnostics:
        if not is_registered(diagnostic.code):
            return OracleOutcome(
                oracle="lint",
                status=FAIL,
                detail="unregistered rule code %r" % diagnostic.code,
            )
        if diagnostic.span.line < 0 or diagnostic.span.col < 0:
            return OracleOutcome(
                oracle="lint",
                status=FAIL,
                detail="negative span %s on %s"
                % (diagnostic.span, diagnostic.code),
            )
        if not diagnostic.message:
            return OracleOutcome(
                oracle="lint",
                status=FAIL,
                detail="empty message on %s" % diagnostic.code,
            )
    try:
        parse(text)
        strict_ok = True
    except (LexerError, ParseError):
        strict_ok = False
    recovered_errors = any(
        d.severity.value == "error" and d.code.startswith("P")
        for d in result.sink.diagnostics
    )
    if strict_ok and recovered_errors:
        return OracleOutcome(
            oracle="lint",
            status=FAIL,
            detail="recovering parse reports errors on input the strict "
            "parse accepts",
        )
    if not strict_ok and not recovered_errors:
        return OracleOutcome(
            oracle="lint",
            status=FAIL,
            detail="strict parse rejects input the recovering parse "
            "accepts",
        )
    rendered = render_check_report(build_check_report(result))
    again = render_check_report(
        build_check_report(check_text(text, run_tools=False, run_flow=False))
    )
    if rendered != again:
        return OracleOutcome(
            oracle="lint",
            status=FAIL,
            detail="check report is not byte-deterministic",
        )
    return OracleOutcome(oracle="lint", status=PASS)


def flow_oracle(text, top=None, seed=0, cycles=48):
    """The dataflow engine must terminate with a deterministic verdict.

    On every design that elaborates, :func:`repro.flow.analyze_flow`
    must (a) not crash, (b) converge — no fixpoint may hit its
    iteration cap, (c) emit only registered rule codes with sane spans
    and non-empty messages, and (d) be byte-deterministic: two runs
    render identical findings and identical loop sets.
    """
    from ..diag import is_registered
    from ..flow import analyze_flow
    from ..hdl.lexer import LexerError
    from ..hdl.parser import ParseError

    try:
        design = elaborate(parse(text), top=top)
    except (LexerError, ParseError, ValueError) as exc:
        return OracleOutcome(
            oracle="flow",
            status=INAPPLICABLE,
            detail="design does not elaborate (%s)" % type(exc).__name__,
        )
    try:
        first = analyze_flow(design, filename="<fuzz>")
        second = analyze_flow(design, filename="<fuzz>")
    except Exception as exc:
        return OracleOutcome(
            oracle="flow",
            status=FAIL,
            detail="flow engine crashed: %s: %s" % (type(exc).__name__, exc),
        )
    if not first.converged:
        return OracleOutcome(
            oracle="flow",
            status=FAIL,
            detail="clock-domain fixpoint hit its iteration cap",
        )
    for diagnostic in first.diagnostics:
        if not is_registered(diagnostic.code):
            return OracleOutcome(
                oracle="flow",
                status=FAIL,
                detail="unregistered rule code %r" % diagnostic.code,
            )
        if diagnostic.span.line < 0 or diagnostic.span.col < 0:
            return OracleOutcome(
                oracle="flow",
                status=FAIL,
                detail="negative span %s on %s"
                % (diagnostic.span, diagnostic.code),
            )
        if not diagnostic.message:
            return OracleOutcome(
                oracle="flow",
                status=FAIL,
                detail="empty message on %s" % diagnostic.code,
            )
    rendered = "\n".join(d.format() for d in first.diagnostics)
    again = "\n".join(d.format() for d in second.diagnostics)
    if rendered != again or first.loops != second.loops:
        return OracleOutcome(
            oracle="flow",
            status=FAIL,
            detail="flow verdict is not byte-deterministic",
        )
    return OracleOutcome(oracle="flow", status=PASS)


def absint_oracle(text, top=None, seed=0, cycles=48, max_iterations=None):
    """Abstract facts must be sound against simulation and deterministic.

    On every design that elaborates, :func:`repro.flow.compute_facts`
    must (a) not crash, (b) converge — capped facts are unsound
    under-approximations and count as failures, (c) render a
    byte-identical ``FactTable`` across two runs, and (d) be *sound*:
    simulating the design under the seeded stimulus, every per-cycle
    settled value of every tracked signal (memory elements included)
    stays inside its static interval and consistent with its known
    0/1 bits. ``max_iterations`` (tests only) lowers the solver cap to
    exercise the cap-hit-is-failure path.
    """
    from ..flow import compute_facts
    from ..hdl.lexer import LexerError
    from ..hdl.parser import ParseError

    try:
        design = elaborate(parse(text), top=top)
    except (LexerError, ParseError, ValueError) as exc:
        return OracleOutcome(
            oracle="absint",
            status=INAPPLICABLE,
            detail="design does not elaborate (%s)" % type(exc).__name__,
        )
    module = design.top
    try:
        first = compute_facts(module, max_iterations=max_iterations)
        second = compute_facts(module, max_iterations=max_iterations)
    except Exception as exc:
        return OracleOutcome(
            oracle="absint",
            status=FAIL,
            detail="abstract interpreter crashed: %s: %s"
            % (type(exc).__name__, exc),
        )
    if not first.converged:
        return OracleOutcome(
            oracle="absint",
            status=FAIL,
            detail="fact fixpoint hit its iteration cap after %d "
            "iterations" % first.iterations,
        )
    if first.render() != second.render():
        return OracleOutcome(
            oracle="absint",
            status=FAIL,
            detail="fact table is not byte-deterministic",
        )
    clock = dominant_clock(module)
    stimulus = build_stimulus(module, seed, cycles, clock)
    trace, _sim = simulate_trace(design, stimulus, clock)
    for cycle, snapshot in enumerate(trace):
        for name, value in snapshot.items():
            fact = first.get(name)
            if fact is None:
                continue
            values = value if isinstance(value, list) else [value]
            for index, element in enumerate(values):
                if fact.contains(element):
                    continue
                where = (
                    "%s[%d]" % (name, index)
                    if isinstance(value, list)
                    else name
                )
                return OracleOutcome(
                    oracle="absint",
                    status=FAIL,
                    detail="soundness violation: %s = %d at cycle %d "
                    "escapes its static fact %s"
                    % (where, element, cycle, fact.describe()),
                )
    return OracleOutcome(oracle="absint", status=PASS)


ORACLES = {
    "roundtrip": roundtrip_oracle,
    "differential": differential_oracle,
    "metamorphic": metamorphic_oracle,
    "lint": lint_oracle,
    "flow": flow_oracle,
    "absint": absint_oracle,
}
