"""Fuzz campaign runner: generate, mutate, check, bucket, reduce.

Orchestrates a whole campaign:

1. derive a deterministic :class:`CaseSpec` per case index from the
   campaign seed (independent of ``--jobs``, so a campaign replays
   identically whatever the parallelism);
2. execute cases in worker processes (``multiprocessing.Pool``) with a
   per-case wall-clock timeout, or inline when ``jobs == 1``;
3. classify every outcome: ``ok``, ``invalid`` (the stack rejected the
   design with one of its own documented error types — expected for
   perturbing mutants), ``oracle_fail``, ``crash``, or ``timeout``;
4. bucket failures by a deduplicated signature (exception type plus the
   in-package stack frames for crashes; oracle name plus normalized
   divergence for oracle failures);
5. delta-debug one reproducer per bucket down to a minimal source file
   and save it under ``results/fuzz/``.

Campaign counters feed :mod:`repro.obs` (gated on ``obs.enabled`` like
every other call site), so ``python -m repro fuzz`` emits a standard
``repro.obs/v1`` run report.
"""

from __future__ import annotations

import hashlib
import os
import random
import re
import time
import traceback
from dataclasses import dataclass, field

from .. import obs
from ..diag.model import error_code
from ..runtime import TimeLimitExceeded, time_limit
from ..hdl.elaborate import ElaborationError
from ..hdl.lexer import LexerError
from ..hdl.parser import ParseError
from ..hdl.transform import NotConstantError
from ..sim.simulator import SimulatorError
from ..sim.values import EvaluationError
from .generator import generate_design
from .mutator import mutate_source
from .oracles import FAIL, ORACLE_NAMES, ORACLES
from .reducer import reduce_source

#: Error types the stack itself documents: raising one of these on a
#: fuzzed design is a *rejection*, not a bug.
KNOWN_ERRORS = (
    ParseError,
    LexerError,
    NotConstantError,
    ElaborationError,
    SimulatorError,
    EvaluationError,
)

OK = "ok"
INVALID = "invalid"
ORACLE_FAIL = "oracle_fail"
CRASH = "crash"
TIMEOUT = "timeout"


@dataclass
class CampaignConfig:
    """Everything that determines a campaign (and its replay)."""

    cases: int = 200
    seed: int = 0
    #: First case index to run. Case recipes depend only on
    #: ``(seed, index)``, so ``start=100, cases=50`` runs exactly the
    #: cases 100..149 of the seed's infinite sequence — the serve
    #: fabric shards one campaign into such index ranges and merges the
    #: results byte-identically.
    start: int = 0
    jobs: int = 1
    cycles: int = 48
    oracles: tuple = ORACLE_NAMES
    case_timeout: float = 30.0
    time_budget: float = None
    output_dir: str = os.path.join("results", "fuzz")
    reduce: bool = True
    reduce_checks: int = 400


@dataclass
class CaseResult:
    """Outcome of one fuzz case."""

    index: int
    case_seed: int
    kind: str
    origin: str
    mutation: str = None
    status: str = OK
    oracle: str = None
    detail: str = ""
    signature: str = None
    text: str = None
    duration: float = 0.0


@dataclass
class CampaignReport:
    """Aggregated campaign outcome."""

    config: CampaignConfig
    results: list = field(default_factory=list)
    buckets: dict = field(default_factory=dict)
    reproducers: dict = field(default_factory=dict)
    elapsed: float = 0.0
    #: True when the campaign was cut short by Ctrl-C; the report still
    #: covers every case that completed before the interrupt.
    interrupted: bool = False

    @property
    def counts(self):
        tally = {OK: 0, INVALID: 0, ORACLE_FAIL: 0, CRASH: 0, TIMEOUT: 0}
        for result in self.results:
            tally[result.status] += 1
        return tally

    @property
    def failures(self):
        return [
            r for r in self.results if r.status in (ORACLE_FAIL, CRASH)
        ]

    def to_meta(self):
        """JSON-ready summary for the obs run report."""
        return {
            "cases": len(self.results),
            "requested_cases": self.config.cases,
            "seed": self.config.seed,
            "jobs": self.config.jobs,
            "oracles": list(self.config.oracles),
            "counts": self.counts,
            "buckets": {
                signature: [r.index for r in results]
                for signature, results in self.buckets.items()
            },
            "reproducers": dict(self.reproducers),
            "elapsed_seconds": round(self.elapsed, 3),
            "interrupted": self.interrupted,
        }


#: Raised inside a worker when a case exceeds its wall-clock budget.
#: (Alias kept for callers; the limit itself lives in :mod:`repro.runtime`.)
CaseTimeout = TimeLimitExceeded


# ---------------------------------------------------------------------------
# Case derivation (deterministic, jobs-independent)
# ---------------------------------------------------------------------------


def _testbed_corpus():
    """Unique (label, text, top) seed designs from the bug testbed."""
    from ..testbed.harness import _design_text
    from ..testbed.metadata import BUG_IDS, SPECS

    corpus = []
    seen = set()
    for bug_id in BUG_IDS:
        spec = SPECS[bug_id]
        if spec.design_file in seen:
            continue
        seen.add(spec.design_file)
        corpus.append((bug_id, _design_text(spec.design_file), spec.top))
    return corpus


def case_spec(campaign_seed, index):
    """The deterministic recipe for case *index* of a campaign.

    Returns ``(case_seed, kind, origin_seed_or_bug_index)`` where kind is
    ``generated`` (fresh design), ``mutant`` (mutated fresh design), or
    ``testbed_mutant`` (mutated testbed design).
    """
    case_seed = (campaign_seed * 1_000_003 + index * 7_919) & 0x7FFFFFFF
    rng = random.Random(case_seed)
    roll = rng.random()
    if roll < 0.55:
        return case_seed, "generated", rng.randrange(1 << 30)
    if roll < 0.85:
        return case_seed, "mutant", rng.randrange(1 << 30)
    return case_seed, "testbed_mutant", rng.randrange(1 << 30)


def _build_case(campaign_seed, index):
    """Materialize (kind, origin, mutation, text, top) for one case."""
    case_seed, kind, origin_seed = case_spec(campaign_seed, index)
    if kind == "generated":
        design = generate_design(origin_seed)
        return case_seed, kind, "seed=%d" % origin_seed, None, design.text, design.top
    if kind == "mutant":
        design = generate_design(origin_seed)
        mutation = mutate_source(design.text, origin_seed ^ 0x5BF03635)
        if mutation is None:
            return case_seed, "generated", "seed=%d" % origin_seed, None, design.text, design.top
        return (
            case_seed,
            kind,
            "seed=%d" % origin_seed,
            mutation.name,
            mutation.text,
            design.top,
        )
    corpus = _testbed_corpus()
    label, text, top = corpus[origin_seed % len(corpus)]
    mutation = mutate_source(text, origin_seed ^ 0x2545F491)
    if mutation is None:
        return case_seed, kind, label, None, text, top
    return case_seed, kind, label, mutation.name, mutation.text, top


# ---------------------------------------------------------------------------
# Failure signatures
# ---------------------------------------------------------------------------

_PACKAGE_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def crash_signature(exc):
    """Deduplicated signature for an unexpected exception.

    Exception type plus the chain of in-package stack frames — two
    crashes with the same signature are the same bug for bucketing
    purposes, whatever design triggered them.
    """
    frames = []
    extracted = traceback.extract_tb(exc.__traceback__)
    for frame in extracted:
        if _PACKAGE_DIR in os.path.abspath(frame.filename):
            frames.append(
                "%s:%s" % (os.path.basename(frame.filename), frame.name)
            )
    if not frames and extracted:
        # Crash entirely outside the package: fall back to the
        # innermost frame so distinct crashes still bucket apart.
        frame = extracted[-1]
        frames = ["%s:%s" % (os.path.basename(frame.filename), frame.name)]
    return "%s@%s" % (type(exc).__name__, "<-".join(reversed(frames)) or "?")


def oracle_signature(oracle, detail):
    """Deduplicated signature for an oracle violation.

    Numbers in the divergence detail (cycle counts, values) vary per
    stimulus, so they are normalized away before bucketing.
    """
    normalized = re.sub(r"\d+", "#", detail)[:120]
    return "%s:%s" % (oracle, normalized)


def bucket_id(signature):
    """Short stable id for a signature (used in reproducer filenames)."""
    return hashlib.sha1(signature.encode("utf-8")).hexdigest()[:10]


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------

def run_case(args):
    """Execute one case end to end (top-level so Pool can pickle it).

    *args* is ``(campaign_seed, index, oracles, cycles, timeout)``.
    Returns a :class:`CaseResult`; failing cases carry their source text
    back for bucketing and reduction.
    """
    campaign_seed, index, oracles, cycles, timeout = args
    started = time.time()
    result = CaseResult(index=index, case_seed=0, kind="?", origin="?")
    try:
        with time_limit(timeout):
            case_seed, kind, origin, mutation, text, top = _build_case(
                campaign_seed, index
            )
            result = CaseResult(
                index=index,
                case_seed=case_seed,
                kind=kind,
                origin=origin,
                mutation=mutation,
            )
            for oracle in oracles:
                outcome = ORACLES[oracle](
                    text, top=top, seed=case_seed, cycles=cycles
                )
                if outcome.status == FAIL:
                    result.status = ORACLE_FAIL
                    result.oracle = oracle
                    result.detail = outcome.detail
                    result.signature = oracle_signature(oracle, outcome.detail)
                    result.text = text
                    break
    except TimeLimitExceeded:
        result.status = TIMEOUT
        result.detail = "exceeded %.1fs case budget" % timeout
        result.signature = "timeout"
    except KNOWN_ERRORS as exc:
        result.status = INVALID
        # Bucket rejections on the stable rule code, not the (wording-
        # sensitive) message: two phrasings of one defect are one bucket.
        result.detail = "%s[%s]: %s" % (
            type(exc).__name__, error_code(exc), exc
        )
        result.signature = "invalid:%s" % error_code(exc)
    except Exception as exc:
        result.status = CRASH
        result.detail = "%s: %s" % (type(exc).__name__, exc)
        result.signature = crash_signature(exc)
        result.text = locals().get("text")
    result.duration = time.time() - started
    return result


# ---------------------------------------------------------------------------
# Campaign
# ---------------------------------------------------------------------------


def _record_result(result):
    if not obs.enabled:
        return
    obs.counter("fuzz.cases").inc()
    obs.counter("fuzz.%s" % result.status).inc()
    obs.histogram("fuzz.case_ms").observe(int(result.duration * 1000))


def _reduction_predicate(result, config):
    """True iff candidate text reproduces *result*'s exact failure."""
    oracles = (result.oracle,) if result.oracle else config.oracles

    def predicate(text):
        try:
            for oracle in oracles:
                outcome = ORACLES[oracle](
                    text, seed=result.case_seed, cycles=config.cycles
                )
                if (
                    outcome.status == FAIL
                    and result.status == ORACLE_FAIL
                    and oracle_signature(oracle, outcome.detail)
                    == result.signature
                ):
                    return True
            return False
        except KNOWN_ERRORS:
            return False
        except Exception as exc:
            return (
                result.status == CRASH
                and crash_signature(exc) == result.signature
            )

    return predicate


def _save_reproducer(result, config, reduced_text=None):
    """Write the (reduced) failing source under the campaign output dir."""
    os.makedirs(config.output_dir, exist_ok=True)
    name = "case%05d_%s.v" % (result.index, bucket_id(result.signature))
    path = os.path.join(config.output_dir, name)
    header = [
        "// repro.fuzz reproducer",
        "// campaign seed: %d  case: %d  case seed: %d"
        % (config.seed, result.index, result.case_seed),
        "// kind: %s (%s)%s"
        % (
            result.kind,
            result.origin,
            " mutation=%s" % result.mutation if result.mutation else "",
        ),
        "// status: %s%s"
        % (result.status, " oracle=%s" % result.oracle if result.oracle else ""),
        "// detail: %s" % result.detail.replace("\n", " ")[:200],
        "// signature: %s" % result.signature,
    ]
    body = reduced_text if reduced_text is not None else result.text
    with open(path, "w") as handle:
        handle.write("\n".join(header) + "\n" + (body or ""))
    return path


def run_campaign(config, progress=None):
    """Run a full campaign; returns a :class:`CampaignReport`.

    *progress* (optional) is called with each :class:`CaseResult` as it
    arrives — the CLI uses it for live status lines.
    """
    started = time.time()
    report = CampaignReport(config=config)
    work = [
        (config.seed, index, tuple(config.oracles), config.cycles,
         config.case_timeout)
        for index in range(config.start, config.start + config.cases)
    ]

    def consume(result):
        report.results.append(result)
        _record_result(result)
        if progress is not None:
            progress(result)
        if config.time_budget is not None:
            return (time.time() - started) < config.time_budget
        return True

    with obs.span("fuzz:campaign", cases=config.cases, seed=config.seed):
        try:
            if config.jobs <= 1:
                for item in work:
                    if not consume(run_case(item)):
                        break
            else:
                import multiprocessing

                with multiprocessing.Pool(config.jobs) as pool:
                    for result in pool.imap_unordered(run_case, work):
                        if not consume(result):
                            pool.terminate()
                            break
                report.results.sort(key=lambda r: r.index)
        except KeyboardInterrupt:
            # Degrade to a partial report: keep every finished case and
            # still bucket/reduce below, so Ctrl-C loses no findings.
            report.interrupted = True

        for result in report.failures:
            report.buckets.setdefault(result.signature, []).append(result)
        if obs.enabled:
            obs.gauge("fuzz.buckets").set(len(report.buckets))

        with obs.span("fuzz:reduce", buckets=len(report.buckets)):
            for signature, results in report.buckets.items():
                exemplar = results[0]
                if exemplar.text is None:
                    continue
                reduced = None
                if config.reduce:
                    try:
                        reduced = reduce_source(
                            exemplar.text,
                            _reduction_predicate(exemplar, config),
                            max_checks=config.reduce_checks,
                        )
                    except ValueError:
                        reduced = None
                path = _save_reproducer(exemplar, config, reduced)
                report.reproducers[signature] = path

    report.elapsed = time.time() - started
    return report
