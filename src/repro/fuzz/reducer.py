"""Delta-debugging reducer: shrink a failing case to a minimal reproducer.

Implements line-granularity ddmin (Zeller & Hildebrandt, "Simplifying
and Isolating Failure-Inducing Input"): repeatedly try removing chunks
of lines, keeping any removal under which the failure predicate still
holds, until the result is 1-minimal (no single line can be removed).

The predicate receives candidate source *text* and returns True when the
candidate still exhibits the original failure. Candidates are routinely
syntactically invalid — the predicate must treat "does not even parse"
as False, which the campaign runner's signature-matching predicate does
by catching everything.
"""

from __future__ import annotations

import itertools


def _chunks(items, n):
    """Split *items* into *n* contiguous chunks (first ones larger)."""
    size, extra = divmod(len(items), n)
    result = []
    start = 0
    for index in range(n):
        end = start + size + (1 if index < extra else 0)
        if end > start:
            result.append(items[start:end])
        start = end
    return result


def ddmin(items, predicate):
    """Minimal sublist of *items* still satisfying *predicate*.

    *predicate* takes a list of items. Assumes ``predicate(items)`` is
    True; returns a 1-minimal sublist (removing any single remaining
    item breaks the predicate).
    """
    granularity = 2
    while len(items) >= 2:
        chunks = _chunks(items, granularity)
        reduced = False
        for index in range(len(chunks)):
            complement = [
                item
                for chunk_index, chunk in enumerate(chunks)
                for item in chunk
                if chunk_index != index
            ]
            if predicate(complement):
                items = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items


def _combination_pass(items, predicate, k):
    """Greedily remove any *k* (possibly non-adjacent) items at once.

    ddmin only removes contiguous chunks, so it leaves paired-delimiter
    residue in line-based source reduction: ``module foo (`` / ``);`` or
    ``begin`` / ``end`` survive because removing either alone breaks the
    parse. Trying small non-adjacent combinations sweeps those out.
    """
    improved = True
    while improved:
        improved = False
        for combo in itertools.combinations(range(len(items)), k):
            dropped = set(combo)
            candidate = [
                item for index, item in enumerate(items)
                if index not in dropped
            ]
            if predicate(candidate):
                items = candidate
                improved = True
                break
    return items


def reduce_source(text, predicate, max_checks=2000):
    """Shrink Verilog *text* line-by-line while *predicate* keeps holding.

    *predicate* maps candidate source text to True (failure reproduces) /
    False. ``max_checks`` bounds the number of predicate invocations (a
    reduction budget, since each check may run a full simulation).
    Returns the reduced text; the input must satisfy the predicate.
    """
    checks = [0]

    def line_predicate(lines):
        if checks[0] >= max_checks:
            return False
        checks[0] += 1
        return predicate("\n".join(lines) + "\n")

    lines = [line for line in text.splitlines() if line.strip()]
    if not line_predicate(lines):
        raise ValueError("reduction predicate does not hold on the input")
    reduced = ddmin(lines, line_predicate)
    for k in (2, 3):
        if len(reduced) > k:
            reduced = _combination_pass(reduced, line_predicate, k)
    return "\n".join(reduced) + "\n"
