"""Resilient fault-injection campaigns with crash-safe resume.

A campaign sweeps deterministic fault schedules over testbed bugs and
scores tool detection for each (:mod:`repro.faults.scoring`). Campaigns
are engineered to degrade gracefully rather than die:

* every case runs under a wall-clock watchdog
  (:func:`repro.runtime.time_limit`);
* timed-out cases are retried with exponential backoff before being
  recorded as ``timeout``;
* failures are classified into a known-error taxonomy instead of
  aborting the sweep;
* every finished case is appended to a JSONL journal (flushed + fsynced
  per record), so an interrupted ``python -m repro faults`` resumes
  exactly where it stopped, reusing journaled results instead of
  re-running completed cases.

Determinism: case seeds derive from ``(campaign seed, bug id, index)``
via CRC32 — not Python's salted ``hash`` — and journal records carry no
wall-clock data, so two runs with the same seed produce byte-identical
journals and reports.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field

from .. import obs
from ..diag.model import error_code
from ..runtime import JsonlJournal, TimeLimitExceeded, retry_with_backoff, time_limit
from ..sim.simulator import SimulatorError
from ..sim.values import EvaluationError
from ..testbed.metadata import BUG_IDS
from .injector import InjectionError
from .models import DATA_LOSS_KINDS, sample_schedule
from .scoring import (
    DETECTED,
    FALSE_SILENCE,
    MASKED,
    MISSED,
    SENSITIVE,
    TOOL_NAMES,
    DetectionScorer,
)

SCHEMA = "repro.faults/v1"

#: Known-error taxonomy for campaign cases.
OK = "ok"
TIMEOUT = "timeout"
INJECTION_ERROR = "injection_error"
DESIGN_ERROR = "design_error"
TOOL_ERROR = "tool_error"
CRASH = "crash"

TAXONOMY = (OK, TIMEOUT, INJECTION_ERROR, DESIGN_ERROR, TOOL_ERROR, CRASH)

#: Per-tool outcome labels aggregated by the report.
OUTCOMES = (DETECTED, MISSED, FALSE_SILENCE, SENSITIVE, MASKED)


@dataclass
class FaultCampaignConfig:
    """Everything that determines a campaign (and its replay/resume)."""

    bugs: tuple = tuple(BUG_IDS)
    faults_per_bug: int = 8
    seed: int = 0
    #: Events per injected schedule (1 = classic single-fault model).
    events_per_fault: int = 1
    #: Restrict sampling to these fault kinds (None = all applicable).
    kinds: tuple = None
    cycle_range: tuple = (5, 60)
    case_timeout: float = 30.0
    retries: int = 2
    backoff: float = 0.25
    output_dir: str = "results/faults"
    journal_path: str = None
    resume: bool = True
    #: Explicit ``((bug_id, index), ...)`` case subset to run instead of
    #: the full ``bugs x range(faults_per_bug)`` grid. Case seeds depend
    #: only on ``(seed, bug, index)``, so any partition of the grid —
    #: the serve fabric shards campaigns this way — produces records
    #: identical to the full run's, whatever the execution order.
    case_list: tuple = None

    def case_grid(self):
        """The ``(bug_id, index)`` pairs this campaign will run."""
        if self.case_list is not None:
            return [(bug, int(index)) for bug, index in self.case_list]
        return [
            (bug_id, index)
            for bug_id in self.bugs
            for index in range(self.faults_per_bug)
        ]

    def resolved_journal_path(self):
        import os

        if self.journal_path is not None:
            return self.journal_path
        return os.path.join(self.output_dir, "journal_seed%d.jsonl" % self.seed)


def case_key(bug_id, index):
    return "%s#%d" % (bug_id, index)


def case_seed(campaign_seed, bug_id, index):
    """Deterministic per-case seed, independent of execution order."""
    tag = zlib.crc32(bug_id.encode("utf-8")) & 0xFFFFFFFF
    return (campaign_seed * 1_000_003 + tag * 31 + index * 7_919) & 0x7FFFFFFF


@dataclass
class FaultCampaignReport:
    """Aggregated campaign outcome, rebuilt purely from journal records."""

    config: FaultCampaignConfig
    records: list = field(default_factory=list)
    resumed: int = 0
    interrupted: bool = False
    elapsed: float = 0.0

    # -- aggregation --------------------------------------------------------

    def taxonomy_counts(self):
        counts = {status: 0 for status in TAXONOMY}
        for record in self.records:
            counts[record["status"]] = counts.get(record["status"], 0) + 1
        return counts

    def tool_summary(self):
        """Per-tool outcome counts and detection rate over scored cases."""
        summary = {
            tool: {outcome: 0 for outcome in OUTCOMES} for tool in TOOL_NAMES
        }
        for record in self.records:
            if record["status"] != OK:
                continue
            for tool, reading in record.get("tools", {}).items():
                outcome = reading.get("outcome")
                if tool in summary and outcome in summary[tool]:
                    summary[tool][outcome] += 1
        for tool, counts in summary.items():
            effectful = (
                counts[DETECTED] + counts[MISSED] + counts[FALSE_SILENCE]
            )
            counts["effectful"] = effectful
            counts["detection_rate"] = (
                round(counts[DETECTED] / effectful, 4) if effectful else None
            )
        return summary

    def osdd_summary(self):
        """OSDD stats over effectful cases where both surfaces diverged.

        A case contributes when its traced architectural run produced an
        output *and* a state divergence (``osdd`` non-null); the summary
        says how many cycles of slack a debugger typically has between
        the first wrong register and the first wrong output.
        """
        values = sorted(
            record["osdd"]
            for record in self.records
            if record["status"] == OK and record.get("osdd") is not None
        )
        if not values:
            return {"cases": 0, "mean": None, "min": None, "max": None}
        return {
            "cases": len(values),
            "mean": round(sum(values) / len(values), 2),
            "min": values[0],
            "max": values[-1],
        }

    def losscheck_loss_designs(self):
        """Bugs where LossCheck caught an injected data-loss fault."""
        designs = set()
        for record in self.records:
            if record["status"] != OK or not record.get("effect"):
                continue
            reading = record.get("tools", {}).get("losscheck")
            if not reading or reading.get("outcome") != DETECTED:
                continue
            kinds = {
                event.get("kind")
                for event in record.get("fault", {}).get("events", [])
            }
            if kinds & set(DATA_LOSS_KINDS):
                designs.add(record["bug"])
        return sorted(designs)

    def to_report(self):
        """The deterministic ``repro.faults/v1`` detection report."""
        return {
            "schema": SCHEMA,
            "seed": self.config.seed,
            "bugs": list(self.config.bugs),
            "faults_per_bug": self.config.faults_per_bug,
            "events_per_fault": self.config.events_per_fault,
            "kinds": list(self.config.kinds) if self.config.kinds else None,
            "cases": len(self.records),
            "interrupted": self.interrupted,
            "taxonomy": self.taxonomy_counts(),
            "tools": self.tool_summary(),
            "osdd": self.osdd_summary(),
            "losscheck_loss_designs": self.losscheck_loss_designs(),
            "records": sorted(
                self.records, key=lambda record: record["case"]
            ),
        }

    def to_meta(self):
        """Compact summary for the ``repro.obs/v1`` run report."""
        return {
            "seed": self.config.seed,
            "bugs": list(self.config.bugs),
            "cases": len(self.records),
            "resumed": self.resumed,
            "interrupted": self.interrupted,
            "taxonomy": self.taxonomy_counts(),
            "tools": {
                tool: counts["detection_rate"]
                for tool, counts in self.tool_summary().items()
            },
            "osdd": self.osdd_summary(),
            "losscheck_loss_designs": self.losscheck_loss_designs(),
            "elapsed_seconds": round(self.elapsed, 3),
        }


def _classify_error(exc):
    if isinstance(exc, TimeLimitExceeded):
        return TIMEOUT
    if isinstance(exc, InjectionError):
        return INJECTION_ERROR
    if isinstance(exc, (SimulatorError, EvaluationError)):
        return DESIGN_ERROR
    return CRASH


def _run_case(config, scorers, bug_id, index, sleep):
    """Execute one campaign case; always returns a journal record."""
    seed = case_seed(config.seed, bug_id, index)
    base = {
        "case": case_key(bug_id, index),
        "bug": bug_id,
        "index": index,
        "case_seed": seed,
    }

    def attempt():
        with time_limit(config.case_timeout):
            scorer = scorers.get(bug_id)
            if scorer is None:
                scorer = DetectionScorer(bug_id)
                scorers[bug_id] = scorer
            schedule = sample_schedule(
                scorer.module,
                seed,
                events=config.events_per_fault,
                cycle_range=config.cycle_range,
                kinds=config.kinds,
            )
            return scorer.score(schedule)

    def on_retry(attempt_number, exc):
        if obs.enabled:
            obs.counter("faults.retries").inc()

    try:
        score, attempts = retry_with_backoff(
            attempt,
            retries=config.retries,
            base_delay=config.backoff,
            retry_on=(TimeLimitExceeded,),
            sleep=sleep,
            on_retry=on_retry,
        )
    except KeyboardInterrupt:
        raise
    except Exception as exc:
        status = _classify_error(exc)
        record = dict(base)
        record["status"] = status
        record["error"] = "%s: %s" % (type(exc).__name__, str(exc)[:200])
        # Stable bucketing key: frontend exceptions carry a rule code
        # (P/E-codes); everything else buckets on the type name.
        record["error_code"] = error_code(exc)
        record["attempts"] = (
            config.retries + 1 if status == TIMEOUT else 1
        )
        return record
    record = dict(base)
    record.update(score.to_dict())
    record["status"] = OK
    record["attempts"] = attempts
    return record


def _record_obs(record):
    if not obs.enabled:
        return
    obs.counter("faults.cases").inc()
    obs.counter("faults.%s" % record["status"]).inc()
    if record.get("effect"):
        obs.counter("faults.effectful").inc()


def run_fault_campaign(config, progress=None, sleep=time.sleep):
    """Run (or resume) a campaign; returns a :class:`FaultCampaignReport`.

    *progress* (optional) receives each journal record as it is written;
    *sleep* is injectable for tests. ``KeyboardInterrupt`` stops the
    sweep but still returns the partial report (journaled cases are
    never lost).
    """
    import os

    started = time.time()
    journal = JsonlJournal(config.resolved_journal_path())
    completed = {}
    if config.resume:
        for record in journal.load():
            completed[record["case"]] = record
    elif os.path.exists(journal.path):
        # A fresh run must not append after stale records.
        os.remove(journal.path)
    records = []
    resumed = 0
    scorers = {}
    interrupted = False
    with obs.span(
        "faults:campaign",
        seed=config.seed,
        bugs=len(config.bugs),
        faults_per_bug=config.faults_per_bug,
    ):
        try:
            # Group consecutive grid entries by bug so the per-bug obs
            # span survives explicit case lists (shards stay contiguous
            # per bug by construction).
            grouped = []
            for bug_id, index in config.case_grid():
                if grouped and grouped[-1][0] == bug_id:
                    grouped[-1][1].append(index)
                else:
                    grouped.append((bug_id, [index]))
            for bug_id, indexes in grouped:
                with obs.span("faults:bug", bug=bug_id):
                    for index in indexes:
                        key = case_key(bug_id, index)
                        if key in completed:
                            records.append(completed[key])
                            resumed += 1
                            if obs.enabled:
                                obs.counter("faults.resumed").inc()
                            continue
                        record = _run_case(
                            config, scorers, bug_id, index, sleep
                        )
                        journal.append(record)
                        records.append(record)
                        _record_obs(record)
                        if progress is not None:
                            progress(record)
        except KeyboardInterrupt:
            # Journaled work survives; report covers finished cases.
            interrupted = True
        finally:
            journal.close()
    return FaultCampaignReport(
        config=config,
        records=records,
        resumed=resumed,
        interrupted=interrupted,
        elapsed=time.time() - started,
    )


def write_detection_report(report, path):
    """Write the deterministic detection report as pretty-printed JSON."""
    import json
    import os

    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(report.to_report(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
