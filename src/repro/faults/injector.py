"""Deterministic fault-injection engine over the cycle-accurate simulator.

A :class:`FaultInjector` attaches to a live
:class:`~repro.sim.simulator.Simulator` through its ``cycle_hooks`` and
``forced`` extension points and realizes a :class:`FaultSchedule` at
exact cycle boundaries:

* SEUs mutate committed state once, at the start of the target cycle;
* stuck-at faults install an entry in ``Simulator.forced`` (reasserted
  after every settle pass, so combinational logic cannot heal the net)
  and schedule their own release;
* glitches are a one-cycle force of the bit-flipped current value;
* IP faults call the ``inject_*`` helpers on the bound behavioral model.

Because injection happens at cycle granularity against a deterministic
simulator, a ``(design, stimulus, schedule)`` triple replays
bit-identically — the property the campaign journal relies on.

:func:`what_if` layers the simulator's existing ``checkpoint()`` /
``restore()`` underneath an injection for StateMover-style what-if
replays: snapshot, inject-and-run, observe, roll back to the golden
timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.values import mask
from .models import (
    FIFO_DROP,
    FIFO_DUP,
    GLITCH,
    RAM_SEU,
    REC_OVERFLOW,
    SEU_MEM,
    SEU_REG,
    STUCK0,
    STUCK1,
    FaultSchedule,
)


class InjectionError(ValueError):
    """Raised when a fault event cannot be realized on the simulator."""


@dataclass
class AppliedFault:
    """Bookkeeping for one realized fault event."""

    cycle: int
    event: object
    detail: str = ""


@dataclass
class WhatIfOutcome:
    """Result of one :func:`what_if` inject-and-rollback replay."""

    value: object
    applied: list = field(default_factory=list)
    cycles: int = 0


class FaultInjector:
    """Realizes a :class:`FaultSchedule` against a live simulator.

    Attach before the first ``step()``; events scheduled for cycles the
    simulator has already passed are applied at the next cycle boundary
    (so an injector attached mid-run still realizes its whole schedule).
    """

    def __init__(self, sim, schedule, strict=True):
        if not isinstance(schedule, FaultSchedule):
            schedule = FaultSchedule(events=list(schedule))
        self.sim = sim
        self.schedule = schedule
        self.strict = strict
        #: Realized events, in application order.
        self.applied = []
        #: Events that could not be realized (non-strict mode only).
        self.skipped = []
        self._queue = sorted(schedule.events)
        self._releases = {}
        self._installed = set()
        sim.cycle_hooks.append(self._on_cycle)

    def detach(self):
        """Remove the injector and lift any still-active forces."""
        try:
            self.sim.cycle_hooks.remove(self._on_cycle)
        except ValueError:
            pass
        for name in self._installed:
            self.sim.forced.pop(name, None)
        self._releases.clear()
        self._installed.clear()

    @property
    def done(self):
        """True when every scheduled event has been applied or skipped."""
        return not self._queue

    # -- hook ---------------------------------------------------------------

    def _on_cycle(self, sim):
        cycle = sim.cycle
        for release_cycle in sorted(self._releases):
            if release_cycle > cycle:
                break
            for name in self._releases.pop(release_cycle):
                sim.forced.pop(name, None)
        while self._queue and self._queue[0].cycle <= cycle:
            event = self._queue.pop(0)
            try:
                detail = self._apply(event, sim)
            except InjectionError:
                if self.strict:
                    raise
                self.skipped.append(event)
                continue
            self.applied.append(
                AppliedFault(cycle=cycle, event=event, detail=detail)
            )

    # -- realization --------------------------------------------------------

    def _signal_width(self, sim, name):
        try:
            return sim.symbols.width_of(name)
        except Exception:
            raise InjectionError("no signal %r in design" % name)

    def _apply(self, event, sim):
        kind = event.kind
        if kind == SEU_REG:
            width = self._signal_width(sim, event.target)
            if isinstance(sim.state.get(event.target), list):
                raise InjectionError(
                    "%r is a memory; use seu_mem" % event.target
                )
            flipped = sim.state[event.target] ^ (1 << (event.bit % width))
            sim.state[event.target] = flipped & mask(width)
            return "-> %d" % sim.state[event.target]
        if kind == SEU_MEM:
            words = sim.state.get(event.target)
            if not isinstance(words, list) or not words:
                raise InjectionError("%r is not a memory" % event.target)
            width = self._signal_width(sim, event.target)
            index = event.index % len(words)
            words[index] ^= 1 << (event.bit % width)
            words[index] &= mask(width)
            return "[%d] -> %d" % (index, words[index])
        if kind in (STUCK0, STUCK1):
            width = self._signal_width(sim, event.target)
            value = 0 if kind == STUCK0 else mask(width)
            sim.forced[event.target] = value
            self._installed.add(event.target)
            if event.duration:
                self._releases.setdefault(
                    sim.cycle + event.duration, []
                ).append(event.target)
            return "= %d" % value
        if kind == GLITCH:
            width = self._signal_width(sim, event.target)
            current = sim.state.get(event.target)
            if isinstance(current, list):
                raise InjectionError("cannot glitch memory %r" % event.target)
            value = (current ^ (1 << (event.bit % width))) & mask(width)
            sim.forced[event.target] = value
            self._installed.add(event.target)
            self._releases.setdefault(sim.cycle + 1, []).append(event.target)
            return "= %d for 1 cycle" % value
        if kind in (FIFO_DROP, FIFO_DUP):
            model = self._ip(sim, event.target)
            core = getattr(model, "core", None)
            if core is None or not hasattr(core, "inject_drop"):
                raise InjectionError("%r is not a FIFO" % event.target)
            if kind == FIFO_DROP:
                value = core.inject_drop(event.index)
            else:
                value = core.inject_duplicate(event.index)
            return "noop (empty)" if value is None else "entry %d" % value
        if kind == RAM_SEU:
            model = self._ip(sim, event.target)
            if not hasattr(model, "inject_bitflip"):
                raise InjectionError("%r is not an altsyncram" % event.target)
            word = model.inject_bitflip(event.index, event.bit)
            return "[%d] -> %d" % (event.index % model.depth, word)
        if kind == REC_OVERFLOW:
            model = self._ip(sim, event.target)
            if not hasattr(model, "inject_overflow"):
                raise InjectionError("%r is not a recorder" % event.target)
            lost = model.inject_overflow(keep=event.index)
            return "lost %d samples" % lost
        raise InjectionError("unknown fault kind %r" % kind)

    def _ip(self, sim, name):
        try:
            return sim.ip_model(name)
        except KeyError:
            raise InjectionError("no IP instance %r in design" % name)


def inject(sim, schedule, strict=True):
    """Attach a :class:`FaultInjector` for *schedule* and return it."""
    return FaultInjector(sim, schedule, strict=strict)


def what_if(sim, schedule, run, strict=True):
    """Inject-and-rollback replay against a golden timeline (§7 style).

    Checkpoints *sim*, attaches an injector for *schedule*, executes
    ``run(sim)`` (e.g. ``lambda s: s.run(200)``), captures the returned
    value, then restores the checkpoint and detaches — leaving *sim*
    exactly as it was. Returns a :class:`WhatIfOutcome` carrying the
    run's return value, the applied-fault log, and the faulted cycle
    count reached.
    """
    snapshot = sim.checkpoint()
    injector = FaultInjector(sim, schedule, strict=strict)
    try:
        value = run(sim)
        cycles = sim.cycle
    finally:
        injector.detach()
        sim.restore(snapshot)
    return WhatIfOutcome(value=value, applied=list(injector.applied),
                         cycles=cycles)
