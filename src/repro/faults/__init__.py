"""repro.faults: deterministic fault injection and resilience evaluation.

The testbed reproduces 20 curated bugs; real FPGAs additionally suffer
soft errors (SEUs), stuck-at nets, timing glitches, and flaky vendor IP.
This package injects those faults into the simulator deterministically
and measures which of the paper's debugging tools notice:

* :mod:`repro.faults.models` — fault kinds expressed as ``(cycle,
  target, kind)`` schedules, plus seeded deterministic sampling;
* :mod:`repro.faults.injector` — the injection engine hooked into the
  simulator, with checkpoint/rollback what-if replays;
* :mod:`repro.faults.scoring` — differential detection scoring of
  SignalCat, the three monitors, and LossCheck on faulted vs golden
  executions;
* :mod:`repro.faults.campaign` — the resilient campaign runner:
  per-case watchdogs, retry with backoff, known-error taxonomy, and a
  crash-safe JSONL journal that makes ``python -m repro faults``
  resumable.
"""

from .models import (
    DATA_LOSS_KINDS,
    FIFO_DROP,
    FIFO_DUP,
    GLITCH,
    IP_KINDS,
    KINDS,
    RAM_SEU,
    REC_OVERFLOW,
    SEU_MEM,
    SEU_REG,
    SIGNAL_KINDS,
    STUCK0,
    STUCK1,
    FaultEvent,
    FaultModelError,
    FaultSchedule,
    FaultTargets,
    fault_targets,
    sample_event,
    sample_schedule,
)
from .injector import (
    AppliedFault,
    FaultInjector,
    InjectionError,
    WhatIfOutcome,
    inject,
    what_if,
)
from .scoring import (
    DETECTED,
    FALSE_SILENCE,
    MASKED,
    MISSED,
    SENSITIVE,
    TOOL_NAMES,
    CaseScore,
    DetectionScorer,
    ToolVerdict,
    is_data_loss_fault,
)
from .campaign import (
    SCHEMA,
    TAXONOMY,
    FaultCampaignConfig,
    FaultCampaignReport,
    case_key,
    case_seed,
    run_fault_campaign,
    write_detection_report,
)

__all__ = [
    "KINDS",
    "SIGNAL_KINDS",
    "IP_KINDS",
    "DATA_LOSS_KINDS",
    "SEU_REG",
    "SEU_MEM",
    "STUCK0",
    "STUCK1",
    "GLITCH",
    "FIFO_DROP",
    "FIFO_DUP",
    "RAM_SEU",
    "REC_OVERFLOW",
    "FaultEvent",
    "FaultSchedule",
    "FaultTargets",
    "FaultModelError",
    "fault_targets",
    "sample_event",
    "sample_schedule",
    "FaultInjector",
    "InjectionError",
    "AppliedFault",
    "WhatIfOutcome",
    "inject",
    "what_if",
    "DetectionScorer",
    "CaseScore",
    "ToolVerdict",
    "TOOL_NAMES",
    "DETECTED",
    "MISSED",
    "FALSE_SILENCE",
    "SENSITIVE",
    "MASKED",
    "is_data_loss_fault",
    "SCHEMA",
    "TAXONOMY",
    "FaultCampaignConfig",
    "FaultCampaignReport",
    "case_key",
    "case_seed",
    "run_fault_campaign",
    "write_detection_report",
]
