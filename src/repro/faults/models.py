"""Fault models: what can go wrong in a deployed FPGA design.

Real FPGAs suffer classes of failure the Table 2 testbed never
exercises: radiation-induced single-event upsets (SEUs) in configuration
and user state, stuck-at nets from marginal routing or damaged cells,
single-cycle glitches from timing violations, and misbehaving vendor IP.
Each model here is expressed as a :class:`FaultEvent` — a ``(cycle,
target, kind)`` schedule entry — so that a whole fault scenario is plain
data: deterministic, journal-serializable, and replayable.

Supported kinds
---------------

=================  ========================================================
``seu_reg``        flip one bit of a scalar register at a cycle boundary
``seu_mem``        flip one bit of one memory word
``stuck0``         force a net to all-zeros for *duration* cycles (0 = rest
                   of the run)
``stuck1``         force a net to all-ones, same duration semantics
``glitch``         single-cycle bit-flip force, released the next cycle
``fifo_drop``      an scfifo/dcfifo silently loses one queued entry
``fifo_dup``       an scfifo/dcfifo duplicates one queued entry
``ram_seu``        flip one stored bit inside an altsyncram
``rec_overflow``   the SignalCat recording buffer wraps, losing samples
=================  ========================================================

:func:`fault_targets` discovers what a design exposes to each kind;
:func:`sample_schedule` draws a deterministic schedule from a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..analysis.assignments import analyze_module
from ..hdl import ast_nodes as ast
from ..sim.values import SymbolTable

SEU_REG = "seu_reg"
SEU_MEM = "seu_mem"
STUCK0 = "stuck0"
STUCK1 = "stuck1"
GLITCH = "glitch"
FIFO_DROP = "fifo_drop"
FIFO_DUP = "fifo_dup"
RAM_SEU = "ram_seu"
REC_OVERFLOW = "rec_overflow"

#: Every supported fault kind, in documentation order.
KINDS = (
    SEU_REG, SEU_MEM, STUCK0, STUCK1, GLITCH,
    FIFO_DROP, FIFO_DUP, RAM_SEU, REC_OVERFLOW,
)

#: Kinds that target a net/register of the design itself.
SIGNAL_KINDS = (SEU_REG, STUCK0, STUCK1, GLITCH)

#: Kinds that target a blackbox IP instance.
IP_KINDS = (FIFO_DROP, FIFO_DUP, RAM_SEU, REC_OVERFLOW)

#: Kinds that model data loss or corruption on the datapath — the ones
#: LossCheck is designed to localize.
DATA_LOSS_KINDS = (SEU_MEM, STUCK0, STUCK1, GLITCH, FIFO_DROP, RAM_SEU)


class FaultModelError(ValueError):
    """Raised for a fault event the target design cannot realize."""


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault: ``(cycle, target, kind)`` plus parameters."""

    cycle: int
    kind: str
    target: str
    #: Bit position for SEU/glitch kinds (taken modulo the target width).
    bit: int = 0
    #: Memory word / FIFO position / recorder keep-count, kind-dependent.
    index: int = 0
    #: Stuck-at hold time in cycles; 0 means until the end of the run.
    duration: int = 0

    def describe(self):
        """Compact human-readable rendering for logs and reports."""
        extra = ""
        if self.kind in (SEU_REG, GLITCH):
            extra = "[%d]" % self.bit
        elif self.kind in (SEU_MEM, RAM_SEU):
            extra = "[%d].bit%d" % (self.index, self.bit)
        elif self.kind in (STUCK0, STUCK1):
            extra = "x%s" % (self.duration or "inf")
        elif self.kind in (FIFO_DROP, FIFO_DUP):
            extra = "@%d" % self.index
        return "%s(%s%s)@%d" % (self.kind, self.target, extra, self.cycle)

    def to_dict(self):
        """JSON-ready form for the campaign journal."""
        return {
            "cycle": self.cycle,
            "kind": self.kind,
            "target": self.target,
            "bit": self.bit,
            "index": self.index,
            "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            cycle=data["cycle"],
            kind=data["kind"],
            target=data["target"],
            bit=data.get("bit", 0),
            index=data.get("index", 0),
            duration=data.get("duration", 0),
        )


@dataclass
class FaultSchedule:
    """An ordered set of fault events injected into one execution."""

    events: list = field(default_factory=list)
    label: str = ""

    def __iter__(self):
        return iter(self.events)

    def __len__(self):
        return len(self.events)

    def describe(self):
        return "+".join(event.describe() for event in self.events) or "<none>"

    def to_dict(self):
        return {
            "label": self.label,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            label=data.get("label", ""),
            events=[FaultEvent.from_dict(e) for e in data.get("events", [])],
        )


@dataclass
class FaultTargets:
    """What one design exposes to each fault kind."""

    #: Sequentially-assigned scalar registers: ``[(name, width)]``.
    registers: list = field(default_factory=list)
    #: All non-input scalar nets (stuck-at/glitch candidates).
    nets: list = field(default_factory=list)
    #: Memories: ``[(name, width, depth)]``.
    memories: list = field(default_factory=list)
    #: FIFO IP instances: ``[instance_name]``.
    fifos: list = field(default_factory=list)
    #: altsyncram IP instances.
    rams: list = field(default_factory=list)
    #: signal_recorder IP instances.
    recorders: list = field(default_factory=list)

    def kinds_available(self):
        """The fault kinds this design can realize at least once."""
        kinds = []
        if self.registers:
            kinds.append(SEU_REG)
        if self.memories:
            kinds.append(SEU_MEM)
        if self.nets:
            kinds.extend((STUCK0, STUCK1, GLITCH))
        if self.fifos:
            kinds.extend((FIFO_DROP, FIFO_DUP))
        if self.rams:
            kinds.append(RAM_SEU)
        if self.recorders:
            kinds.append(REC_OVERFLOW)
        return tuple(kinds)


#: Blackbox module names backing each IP fault kind.
_FIFO_MODULES = ("scfifo", "dcfifo")
_RAM_MODULES = ("altsyncram",)
_RECORDER_MODULES = ("signal_recorder",)


def fault_targets(module):
    """Discover the fault surface of a flat elaborated *module*.

    Registers are the sequentially-assigned scalars (SEU candidates);
    nets are every declared scalar except input ports (stuck-at/glitch
    candidates — forcing an input the testbench re-drives would fight
    the stimulus); memories and IP instances come from declarations.
    """
    symbols = SymbolTable(module)
    view = analyze_module(module)
    inputs = {
        port.name
        for port in module.ports
        if port.direction is ast.PortDirection.INPUT
    }
    sequential = sorted(
        {
            record.target
            for record in view.assignments
            if record.sequential and not symbols.is_array(record.target)
        }
    )
    targets = FaultTargets()
    for name in sequential:
        targets.registers.append((name, symbols.width_of(name)))
    for name in sorted(symbols.widths):
        if symbols.is_array(name) or name in inputs:
            continue
        targets.nets.append((name, symbols.width_of(name)))
    for name in sorted(symbols.widths):
        if symbols.is_array(name):
            targets.memories.append(
                (name, symbols.width_of(name), symbols.depth_of(name))
            )
    for item in module.items:
        if not isinstance(item, ast.Instance):
            continue
        if item.module_name in _FIFO_MODULES:
            targets.fifos.append(item.instance_name)
        elif item.module_name in _RAM_MODULES:
            targets.rams.append(item.instance_name)
        elif item.module_name in _RECORDER_MODULES:
            targets.recorders.append(item.instance_name)
    return targets


def sample_event(targets, rng, cycle_range=(5, 60), kinds=None):
    """Draw one deterministic :class:`FaultEvent` from *targets*.

    *rng* is a :class:`random.Random`; the draw consumes a fixed number
    of variates per kind so schedules replay bit-identically for a seed.
    Returns None when the design exposes none of the requested *kinds*.
    """
    available = targets.kinds_available()
    if kinds is not None:
        available = tuple(k for k in available if k in kinds)
    if not available:
        return None
    kind = available[rng.randrange(len(available))]
    cycle = rng.randrange(cycle_range[0], max(cycle_range[1], cycle_range[0] + 1))
    if kind == SEU_REG:
        name, width = targets.registers[rng.randrange(len(targets.registers))]
        return FaultEvent(cycle=cycle, kind=kind, target=name,
                          bit=rng.randrange(width))
    if kind == SEU_MEM:
        name, width, depth = targets.memories[
            rng.randrange(len(targets.memories))
        ]
        return FaultEvent(cycle=cycle, kind=kind, target=name,
                          bit=rng.randrange(width),
                          index=rng.randrange(depth))
    if kind in (STUCK0, STUCK1):
        name, _width = targets.nets[rng.randrange(len(targets.nets))]
        return FaultEvent(cycle=cycle, kind=kind, target=name,
                          duration=rng.choice((0, 4, 16)))
    if kind == GLITCH:
        name, width = targets.nets[rng.randrange(len(targets.nets))]
        return FaultEvent(cycle=cycle, kind=kind, target=name,
                          bit=rng.randrange(width))
    if kind in (FIFO_DROP, FIFO_DUP):
        name = targets.fifos[rng.randrange(len(targets.fifos))]
        return FaultEvent(cycle=cycle, kind=kind, target=name,
                          index=rng.randrange(8))
    if kind == RAM_SEU:
        name = targets.rams[rng.randrange(len(targets.rams))]
        return FaultEvent(cycle=cycle, kind=kind, target=name,
                          bit=rng.randrange(32), index=rng.randrange(256))
    if kind == REC_OVERFLOW:
        name = targets.recorders[rng.randrange(len(targets.recorders))]
        return FaultEvent(cycle=cycle, kind=kind, target=name)
    raise FaultModelError("unknown fault kind %r" % kind)


def sample_schedule(module, seed, events=1, cycle_range=(5, 60), kinds=None):
    """Deterministically sample a :class:`FaultSchedule` for *module*.

    The same ``(module, seed, events, cycle_range, kinds)`` always
    produces the identical schedule — the backbone of the campaign
    runner's replay and resume guarantees.
    """
    targets = fault_targets(module)
    rng = random.Random(seed)
    drawn = []
    for _ in range(events):
        event = sample_event(targets, rng, cycle_range=cycle_range, kinds=kinds)
        if event is not None:
            drawn.append(event)
    drawn.sort()
    return FaultSchedule(events=drawn, label="seed=%d" % seed)
