"""Detection scoring: which debugging tools notice an injected fault?

The paper evaluates its five tools against 20 curated bugs; this module
turns the stack into its own robustness benchmark by asking the
complementary question the paper never ran: *when a fault the testbed
does not document strikes at runtime, which tool's output changes?*

Scoring is differential, mirroring the fuzz layer's oracles: every tool
is run on a **golden** (fault-free) execution and on the **faulted**
execution of the same stimulus, and a tool *detects* the fault when its
observable output — SignalCat's log, the FSM transition trace, the
statistics counters, the dependency-update trace, LossCheck's warning
stream — diverges between the two. The architectural outcome (symptoms
plus scenario details) decides whether the fault had any effect at all.

Per-tool outcomes for one fault:

``detected``       effectful fault, tool output diverged
``missed``         effectful fault, tool silent (not expected to help)
``false_silence``  effectful fault, tool silent *although Table 2 lists
                   it as helpful for this bug* — the damning case
``sensitive``      architecturally masked fault, tool still diverged
``masked``         masked fault, tool silent (correct silence)

Beyond the per-tool verdicts, the architectural run is traced (output
ports plus state registers) and the golden/faulted traces go through
the shared :mod:`repro.wave` aligner, so every scored case carries a
structured first divergence and an OSDD (earliest output divergence
minus earliest state divergence) — the same metric ``python -m repro
wavediff`` reports.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from .. import obs
from ..core.dependency_monitor import DependencyMonitor
from ..core.fsm_monitor import FSMMonitor
from ..core.losscheck import LossCheck
from ..core.statistics_monitor import StatisticsMonitor
from ..sim import Simulator
from ..testbed.debug_configs import CONFIGS, DebugConfig
from ..testbed.harness import load_design
from ..testbed.metadata import SPECS, Tool
from ..testbed.scenarios import GROUND_TRUTH, SCENARIOS
from ..wave.align import diff_traces
from ..wave.trace import Trace, classify_signals
from .injector import FaultInjector
from .models import DATA_LOSS_KINDS

#: Scored tools, in report order.
TOOL_NAMES = ("signalcat", "fsm", "stat", "dep", "losscheck")

_TOOL_ENUM = {
    "signalcat": Tool.SIGNALCAT,
    "fsm": Tool.FSM_MONITOR,
    "stat": Tool.STATISTICS_MONITOR,
    "dep": Tool.DEPENDENCY_MONITOR,
    "losscheck": Tool.LOSSCHECK,
}

DETECTED = "detected"
MISSED = "missed"
FALSE_SILENCE = "false_silence"
SENSITIVE = "sensitive"
MASKED = "masked"


def _digest(payload):
    """Short stable digest of a (nested, deterministic) Python value."""
    return hashlib.sha1(repr(payload).encode("utf-8")).hexdigest()[:12]


@dataclass
class ToolVerdict:
    """One tool's differential reading for one fault."""

    tool: str
    detected: bool
    golden: str
    faulted: str
    error: str = ""


@dataclass
class CaseScore:
    """Scored outcome of one injected fault on one bug."""

    bug_id: str
    schedule: object
    #: True when the architectural outcome diverged from golden.
    effect: bool
    #: Number of schedule events actually realized before the run ended.
    applied: int
    verdicts: dict = field(default_factory=dict)
    #: Output/state divergence delta from the traced architectural run
    #: (None when either surface never diverged).
    osdd: object = None
    #: First golden-vs-faulted signal divergence as a plain dict
    #: (``{"cycle", "signal", "golden", "faulted"}``), or None.
    divergence: object = None

    def classification(self, tool):
        """The per-tool outcome label (None when the tool wasn't run)."""
        verdict = self.verdicts.get(tool)
        if verdict is None:
            return None
        helpful = _TOOL_ENUM[tool] in SPECS[self.bug_id].helpful_tools
        if self.effect:
            if verdict.detected:
                return DETECTED
            return FALSE_SILENCE if helpful else MISSED
        return SENSITIVE if verdict.detected else MASKED

    def classifications(self):
        return {
            tool: self.classification(tool)
            for tool in self.verdicts
        }

    def to_dict(self):
        """Deterministic JSON form for the campaign journal."""
        return {
            "bug": self.bug_id,
            "fault": self.schedule.to_dict(),
            "effect": self.effect,
            "applied": self.applied,
            "tools": {
                tool: {
                    "detected": verdict.detected,
                    "outcome": self.classification(tool),
                    "golden": verdict.golden,
                    "faulted": verdict.faulted,
                    "error": verdict.error,
                }
                for tool, verdict in sorted(self.verdicts.items())
            },
            "osdd": self.osdd,
            "divergence": self.divergence,
        }


class DetectionScorer:
    """Caches instrumented tools + golden baselines for one testbed bug.

    Construction instruments the bug's design with each tool
    independently (FSM Monitor on detected FSMs, Statistics Monitor on
    the bug's configured events, Dependency Monitor on the configured
    target, LossCheck when the bug has a loss spec) and calibrates
    LossCheck on the shipped ground-truth test. A tool whose
    instrumentation pass fails is dropped with the error recorded —
    scoring degrades to the surviving tools instead of failing the bug.
    """

    def __init__(self, bug_id):
        self.bug_id = bug_id
        self.spec = SPECS[bug_id]
        self.config = CONFIGS.get(bug_id, DebugConfig())
        self.scenario = SCENARIOS[bug_id]
        with obs.span("faults:instrument", bug=bug_id):
            self.design = load_design(bug_id)
            self.tools = {}
            self.tool_errors = {}
            self._build_tools()
        # The architectural run traces the OSDD surface: output ports
        # plus state registers (memories stay untraced — scalar traces
        # only).
        kinds = classify_signals(self.design.top)
        self._signal_kinds = kinds
        self._trace_signals = sorted(
            name for name, kind in kinds.items() if kind in ("output", "state")
        )
        self._golden = None

    @property
    def module(self):
        """The uninstrumented flat module (fault-target surface)."""
        return self.design.top

    def _build_tools(self):
        def build(name, factory):
            try:
                self.tools[name] = factory()
            except Exception as exc:  # degrade to the remaining tools
                self.tool_errors[name] = "%s: %s" % (type(exc).__name__, exc)
                if obs.enabled:
                    obs.counter("faults.tool_build_errors").inc()

        build("fsm", lambda: FSMMonitor(
            self.design, state_names=self.spec.state_names
        ))
        if self.config.stat_events:
            build("stat", lambda: StatisticsMonitor(
                self.design, self.config.stat_events
            ))
        if self.config.dep_target is not None:
            build("dep", lambda: DependencyMonitor(
                self.design, self.config.dep_target, self.config.dep_depth
            ))
        if self.spec.losscheck is not None:
            build("losscheck", self._build_losscheck)

    def _build_losscheck(self):
        lc_spec = self.spec.losscheck
        losscheck = LossCheck(
            self.design,
            source=lc_spec.source,
            sink=lc_spec.sink,
            source_valid=lc_spec.source_valid,
        )
        if lc_spec.uses_filtering and self.bug_id in GROUND_TRUTH:
            losscheck.calibrate(GROUND_TRUTH[self.bug_id])
        return losscheck

    # -- execution ----------------------------------------------------------

    def golden(self):
        """Readings of the fault-free execution (computed once, cached)."""
        if self._golden is None:
            self._golden = self._execute(None)
        return self._golden

    def _run_design(self, module_or_design, schedule, trace=None):
        """One scenario execution, optionally faulted.

        Returns ``(sim, observation, applied)``.
        """
        sim = Simulator(module_or_design, trace=trace)
        injector = None
        if schedule is not None:
            injector = FaultInjector(sim, schedule)
        observation = self.scenario(sim)
        applied = len(injector.applied) if injector else 0
        return sim, observation, applied

    def _execute(self, schedule):
        """All tool readings for one (optionally faulted) execution.

        Returns ``(readings, applied)`` where readings maps
        ``"__arch__"`` and each available tool name to a deterministic
        reading tuple. A tool whose *run* fails under the fault yields an
        ``("error", ...)`` reading — divergence from golden then counts
        as detection-by-crash.
        """
        readings = {}
        sim, observation, applied = self._run_design(
            self.design, schedule, trace=self._trace_signals
        )
        readings["__arch__"] = self._observe_architecture(sim, observation)
        readings["__trace__"] = Trace.from_waveform(
            sim.waveform,
            {name: sim.symbols.width_of(name) for name in sim.waveform},
            kinds=self._signal_kinds,
            label="%s:%s" % (self.bug_id, "faulted" if schedule else "golden"),
        )
        readings["signalcat"] = tuple(
            (e.cycle, e.label, e.text) for e in sim.display_events
        )
        for name, reader in (
            ("fsm", self._read_fsm),
            ("stat", self._read_stat),
            ("dep", self._read_dep),
            ("losscheck", self._read_losscheck),
        ):
            tool = self.tools.get(name)
            if tool is None:
                continue
            try:
                tool_sim, _observation, tool_applied = self._run_design(
                    tool.module, schedule
                )
                readings[name] = reader(tool, tool_sim)
                applied = max(applied, tool_applied)
            except Exception as exc:
                readings[name] = ("error", type(exc).__name__, str(exc)[:200])
        return readings, applied

    def _observe_architecture(self, sim, observation):
        """Deterministic summary of the architectural outcome.

        The scenario's Observation (symptoms plus details) is the
        paper's definition of externally visible behavior; the cycle
        count and finish flag add hang/early-exit visibility.
        """
        return (
            tuple(sorted(s.value for s in observation.symptoms)),
            tuple(sorted(
                (key, str(value)) for key, value in observation.details.items()
            )),
            sim.cycle,
            sim.finished,
        )

    def _read_fsm(self, tool, sim):
        trace = tuple(
            (e.cycle, e.fsm, e.from_state, e.to_state)
            for e in tool.trace(sim)
        )
        finals = tuple(sorted(tool.final_states(sim).items()))
        return (trace, finals)

    def _read_stat(self, tool, sim):
        counts = tuple(sorted(tool.counts(sim).items()))
        trace = tuple((e.cycle, e.event, e.count) for e in tool.trace(sim))
        return (counts, trace)

    def _read_dep(self, tool, sim):
        return tuple(
            (e.cycle, e.register, e.value) for e in tool.trace(sim)
        )

    def _read_losscheck(self, tool, sim):
        warnings = [(w.cycle, w.location) for w in tool._warnings_from(sim)]
        localized = []
        for _cycle, location in warnings:
            if location in tool.filtered or location in localized:
                continue
            localized.append(location)
        return (tuple(warnings), tuple(localized))

    # -- scoring ------------------------------------------------------------

    def score(self, schedule):
        """Run *schedule* against every tool and score the detections."""
        golden, _ = self.golden()
        faulted, applied = self._execute(schedule)
        # The scenario Observation drives effect: reuse the architectural
        # channel plus every native display divergence the design itself
        # produced (a wrong $display IS an incorrect output).
        effect = (
            golden["__arch__"] != faulted["__arch__"]
            or golden["signalcat"] != faulted["signalcat"]
        )
        verdicts = {}
        for tool in TOOL_NAMES:
            if tool not in golden or tool not in faulted:
                continue
            golden_digest = _digest(golden[tool])
            faulted_digest = _digest(faulted[tool])
            error = ""
            if isinstance(faulted[tool], tuple) and faulted[tool][:1] == ("error",):
                error = "%s: %s" % (faulted[tool][1], faulted[tool][2])
            verdicts[tool] = ToolVerdict(
                tool=tool,
                detected=golden_digest != faulted_digest,
                golden=golden_digest,
                faulted=faulted_digest,
                error=error,
            )
        # Shared-aligner reading of the traced architectural run: the
        # structured first divergence and the OSDD localization metric.
        diff = diff_traces(golden["__trace__"], faulted["__trace__"])
        divergence = None
        if diff.first is not None:
            divergence = {
                "cycle": diff.first.cycle,
                "signal": diff.first.signal,
                "golden": diff.first.golden,
                "faulted": diff.first.variant,
            }
        if obs.enabled:
            obs.counter("faults.scored_cases").inc()
            for tool, verdict in verdicts.items():
                if verdict.detected:
                    obs.counter("faults.detected.%s" % tool).inc()
            if diff.osdd is not None:
                obs.gauge("wave.osdd").set(diff.osdd)
        return CaseScore(
            bug_id=self.bug_id,
            schedule=schedule,
            effect=effect,
            applied=applied,
            verdicts=verdicts,
            osdd=diff.osdd,
            divergence=divergence,
        )


def is_data_loss_fault(schedule):
    """True when any event in *schedule* is a data-loss/corruption kind."""
    return any(event.kind in DATA_LOSS_KINDS for event in schedule)
