"""Declarative IP models for the static analyses (§4.3, §4.5.1, §5).

Dependency Monitor and LossCheck cannot see inside closed-source IP blocks,
so — exactly as the paper prescribes — developers provide a model of each
IP's input/output relationships. A model lists:

* :class:`IPFlow` — data flows ``src_port -> dst_port`` with a latency in
  cycles and the ports that gate the flow;
* :class:`IPLossRule` — conditions (expressed over the IP's ports) under
  which the IP itself drops data, e.g. a FIFO write while full.

The paper implements models for ``altsyncram``, ``scfifo`` and ``dcfifo``
(394 lines of Python+Verilog, §5); :data:`DEFAULT_IP_MODELS` provides the
same three plus the SignalCat recorder.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IPFlow:
    """One data flow through an IP: src port propagates to dst port."""

    src_port: str
    dst_port: str
    #: Cycles of latency through the IP (FIFOs/BRAMs are registered: >= 1).
    latency: int = 1
    #: Template for the propagation condition over port connections.
    #: ``{port}`` placeholders are substituted with connected expressions.
    condition: str = ""
    #: True when the flow carries the src port's value bits into dst
    #: (a FIFO data word); False for flows that merely influence dst
    #: (read/write strobes driving status outputs). The bit-aware
    #: dataflow slice in :mod:`repro.flow.defuse` follows payload flows
    #: only.
    payload: bool = True


@dataclass
class IPLossRule:
    """A condition under which the IP drops data presented on a port."""

    port: str
    #: Condition template over port connections ({port} placeholders).
    condition: str
    description: str


@dataclass
class IPAnalysisModel:
    """Dependency/propagation model of one blackbox IP."""

    name: str
    flows: list = field(default_factory=list)
    loss_rules: list = field(default_factory=list)
    #: ``{port: clock port}`` — which of the IP's clocks each data/status
    #: port belongs to. Dual-clock IPs (dcfifo) are how a design crosses
    #: domains *legitimately*; the clock-domain inference in
    #: :mod:`repro.flow.clockdomain` uses this map so signals on the two
    #: sides land in their respective domains instead of tainting each
    #: other.
    port_clocks: dict = field(default_factory=dict)


ALTSYNCRAM_MODEL = IPAnalysisModel(
    name="altsyncram",
    flows=[
        IPFlow("data_a", "q_a", latency=2, condition="{wren_a}"),
        IPFlow("data_a", "q_b", latency=2, condition="{wren_a}"),
        IPFlow("data_b", "q_a", latency=2, condition="{wren_b}"),
        IPFlow("data_b", "q_b", latency=2, condition="{wren_b}"),
        IPFlow("address_a", "q_a", latency=1, payload=False),
        IPFlow("address_b", "q_b", latency=1, payload=False),
    ],
    port_clocks={
        "data_a": "clock0", "address_a": "clock0", "wren_a": "clock0",
        "q_a": "clock0",
        "data_b": "clock1", "address_b": "clock1", "wren_b": "clock1",
        "q_b": "clock1",
    },
)

SCFIFO_MODEL = IPAnalysisModel(
    name="scfifo",
    flows=[
        IPFlow("data", "q", latency=1, condition="{wrreq} && !{full}"),
        IPFlow("rdreq", "q", latency=1, payload=False),
        IPFlow("wrreq", "empty", latency=1, payload=False),
        IPFlow("rdreq", "empty", latency=1, payload=False),
        IPFlow("wrreq", "full", latency=1, payload=False),
        IPFlow("rdreq", "full", latency=1, payload=False),
        IPFlow("wrreq", "usedw", latency=1, payload=False),
        IPFlow("rdreq", "usedw", latency=1, payload=False),
    ],
    loss_rules=[
        IPLossRule(
            port="data",
            condition="{wrreq} && {full}",
            description="write request while FIFO full drops the data word",
        )
    ],
    port_clocks={
        "data": "clock", "wrreq": "clock", "rdreq": "clock", "q": "clock",
        "empty": "clock", "full": "clock", "usedw": "clock",
    },
)

DCFIFO_MODEL = IPAnalysisModel(
    name="dcfifo",
    flows=[
        IPFlow("data", "q", latency=1, condition="{wrreq} && !{wrfull}"),
        IPFlow("rdreq", "q", latency=1, payload=False),
        IPFlow("wrreq", "rdempty", latency=1, payload=False),
        IPFlow("rdreq", "rdempty", latency=1, payload=False),
        IPFlow("wrreq", "wrfull", latency=1, payload=False),
        IPFlow("rdreq", "wrfull", latency=1, payload=False),
    ],
    loss_rules=[
        IPLossRule(
            port="data",
            condition="{wrreq} && {wrfull}",
            description="write request while FIFO full drops the data word",
        )
    ],
    port_clocks={
        "data": "wrclk", "wrreq": "wrclk", "wrfull": "wrclk",
        "rdreq": "rdclk", "q": "rdclk", "rdempty": "rdclk",
    },
)

RECORDER_MODEL = IPAnalysisModel(
    name="signal_recorder",
    flows=[],  # recorder is a sink; it never feeds back into the design
)

#: Registry used by default across the analyses.
DEFAULT_IP_MODELS = {
    "altsyncram": ALTSYNCRAM_MODEL,
    "scfifo": SCFIFO_MODEL,
    "dcfifo": DCFIFO_MODEL,
    "signal_recorder": RECORDER_MODEL,
}
