"""Static analyses over elaborated designs.

* :mod:`repro.analysis.assignments` — assignments + path constraints;
* :mod:`repro.analysis.depgraph` — register dependency graphs (§4.3);
* :mod:`repro.analysis.fsm_detect` — FSM detection heuristics (§4.2);
* :mod:`repro.analysis.propagation` — data-propagation relations (§4.5.1);
* :mod:`repro.analysis.ip_models` — declarative blackbox IP models (§5).
"""

from .assignments import (
    AssignmentRecord,
    DisplayRecord,
    StaticView,
    analyze_module,
    collect_assignments,
    collect_displays,
    condition_and,
    condition_not,
    condition_or,
    expression_identifiers,
)
from .depgraph import DependencyChain, build_dependency_graph, dependency_chain
from .fsm_detect import DetectedFSM, FSMTransition, detect_fsms
from .ip_models import (
    DEFAULT_IP_MODELS,
    IPAnalysisModel,
    IPFlow,
    IPLossRule,
)
from .propagation import (
    IPLossPoint,
    PropagationRelation,
    PropagationTable,
    build_propagation_table,
    instantiate_condition,
)

__all__ = [
    "AssignmentRecord",
    "DisplayRecord",
    "StaticView",
    "analyze_module",
    "collect_assignments",
    "collect_displays",
    "condition_and",
    "condition_or",
    "condition_not",
    "expression_identifiers",
    "DependencyChain",
    "build_dependency_graph",
    "dependency_chain",
    "DetectedFSM",
    "FSMTransition",
    "detect_fsms",
    "IPAnalysisModel",
    "IPFlow",
    "IPLossRule",
    "DEFAULT_IP_MODELS",
    "PropagationRelation",
    "PropagationTable",
    "IPLossPoint",
    "build_propagation_table",
    "instantiate_condition",
]
