"""Data-propagation relations (LossCheck's static half, §4.5.1).

A propagation relation ``X ~~σ~> Y`` means the value stored in register X
propagates to register Y on cycles where σ holds. Relations are extracted
from sequential assignments; combinational signals (wires, ``always @(*)``
outputs) are *collapsed* — a register feeding a wire feeding a register
yields one register-to-register relation whose condition is the
conjunction along the chain. Input ports act as pseudo-registers (they
hold externally-driven values), which is how a LossCheck Source that is a
module input participates.

Blackbox IPs contribute relations and loss rules through their
:class:`~repro.analysis.ip_models.IPAnalysisModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..hdl import ast_nodes as ast
from ..hdl.parser import parse_expression
from ..hdl.codegen import generate_expression
from .assignments import analyze_module, condition_and, expression_identifiers
from .ip_models import DEFAULT_IP_MODELS


@dataclass
class PropagationRelation:
    """``src`` propagates to ``dst`` when ``condition`` holds (None=always)."""

    src: str
    dst: str
    condition: Optional[ast.Expression]
    lineno: int = 0
    #: Instance name when the relation crosses a blackbox IP.
    via_ip: Optional[str] = None
    #: True for `dst <= src` identity holds (excluded from overwrites).
    identity_hold: bool = False


@dataclass
class IPLossPoint:
    """An in-IP loss condition relevant to the analyzed path."""

    instance: str
    port: str
    condition: ast.Expression
    description: str
    #: Register(s) feeding the lossy port.
    sources: list = field(default_factory=list)


@dataclass
class PropagationTable:
    """All relations of a module plus classification helpers (§4.5.1)."""

    module: ast.Module
    relations: list = field(default_factory=list)
    ip_loss_points: list = field(default_factory=list)

    def into(self, name):
        """Relations whose destination is *name*."""
        return [r for r in self.relations if r.dst == name]

    def out_of(self, name):
        """Relations whose source is *name*."""
        return [r for r in self.relations if r.src == name]

    def path_registers(self, source, sink):
        """Registers on any propagation path from *source* to *sink*.

        Returns the set of names reachable from source and co-reachable
        to sink (inclusive of both endpoints).
        """
        forward = _closure(self.relations, source, lambda r: (r.src, r.dst))
        backward = _closure(self.relations, sink, lambda r: (r.dst, r.src))
        return forward & backward


def _closure(relations, start, key):
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for relation in relations:
            src, dst = key(relation)
            if src == node and dst not in seen:
                seen.add(dst)
                frontier.append(dst)
    return seen


def instantiate_condition(template, connections):
    """Substitute ``{port}`` placeholders with connected expression text."""
    if not template:
        return None
    text = template
    for port, expr in connections.items():
        text = text.replace("{%s}" % port, "(%s)" % generate_expression(expr))
    if "{" in text:
        raise KeyError("unbound port placeholder in condition %r" % template)
    return parse_expression(text)


def _comb_definitions(view):
    """target -> list of (record) for combinationally-assigned signals."""
    defs = {}
    for record in view.assignments:
        if not record.sequential:
            defs.setdefault(record.target, []).append(record)
    return defs


def _expand_sources(name, condition, comb_defs, visiting):
    """Trace *name* back through combinational definitions to registers.

    Yields (register_name, condition) pairs; conditions accumulate along
    the chain.
    """
    if name not in comb_defs or name in visiting:
        yield name, condition
        return
    visiting = visiting | {name}
    for record in comb_defs[name]:
        chained = condition_and(condition, record.condition)
        for src in record.data_sources:
            yield from _expand_sources(src, chained, comb_defs, visiting)


def build_propagation_table(module, ip_models=None):
    """Extract every register-to-register propagation relation of *module*."""
    view = analyze_module(module)
    comb_defs = _comb_definitions(view)
    table = PropagationTable(module=module)
    for record in view.assignments:
        if not record.sequential:
            continue
        identity = (
            isinstance(record.rhs, ast.Identifier)
            and record.rhs.name == record.target
        )
        for src in record.data_sources:
            for reg, condition in _expand_sources(
                src, record.condition, comb_defs, frozenset()
            ):
                table.relations.append(
                    PropagationRelation(
                        src=reg,
                        dst=record.target,
                        condition=condition,
                        lineno=record.lineno,
                        identity_hold=identity and reg == record.target,
                    )
                )
    _add_ip_relations(table, module, comb_defs, ip_models)
    return table


def _add_ip_relations(table, module, comb_defs, ip_models):
    models = dict(DEFAULT_IP_MODELS)
    if ip_models:
        models.update(ip_models)
    for item in module.items:
        if not isinstance(item, ast.Instance):
            continue
        model = models.get(item.module_name)
        if model is None:
            raise KeyError(
                "no IP analysis model for blackbox %r" % item.module_name
            )
        connections = {
            conn.port: conn.expr for conn in item.ports if conn.expr is not None
        }
        for flow in model.flows:
            src_expr = connections.get(flow.src_port)
            dst_expr = connections.get(flow.dst_port)
            if src_expr is None or dst_expr is None:
                continue
            condition = instantiate_condition(flow.condition, connections)
            dst_names = ast.lvalue_base_names(dst_expr)
            for src in expression_identifiers(src_expr):
                for reg, chained in _expand_sources(
                    src, condition, comb_defs, frozenset()
                ):
                    for dst in dst_names:
                        table.relations.append(
                            PropagationRelation(
                                src=reg,
                                dst=dst,
                                condition=chained,
                                lineno=item.lineno,
                                via_ip=item.instance_name,
                            )
                        )
        for rule in model.loss_rules:
            port_expr = connections.get(rule.port)
            if port_expr is None:
                continue
            condition = instantiate_condition(rule.condition, connections)
            sources = []
            for src in expression_identifiers(port_expr):
                for reg, _ in _expand_sources(src, None, comb_defs, frozenset()):
                    sources.append(reg)
            table.ip_loss_points.append(
                IPLossPoint(
                    instance=item.instance_name,
                    port=rule.port,
                    condition=condition,
                    description=rule.description,
                    sources=sources,
                )
            )
