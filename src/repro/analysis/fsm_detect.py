"""Static FSM detection heuristics (FSM Monitor's static half, §4.2).

Hardware FSMs follow fixed code patterns. Per the paper, a register is an
FSM state variable when:

* transitions are *conditional assignments* of constant states (e.g. inside
  a case arm or if branch), and the register itself appears in at least one
  of those conditions (typically as the case subject);
* the design performs no arithmetic on the register (that is a counter,
  not an FSM);
* the design does not select individual bits of the register.

These heuristics can produce false negatives — e.g. two-process FSMs whose
state register is assigned from a ``next_state`` variable — matching the
0-false-positive / 5-false-negative result over the paper's 32
manually-identified FSMs (§4.2, §6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..hdl import ast_nodes as ast
from .assignments import analyze_module, expression_identifiers

_ARITH_OPS = frozenset(["+", "-", "*", "/", "%", "<<", ">>", "<<<", ">>>"])


@dataclass
class FSMTransition:
    """One detected state transition.

    ``from_state`` is None when the assignment is not guarded by an
    equality test on the state register (e.g. a reset arc from any state).
    """

    from_state: Optional[int]
    to_state: int
    condition: Optional[ast.Expression]
    lineno: int = 0


@dataclass
class DetectedFSM:
    """A detected FSM register with its state space and transition arcs."""

    name: str
    width: int
    states: set = field(default_factory=set)
    transitions: list = field(default_factory=list)
    clock: Optional[str] = None


def _constant_value(expr):
    if isinstance(expr, ast.Number):
        return expr.value
    return None


def _collect_disqualified(module):
    """Names used arithmetically or bit-selected anywhere in the design."""
    disqualified = set()
    for node in module.walk():
        if isinstance(node, ast.BinaryOp) and node.op in _ARITH_OPS:
            disqualified.update(expression_identifiers(node))
        elif isinstance(node, ast.UnaryOp) and node.op == "-":
            disqualified.update(expression_identifiers(node))
        elif isinstance(node, (ast.Index, ast.PartSelect, ast.IndexedPartSelect)):
            if isinstance(node.var, ast.Identifier):
                disqualified.add(node.var.name)
    return disqualified


def _equality_states(condition, name):
    """Constants compared (positively) for equality against *name*.

    Negated subtrees (``!(state == IDLE)`` guards synthesized for case
    arm priority) are skipped: they exclude states rather than select
    them.
    """
    states = []
    if condition is None:
        return states

    def visit(node):
        if isinstance(node, ast.UnaryOp) and node.op == "!":
            return
        if isinstance(node, ast.BinaryOp) and node.op == "==":
            left, right = node.left, node.right
            value = None
            if isinstance(left, ast.Identifier) and left.name == name:
                value = _constant_value(right)
            elif isinstance(right, ast.Identifier) and right.name == name:
                value = _constant_value(left)
            if value is not None:
                states.append(value)
                return
        for child in node.children():
            visit(child)

    visit(condition)
    return states


def detect_fsms(module):
    """Detect FSM registers in an elaborated flat module.

    Returns a list of :class:`DetectedFSM`, ordered by register name.
    """
    view = analyze_module(module)
    disqualified = _collect_disqualified(module)
    input_ports = {
        p.name for p in module.ports if p.direction is ast.PortDirection.INPUT
    }
    results = []
    for decl in module.declarations():
        name = decl.name
        if decl.kind is not ast.NetKind.REG or decl.array is not None:
            continue
        if name in disqualified or name in input_ports:
            continue
        records = view.assignments_to(name)
        if not records or any(not r.sequential for r in records):
            continue
        states = set()
        transitions = []
        self_in_condition = False
        ok = True
        for record in records:
            to_state = _constant_value(record.rhs)
            if to_state is None:
                if (
                    isinstance(record.rhs, ast.Identifier)
                    and record.rhs.name == name
                ):
                    continue  # explicit hold, not a transition
                ok = False
                break
            if record.condition is None:
                ok = False  # unconditional constant: a tied register
                break
            from_states = _equality_states(record.condition, name)
            if from_states:
                self_in_condition = True
            states.add(to_state)
            states.update(from_states)
            if from_states:
                for from_state in from_states:
                    transitions.append(
                        FSMTransition(
                            from_state=from_state,
                            to_state=to_state,
                            condition=record.condition,
                            lineno=record.lineno,
                        )
                    )
            else:
                transitions.append(
                    FSMTransition(
                        from_state=None,
                        to_state=to_state,
                        condition=record.condition,
                        lineno=record.lineno,
                    )
                )
        if not ok or not self_in_condition or len(states) < 2:
            continue
        clock = next((r.clock for r in records if r.clock), None)
        results.append(
            DetectedFSM(
                name=name,
                width=decl.bit_width,
                states=states,
                transitions=transitions,
                clock=clock,
            )
        )
    results.sort(key=lambda fsm: fsm.name)
    return results
