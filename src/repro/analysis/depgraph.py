"""Register dependency graphs (Dependency Monitor's static half, §4.3).

Builds a :class:`networkx.MultiDiGraph` whose nodes are signals and whose
edges ``src -> dst`` mean "an assignment to *dst* reads *src*". Edge
attributes record:

* ``kind``: ``"data"`` (src appears in the assigned expression) or
  ``"control"`` (src appears in the path constraint);
* ``cycles``: 1 for sequential (clocked) assignments, 0 for combinational
  ones — so "registers that may propagate to v within the previous k
  cycles" is a shortest-path query;
* ``record``: the originating :class:`AssignmentRecord`.

Blackbox IPs contribute edges through developer-provided
:class:`~repro.analysis.ip_models.IPAnalysisModel` (§4.3: "To track
dependencies through a blackbox IP, Dependency Monitor requires the
developer to provide a model").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..hdl import ast_nodes as ast
from .assignments import analyze_module
from .ip_models import DEFAULT_IP_MODELS


@dataclass
class DependencyChain:
    """Result of a backward dependency query for one variable."""

    target: str
    depth: int
    #: signal name -> minimum number of cycles back it can influence target
    distances: dict = field(default_factory=dict)

    @property
    def registers(self):
        """All signals in the chain, nearest first."""
        return sorted(self.distances, key=lambda name: (self.distances[name], name))


def build_dependency_graph(module, include_control=True, ip_models=None):
    """Build the dependency MultiDiGraph for an elaborated flat module."""
    graph = nx.MultiDiGraph()
    view = analyze_module(module)
    for decl in module.declarations():
        graph.add_node(decl.name)
    for record in view.assignments:
        cycles = 1 if record.sequential else 0
        for src in record.data_sources:
            graph.add_edge(src, record.target, kind="data", cycles=cycles,
                           record=record)
        if include_control:
            for src in record.control_sources:
                graph.add_edge(src, record.target, kind="control", cycles=cycles,
                               record=record)
    _add_ip_edges(graph, module, ip_models)
    return graph


def _add_ip_edges(graph, module, ip_models):
    models = dict(DEFAULT_IP_MODELS)
    if ip_models:
        models.update(ip_models)
    for item in module.items:
        if not isinstance(item, ast.Instance):
            continue
        model = models.get(item.module_name)
        if model is None:
            raise KeyError(
                "no IP analysis model for blackbox %r; provide one via "
                "ip_models (see repro.analysis.ip_models)" % item.module_name
            )
        connections = {
            conn.port: conn.expr for conn in item.ports if conn.expr is not None
        }
        for flow in model.flows:
            src_expr = connections.get(flow.src_port)
            dst_expr = connections.get(flow.dst_port)
            if src_expr is None or dst_expr is None:
                continue
            src_names = [
                n.name for n in src_expr.walk() if isinstance(n, ast.Identifier)
            ]
            dst_names = ast.lvalue_base_names(dst_expr)
            for src in src_names:
                for dst in dst_names:
                    graph.add_edge(
                        src,
                        dst,
                        kind="data",
                        cycles=flow.latency,
                        record=None,
                        ip=item.instance_name,
                    )
    return graph


def dependency_chain(module, target, depth, include_control=True, ip_models=None):
    """Registers that may propagate to *target* within *depth* cycles.

    Implements Dependency Monitor's static analysis: a backward
    shortest-path sweep where clocked hops cost one cycle and
    combinational hops cost zero. Returns a :class:`DependencyChain`.
    """
    graph = build_dependency_graph(
        module, include_control=include_control, ip_models=ip_models
    )
    if target not in graph:
        raise KeyError("unknown signal %r" % target)
    reverse = graph.reverse(copy=False)
    distances = {target: 0}
    frontier = [target]
    while frontier:
        next_frontier = []
        for node in frontier:
            base = distances[node]
            for _, src, data in reverse.edges(node, data=True):
                cost = data.get("cycles", 1)
                total = base + cost
                if total > depth:
                    continue
                if src not in distances or total < distances[src]:
                    distances[src] = total
                    next_frontier.append(src)
        frontier = next_frontier
    return DependencyChain(target=target, depth=depth, distances=distances)
