"""Assignment and path-constraint extraction from elaborated designs.

Every tool in :mod:`repro.core` starts from the same static view of a flat
module: the list of assignments, each with the *path constraint* under which
it executes (the conjunction of enclosing ``if`` conditions and ``case``
label matches — §4.1 of the paper), plus the same view of ``$display``
statements.

:func:`collect_assignments` and :func:`collect_displays` produce these
records; :func:`condition_and`/:func:`condition_not` build the constraint
expressions that instrumentation re-emits as Verilog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..hdl import ast_nodes as ast


def condition_and(left, right):
    """Conjunction of two (possibly None == always-true) conditions."""
    if left is None:
        return right
    if right is None:
        return left
    return ast.BinaryOp(op="&&", left=left, right=right)


def condition_or(left, right):
    """Disjunction of two (possibly None == always-true) conditions."""
    if left is None or right is None:
        return None
    return ast.BinaryOp(op="||", left=left, right=right)


def condition_not(cond):
    """Negation of a condition (None == always-true becomes constant 0)."""
    if cond is None:
        return ast.Number(value=0)
    return ast.UnaryOp(op="!", operand=cond)


def case_label_condition(subject, labels):
    """Condition expression for one case arm: ``subject == l0 || ...``."""
    cond = None
    for label in labels:
        eq = ast.BinaryOp(op="==", left=subject, right=label)
        cond = eq if cond is None else ast.BinaryOp(op="||", left=cond, right=eq)
    return cond


def expression_identifiers(expr):
    """All identifier names referenced by *expr* (in source order)."""
    names = []
    for node in expr.walk():
        if isinstance(node, ast.Identifier):
            names.append(node.name)
    return names


@dataclass
class AssignmentRecord:
    """One assignment with its execution context.

    ``condition`` is the path constraint (None == unconditional). For
    sequential assignments ``clock`` names the triggering clock signal.
    """

    lhs: ast.Expression
    rhs: ast.Expression
    target: str
    condition: Optional[ast.Expression]
    sequential: bool
    clock: Optional[str] = None
    lineno: int = 0
    blocking: bool = False
    #: Index of the always block this assignment lives in (-1 for
    #: continuous assigns). Lets flow checkers tell same-block
    #: last-write-wins ordering from cross-block write-write races.
    block: int = -1

    @property
    def data_sources(self):
        """Identifier names the assigned value is computed from."""
        return expression_identifiers(self.rhs) + self._lhs_index_sources()

    @property
    def control_sources(self):
        """Identifier names the path constraint depends on."""
        if self.condition is None:
            return []
        return expression_identifiers(self.condition)

    def _lhs_index_sources(self):
        names = []
        node = self.lhs
        while isinstance(node, (ast.Index, ast.IndexedPartSelect)):
            index = node.index if isinstance(node, ast.Index) else node.base
            names.extend(expression_identifiers(index))
            node = node.var
        return names


@dataclass
class DisplayRecord:
    """One ``$display`` with its path constraint and enclosing block info."""

    stmt: ast.Display
    condition: Optional[ast.Expression]
    clock: Optional[str]
    index: int = 0

    @property
    def argument_names(self):
        """Identifier names appearing in the display arguments."""
        names = []
        for arg in self.stmt.args:
            names.extend(expression_identifiers(arg))
        return names


@dataclass
class StaticView:
    """Static summary of a flat module used by all debugging tools."""

    module: ast.Module
    assignments: list = field(default_factory=list)
    displays: list = field(default_factory=list)

    def assignments_to(self, name):
        """All assignment records whose target is *name*."""
        return [a for a in self.assignments if a.target == name]

    def assignments_reading(self, name):
        """All assignment records whose rhs or condition reads *name*."""
        return [
            a
            for a in self.assignments
            if name in a.data_sources or name in a.control_sources
        ]


def _clock_of(always):
    for item in always.sens:
        if item.edge in (ast.Edge.POSEDGE, ast.Edge.NEGEDGE):
            return item.signal
    return None


class _Collector:
    def __init__(self, sequential, clock, block=-1):
        self.sequential = sequential
        self.clock = clock
        self.block = block
        self.assignments = []
        self.displays = []

    def visit(self, stmt, condition):
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self.visit(inner, condition)
        elif isinstance(stmt, (ast.NonblockingAssign, ast.BlockingAssign)):
            for target in ast.lvalue_base_names(stmt.lhs):
                self.assignments.append(
                    AssignmentRecord(
                        lhs=stmt.lhs,
                        rhs=stmt.rhs,
                        target=target,
                        condition=condition,
                        sequential=self.sequential,
                        clock=self.clock,
                        lineno=stmt.lineno,
                        blocking=isinstance(stmt, ast.BlockingAssign),
                        block=self.block,
                    )
                )
        elif isinstance(stmt, ast.If):
            self.visit(stmt.then_stmt, condition_and(condition, stmt.cond))
            if stmt.else_stmt is not None:
                self.visit(
                    stmt.else_stmt, condition_and(condition, condition_not(stmt.cond))
                )
        elif isinstance(stmt, ast.Case):
            taken = None
            for item in stmt.items:
                if item.labels:
                    arm = case_label_condition(stmt.subject, item.labels)
                    guard = condition_and(
                        condition_not(taken) if taken is not None else None, arm
                    )
                    self.visit(item.stmt, condition_and(condition, guard))
                    taken = arm if taken is None else condition_or(taken, arm)
            for item in stmt.items:
                if not item.labels:
                    guard = condition_not(taken) if taken is not None else None
                    self.visit(item.stmt, condition_and(condition, guard))
        elif isinstance(stmt, ast.Display):
            self.displays.append(
                DisplayRecord(stmt=stmt, condition=condition, clock=self.clock)
            )
        elif isinstance(stmt, (ast.Finish,)):
            pass
        elif isinstance(stmt, ast.For):
            raise ValueError("for loops must be unrolled before analysis")
        else:
            raise TypeError("unsupported statement %r" % (stmt,))


def analyze_module(module):
    """Build the :class:`StaticView` for an elaborated flat module."""
    view = StaticView(module=module)
    block_index = 0
    for item in module.items:
        if isinstance(item, ast.ContinuousAssign):
            for target in ast.lvalue_base_names(item.lhs):
                view.assignments.append(
                    AssignmentRecord(
                        lhs=item.lhs,
                        rhs=item.rhs,
                        target=target,
                        condition=None,
                        sequential=False,
                        lineno=item.lineno,
                    )
                )
        elif isinstance(item, ast.Always):
            collector = _Collector(
                sequential=not item.is_combinational,
                clock=_clock_of(item),
                block=block_index,
            )
            block_index += 1
            collector.visit(item.body, None)
            view.assignments.extend(collector.assignments)
            view.displays.extend(collector.displays)
    for index, record in enumerate(view.displays):
        record.index = index
    return view


def collect_assignments(module):
    """All :class:`AssignmentRecord` of *module*."""
    return analyze_module(module).assignments


def collect_displays(module):
    """All :class:`DisplayRecord` of *module*."""
    return analyze_module(module).displays
