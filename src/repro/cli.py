"""Command-line interface: the artifact's push-button workflow.

Mirrors the paper artifact's README commands::

    python -m repro list                 # Table 2 inventory
    python -m repro table1               # regenerate Table 1
    python -m repro reproduce D2         # push-button bug reproduction
    python -m repro verify-fix D2        # run the same scenario on the fix
    python -m repro losscheck D2         # full LossCheck workflow
    python -m repro fsms D2              # FSM detection report
    python -m repro instrument D2        # emit the instrumented Verilog
    python -m repro profile D2           # span tree + metrics for one run

Global flags: ``--version`` prints the package version; ``--quiet``
suppresses stdout (the exit status still reports success/failure).
"""

from __future__ import annotations

import argparse
import contextlib
import io
import sys


def _cmd_list(args):
    from .testbed import BUG_IDS, SPECS

    print("%-4s %-28s %-22s %-8s %s" % ("ID", "Subclass", "Application",
                                         "Platform", "Symptoms"))
    for bug_id in BUG_IDS:
        spec = SPECS[bug_id]
        symptoms = ", ".join(sorted(s.value for s in spec.symptoms))
        print(
            "%-4s %-28s %-22s %-8s %s"
            % (bug_id, spec.subclass.value, spec.application,
               spec.platform.value, symptoms)
        )
    return 0


def _cmd_table1(args):
    from .study import format_table1

    print(format_table1())
    return 0


def _cmd_reproduce(args):
    from .testbed import SPECS, reproduce

    result = reproduce(args.bug_id)
    spec = SPECS[args.bug_id]
    print("%s reproduced." % args.bug_id)
    print("root cause: %s" % spec.root_cause)
    print(
        "observed symptoms: %s"
        % ", ".join(sorted(s.value for s in result.observation.symptoms))
    )
    for key, value in result.observation.details.items():
        print("  %s: %s" % (key, value))
    return 0


def _cmd_verify_fix(args):
    from .testbed import SPECS, verify_fix

    verify_fix(args.bug_id)
    print("%s fix verified clean (%s)." % (args.bug_id, SPECS[args.bug_id].fix))
    return 0


def _cmd_losscheck(args):
    from .testbed import SPECS, run_losscheck

    outcome = run_losscheck(args.bug_id)
    print("LossCheck on %s (source=%s, sink=%s):" % (
        args.bug_id,
        SPECS[args.bug_id].losscheck.source,
        SPECS[args.bug_id].losscheck.sink,
    ))
    for warning in outcome.result.warnings[:10]:
        print("  %s" % warning)
    if len(outcome.result.warnings) > 10:
        print("  ... %d more warnings" % (len(outcome.result.warnings) - 10))
    print("filtered (intentional drops): %s" % (sorted(outcome.result.filtered) or "-"))
    print("localized: %s" % (outcome.result.localized or "-"))
    print("matches the paper's outcome: %s" % outcome.matches_paper)
    return 0


def _cmd_fsms(args):
    from .analysis import detect_fsms
    from .testbed import SPECS, load_design

    spec = SPECS[args.bug_id]
    detected = detect_fsms(load_design(args.bug_id).top)
    print("manually identified: %s" % (", ".join(spec.manual_fsms) or "-"))
    print("detected:")
    for fsm in detected:
        print(
            "  %s: %d states, %d transition arcs"
            % (fsm.name, len(fsm.states), len(fsm.transitions))
        )
    missed = set(spec.manual_fsms) - {f.name for f in detected}
    if missed:
        print("missed (two-process FSMs): %s" % ", ".join(sorted(missed)))
    return 0


def _cmd_instrument(args):
    from .testbed.debug_configs import instrument_for_debugging
    from .hdl.codegen import generate_module

    instr = instrument_for_debugging(args.bug_id, buffer_depth=args.buffer)
    print(generate_module(instr.module))
    print(
        "// generated instrumentation: %d lines; recorder sample width: "
        "%d bits" % (instr.generated_lines, instr.recorder_width),
        file=sys.stderr,
    )
    return 0


def _cmd_profile(args):
    import os

    from . import obs
    from .testbed import reproduce
    from .testbed.debug_configs import instrument_for_debugging

    obs.reset()
    with obs.observed():
        with obs.span("profile", bug=args.bug_id):
            result = reproduce(args.bug_id)
            instrument_for_debugging(args.bug_id, buffer_depth=args.buffer)
        report = obs.build_report(
            "profile:%s" % args.bug_id,
            meta={
                "bug": args.bug_id,
                "reproduced": result.reproduced,
                "symptoms": sorted(
                    s.value for s in result.observation.symptoms
                ),
            },
        )
    print(obs.render_span_tree(report["spans"]))
    print()
    print(obs.render_metrics_table(report["metrics"]))
    output = args.output
    if output is None:
        os.makedirs("results", exist_ok=True)
        output = os.path.join("results", "profile_%s.json" % args.bug_id)
    obs.write_report(report, output)
    print("wrote %s" % output)
    return 0


def _cmd_fuzz(args):
    import os

    from . import obs
    from .fuzz import ORACLE_NAMES, CampaignConfig, run_campaign

    oracles = (
        tuple(args.oracle) if args.oracle else ORACLE_NAMES
    )
    config = CampaignConfig(
        cases=args.cases,
        seed=args.seed,
        jobs=args.jobs,
        cycles=args.cycles,
        oracles=oracles,
        time_budget=args.time_budget,
        output_dir=args.output_dir or os.path.join("results", "fuzz"),
    )

    def progress(result):
        if result.status not in ("ok", "invalid"):
            print(
                "case %d: %s%s %s"
                % (
                    result.index,
                    result.status,
                    " (%s)" % result.oracle if result.oracle else "",
                    result.detail[:100],
                )
            )

    obs.reset()
    with obs.observed():
        report = run_campaign(config, progress=progress)
        run_report = obs.build_report("fuzz", meta=report.to_meta())
    counts = report.counts
    print(
        "fuzz: %d cases in %.1fs — %d ok, %d invalid, %d oracle failures, "
        "%d crashes, %d timeouts (%d unique buckets)"
        % (
            len(report.results),
            report.elapsed,
            counts["ok"],
            counts["invalid"],
            counts["oracle_fail"],
            counts["crash"],
            counts["timeout"],
            len(report.buckets),
        )
    )
    for signature, path in report.reproducers.items():
        print("  reproducer %s -> %s" % (signature[:60], path))
    os.makedirs(config.output_dir, exist_ok=True)
    output = args.report or os.path.join(
        config.output_dir, "report_seed%d.json" % config.seed
    )
    obs.write_report(run_report, output)
    print("wrote %s" % output)
    return 1 if report.failures else 0


def _cmd_wave(args):
    from .sim import Simulator, write_vcd
    from .testbed import load_design
    from .testbed.scenarios import SCENARIOS

    sim = Simulator(load_design(args.bug_id, fixed=args.fixed), trace="all")
    SCENARIOS[args.bug_id](sim)
    write_vcd(
        sim,
        args.output,
        comment="testbed bug %s (%s)"
        % (args.bug_id, "fixed" if args.fixed else "buggy"),
    )
    print(
        "wrote %d-cycle waveform for %s to %s"
        % (sim.cycle, args.bug_id, args.output)
    )
    return 0


def build_parser():
    """The argparse command tree."""
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="ASPLOS'22 FPGA-debugging reproduction: testbed and tools",
    )
    parser.add_argument(
        "--version", action="version", version="repro %s" % __version__
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress stdout; rely on the exit status",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the 20 testbed bugs").set_defaults(
        func=_cmd_list
    )
    sub.add_parser("table1", help="regenerate Table 1").set_defaults(
        func=_cmd_table1
    )
    for name, func, help_text in [
        ("reproduce", _cmd_reproduce, "reproduce a bug push-button"),
        ("verify-fix", _cmd_verify_fix, "run the scenario on the fixed design"),
        ("losscheck", _cmd_losscheck, "run the LossCheck workflow on a loss bug"),
        ("fsms", _cmd_fsms, "FSM detection report for a bug's design"),
    ]:
        command = sub.add_parser(name, help=help_text)
        command.add_argument("bug_id", metavar="BUG", help="testbed id, e.g. D2")
        command.set_defaults(func=func)
    instrument = sub.add_parser(
        "instrument", help="emit the fully-instrumented Verilog for a bug"
    )
    instrument.add_argument("bug_id", metavar="BUG")
    instrument.add_argument(
        "--buffer", type=int, default=8192, help="recording buffer entries"
    )
    instrument.set_defaults(func=_cmd_instrument)
    profile = sub.add_parser(
        "profile",
        help="reproduce + instrument one bug with observability on; "
        "print the span tree and metrics, write a JSON run report",
    )
    profile.add_argument("bug_id", metavar="BUG")
    profile.add_argument(
        "--buffer", type=int, default=8192, help="recording buffer entries"
    )
    profile.add_argument(
        "-o",
        "--output",
        default=None,
        help="report path (default: results/profile_<BUG>.json)",
    )
    profile.set_defaults(func=_cmd_profile)
    fuzz = sub.add_parser(
        "fuzz",
        help="run a differential/metamorphic fuzz campaign over the stack",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default 0)"
    )
    fuzz.add_argument(
        "--cases", type=int, default=200, help="number of cases (default 200)"
    )
    fuzz.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default 1)"
    )
    fuzz.add_argument(
        "--cycles", type=int, default=48, help="simulated cycles per case"
    )
    fuzz.add_argument(
        "--time-budget",
        type=float,
        default=None,
        help="stop enqueueing cases after SECONDS of wall clock",
    )
    fuzz.add_argument(
        "--oracle",
        action="append",
        choices=["roundtrip", "differential", "metamorphic"],
        help="restrict to one oracle (repeatable; default: all three)",
    )
    fuzz.add_argument(
        "--output-dir",
        default=None,
        help="reproducer directory (default results/fuzz)",
    )
    fuzz.add_argument(
        "--report",
        default=None,
        help="run-report path (default <output-dir>/report_seed<SEED>.json)",
    )
    fuzz.set_defaults(func=_cmd_fuzz)
    wave = sub.add_parser(
        "wave", help="run a bug's scenario and dump a VCD waveform"
    )
    wave.add_argument("bug_id", metavar="BUG")
    wave.add_argument("output", help="VCD output path")
    wave.add_argument(
        "--fixed", action="store_true", help="use the fixed design variant"
    )
    wave.set_defaults(func=_cmd_wave)
    return parser


def main(argv=None):
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        if args.quiet:
            with contextlib.redirect_stdout(io.StringIO()):
                return args.func(args)
        return args.func(args)
    except KeyError as exc:
        print("error: unknown bug id %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
