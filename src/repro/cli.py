"""Command-line interface: the artifact's push-button workflow.

Mirrors the paper artifact's README commands::

    python -m repro list                 # Table 2 inventory
    python -m repro table1               # regenerate Table 1
    python -m repro reproduce D2         # push-button bug reproduction
    python -m repro verify-fix D2        # run the same scenario on the fix
    python -m repro losscheck D2         # full LossCheck workflow
    python -m repro fsms D2              # FSM detection report
    python -m repro instrument D2        # emit the instrumented Verilog
    python -m repro profile D2           # span tree + metrics for one run
    python -m repro fuzz --cases 500     # differential fuzz campaign
    python -m repro faults --seed 1      # fault-injection campaign
    python -m repro check design.v       # recovering parse + lint + passes
    python -m repro wave D8 out.vcd      # dump a scenario's VCD waveform
    python -m repro wavediff C4          # golden-vs-buggy trace diff + OSDD
    python -m repro repair D1            # template repair search + ranking
    python -m repro serve                # debugging-as-a-service job server
    python -m repro submit check D2      # run a job on a serve instance

Global flags: ``--version`` prints the package version; ``--quiet``
suppresses stdout (the exit status still reports success/failure).

Exit codes are distinct per failure stage so scripts and CI can tell
them apart: 0 success, 1 command-specific failure (e.g. fuzz oracle
failures, or ``wavediff`` finding a divergence), 2 usage/unknown bug,
3 parse, 4 elaborate, 5 simulate, 6 tool pass, 130 interrupted.
``fuzz``, ``faults``, and ``profile`` flush their partial reports
before exiting on Ctrl-C.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import sys

EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
EXIT_PARSE = 3
EXIT_ELABORATE = 4
EXIT_SIMULATE = 5
EXIT_TOOL = 6
EXIT_INTERRUPT = 130

_STAGE_NAMES = {
    EXIT_PARSE: "parse",
    EXIT_ELABORATE: "elaborate",
    EXIT_SIMULATE: "simulate",
    EXIT_TOOL: "tool pass",
}


def classify_failure(exc):
    """Map a stack exception to the CLI's stage-specific exit code."""
    from .hdl.elaborate import ElaborationError
    from .hdl.lexer import LexerError
    from .hdl.parser import ParseError
    from .sim.simulator import SimulatorError
    from .sim.values import EvaluationError

    if isinstance(exc, (LexerError, ParseError)):
        return EXIT_PARSE
    if isinstance(exc, ElaborationError):
        return EXIT_ELABORATE
    if isinstance(exc, (SimulatorError, EvaluationError)):
        return EXIT_SIMULATE
    return EXIT_TOOL


def _cmd_list(args):
    from .testbed import BUG_IDS, SPECS

    print("%-4s %-28s %-22s %-8s %s" % ("ID", "Subclass", "Application",
                                         "Platform", "Symptoms"))
    for bug_id in BUG_IDS:
        spec = SPECS[bug_id]
        symptoms = ", ".join(sorted(s.value for s in spec.symptoms))
        print(
            "%-4s %-28s %-22s %-8s %s"
            % (bug_id, spec.subclass.value, spec.application,
               spec.platform.value, symptoms)
        )
    return 0


def _cmd_table1(args):
    from .study import format_table1

    print(format_table1())
    return 0


def _cmd_reproduce(args):
    from .testbed import SPECS, reproduce

    result = reproduce(args.bug_id)
    spec = SPECS[args.bug_id]
    print("%s reproduced." % args.bug_id)
    print("root cause: %s" % spec.root_cause)
    print(
        "observed symptoms: %s"
        % ", ".join(sorted(s.value for s in result.observation.symptoms))
    )
    for key, value in result.observation.details.items():
        print("  %s: %s" % (key, value))
    return 0


def _cmd_verify_fix(args):
    from .testbed import SPECS, verify_fix

    verify_fix(args.bug_id)
    print("%s fix verified clean (%s)." % (args.bug_id, SPECS[args.bug_id].fix))
    return 0


def _cmd_losscheck(args):
    from .testbed import SPECS, run_losscheck

    outcome = run_losscheck(args.bug_id)
    print("LossCheck on %s (source=%s, sink=%s):" % (
        args.bug_id,
        SPECS[args.bug_id].losscheck.source,
        SPECS[args.bug_id].losscheck.sink,
    ))
    for warning in outcome.result.warnings[:10]:
        print("  %s" % warning)
    if len(outcome.result.warnings) > 10:
        print("  ... %d more warnings" % (len(outcome.result.warnings) - 10))
    print("filtered (intentional drops): %s" % (sorted(outcome.result.filtered) or "-"))
    print("localized: %s" % (outcome.result.localized or "-"))
    print("matches the paper's outcome: %s" % outcome.matches_paper)
    return 0


def _cmd_fsms(args):
    from .analysis import detect_fsms
    from .testbed import SPECS, load_design

    spec = SPECS[args.bug_id]
    detected = detect_fsms(load_design(args.bug_id).top)
    print("manually identified: %s" % (", ".join(spec.manual_fsms) or "-"))
    print("detected:")
    for fsm in detected:
        print(
            "  %s: %d states, %d transition arcs"
            % (fsm.name, len(fsm.states), len(fsm.transitions))
        )
    missed = set(spec.manual_fsms) - {f.name for f in detected}
    if missed:
        print("missed (two-process FSMs): %s" % ", ".join(sorted(missed)))
    return 0


def _cmd_instrument(args):
    from .testbed.debug_configs import instrument_for_debugging
    from .hdl.codegen import generate_module

    instr = instrument_for_debugging(args.bug_id, buffer_depth=args.buffer)
    print(generate_module(instr.module))
    print(
        "// generated instrumentation: %d lines; recorder sample width: "
        "%d bits" % (instr.generated_lines, instr.recorder_width),
        file=sys.stderr,
    )
    return 0


def _cmd_profile(args):
    import os

    from . import obs
    from .testbed import reproduce
    from .testbed.debug_configs import instrument_for_debugging

    obs.reset()
    result = None
    interrupted = False
    with obs.observed():
        try:
            with obs.span("profile", bug=args.bug_id):
                result = reproduce(args.bug_id)
                instrument_for_debugging(args.bug_id, buffer_depth=args.buffer)
        except KeyboardInterrupt:
            # Still flush the partial span tree + metrics below.
            interrupted = True
        meta = {"bug": args.bug_id, "interrupted": interrupted}
        if result is not None:
            meta["reproduced"] = result.reproduced
            meta["symptoms"] = sorted(
                s.value for s in result.observation.symptoms
            )
        report = obs.build_report("profile:%s" % args.bug_id, meta=meta)
    print(obs.render_span_tree(report["spans"]))
    print()
    print(obs.render_metrics_table(report["metrics"]))
    output = args.output
    if output is None:
        os.makedirs("results", exist_ok=True)
        output = os.path.join("results", "profile_%s.json" % args.bug_id)
    obs.write_report(report, output)
    print("wrote %s" % output)
    return EXIT_INTERRUPT if interrupted else 0


def _cmd_fuzz(args):
    import os

    from . import obs
    from .fuzz import ORACLE_NAMES, CampaignConfig, run_campaign

    oracles = (
        tuple(args.oracle) if args.oracle else ORACLE_NAMES
    )
    config = CampaignConfig(
        cases=args.cases,
        seed=args.seed,
        jobs=args.jobs,
        cycles=args.cycles,
        oracles=oracles,
        time_budget=args.time_budget,
        output_dir=args.output_dir or os.path.join("results", "fuzz"),
    )

    def progress(result):
        if result.status not in ("ok", "invalid"):
            print(
                "case %d: %s%s %s"
                % (
                    result.index,
                    result.status,
                    " (%s)" % result.oracle if result.oracle else "",
                    result.detail[:100],
                )
            )

    obs.reset()
    with obs.observed():
        report = run_campaign(config, progress=progress)
        run_report = obs.build_report("fuzz", meta=report.to_meta())
    counts = report.counts
    print(
        "fuzz: %d cases in %.1fs — %d ok, %d invalid, %d oracle failures, "
        "%d crashes, %d timeouts (%d unique buckets)%s"
        % (
            len(report.results),
            report.elapsed,
            counts["ok"],
            counts["invalid"],
            counts["oracle_fail"],
            counts["crash"],
            counts["timeout"],
            len(report.buckets),
            " [interrupted]" if report.interrupted else "",
        )
    )
    for signature, path in report.reproducers.items():
        print("  reproducer %s -> %s" % (signature[:60], path))
    os.makedirs(config.output_dir, exist_ok=True)
    output = args.report or os.path.join(
        config.output_dir, "report_seed%d.json" % config.seed
    )
    obs.write_report(run_report, output)
    print("wrote %s" % output)
    if report.interrupted:
        return EXIT_INTERRUPT
    return EXIT_FAILURE if report.failures else EXIT_OK


def _cmd_faults(args):
    import os

    from . import obs
    from .faults import (
        FaultCampaignConfig,
        TOOL_NAMES,
        run_fault_campaign,
        write_detection_report,
    )
    from .testbed import BUG_IDS

    bugs = tuple(args.bug) if args.bug else tuple(BUG_IDS)
    for bug_id in bugs:
        if bug_id not in BUG_IDS:
            raise KeyError(bug_id)
    config = FaultCampaignConfig(
        bugs=bugs,
        faults_per_bug=args.faults_per_bug,
        seed=args.seed,
        events_per_fault=args.events_per_fault,
        kinds=tuple(args.kind) if args.kind else None,
        case_timeout=args.timeout,
        retries=args.retries,
        output_dir=args.output_dir or os.path.join("results", "faults"),
        journal_path=args.journal,
        resume=not args.fresh,
    )

    def progress(record):
        if record["status"] != "ok":
            print(
                "case %s: %s %s"
                % (
                    record["case"],
                    record["status"],
                    record.get("error", "")[:100],
                )
            )

    obs.reset()
    with obs.observed():
        report = run_fault_campaign(config, progress=progress)
        run_report = obs.build_report("faults", meta=report.to_meta())
    taxonomy = report.taxonomy_counts()
    print(
        "faults: %d cases in %.1fs — %d ok, %d timeout, %d injection, "
        "%d design, %d tool, %d crash%s%s"
        % (
            len(report.records),
            report.elapsed,
            taxonomy["ok"],
            taxonomy["timeout"],
            taxonomy["injection_error"],
            taxonomy["design_error"],
            taxonomy["tool_error"],
            taxonomy["crash"],
            " (%d resumed from journal)" % report.resumed
            if report.resumed
            else "",
            " [interrupted]" if report.interrupted else "",
        )
    )
    summary = report.tool_summary()
    for tool in TOOL_NAMES:
        counts = summary[tool]
        rate = counts["detection_rate"]
        print(
            "  %-10s detected %d of %d effectful faults (rate %s)"
            % (
                tool,
                counts["detected"],
                counts["effectful"],
                "n/a" if rate is None else "%.2f" % rate,
            )
        )
    loss_designs = report.losscheck_loss_designs()
    print(
        "losscheck caught injected data-loss faults on: %s"
        % (", ".join(loss_designs) or "-")
    )
    detection_path = args.report or os.path.join(
        config.output_dir, "detection_seed%d.json" % config.seed
    )
    write_detection_report(report, detection_path)
    print("wrote %s" % detection_path)
    obs_path = args.obs_report or os.path.join(
        config.output_dir, "report_seed%d.json" % config.seed
    )
    obs.write_report(run_report, obs_path)
    print("wrote %s" % obs_path)
    return EXIT_INTERRUPT if report.interrupted else EXIT_OK


def _cmd_check(args):
    """Recovering frontend + lint + flow checks over files or bug IDs.

    Exit codes follow the ``repro check`` contract (distinct from the
    run-one-bug commands): 0 no errors (warnings reported but not
    fatal), 1 any error finding — or any warning under ``--strict`` —
    3 unrecoverable parse (nothing survived recovery).
    """
    from . import obs
    from .diag import (
        build_check_report,
        check_targets,
        render_check_report,
        render_check_result,
    )

    select = tuple(code for arg in args.select or () for code in arg.split(","))
    ignore = tuple(code for arg in args.ignore or () for code in arg.split(","))
    obs.reset()
    with obs.observed():
        try:
            results = check_targets(
                args.targets,
                run_tools=not args.no_tools,
                run_flow=not args.no_flow,
                select=select,
                ignore=ignore,
                strict=args.strict,
            )
        except OSError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return EXIT_USAGE
    if args.json:
        rendered = render_check_report(build_check_report(results))
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(rendered)
            print("wrote %s" % args.output)
        else:
            sys.stdout.write(rendered)
    else:
        for result in results:
            sys.stdout.write(
                render_check_result(result, verbose=args.verbose)
            )
    return max(result.exit_code for result in results)


def _cmd_wave(args):
    from .sim import Simulator
    from .testbed import load_design
    from .testbed.scenarios import SCENARIOS
    from .wave import Trace

    sim = Simulator(load_design(args.bug_id, fixed=args.fixed), trace="all")
    SCENARIOS[args.bug_id](sim)
    trace = Trace.from_simulator(sim)
    if args.signals or args.last is not None:
        trace = trace.filter(signals=args.signals, last=args.last)
    trace.save_vcd(
        args.output,
        comment="testbed bug %s (%s)"
        % (args.bug_id, "fixed" if args.fixed else "buggy"),
    )
    print(
        "wrote %d-cycle waveform (%d signals) for %s to %s"
        % (trace.cycles, len(trace.signals), args.bug_id, args.output)
    )
    return 0


def _cmd_wavediff(args):
    import os

    from . import obs
    from .wave import (
        FaultSpecError,
        render_wave_report,
        render_wave_summary,
        wavediff_bug,
        write_wave_report,
    )

    if args.fixed and not args.fault:
        print(
            "error: --fixed without --fault is redundant — the default "
            "comparison is already fixed (golden) vs buggy (variant)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    obs.reset()
    with obs.observed():
        try:
            outcome = wavediff_bug(
                args.bug_id,
                fault=args.fault,
                fixed=args.fixed,
                signals=args.signals,
                last=args.last,
                max_offset=args.align,
            )
        except FaultSpecError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return EXIT_USAGE
        if args.obs_report:
            obs.write_report(
                obs.build_report(
                    "wavediff:%s" % args.bug_id,
                    meta={
                        "bug": args.bug_id,
                        "mode": outcome.report["mode"],
                        "osdd": outcome.report["osdd"],
                    },
                ),
                args.obs_report,
            )
    if args.json:
        rendered = render_wave_report(outcome.report)
        if args.output:
            write_wave_report(outcome.report, args.output)
            print("wrote %s" % args.output)
        else:
            sys.stdout.write(rendered)
    else:
        sys.stdout.write(render_wave_summary(outcome.report))
        if args.output:
            write_wave_report(outcome.report, args.output)
            print("wrote %s" % args.output)
    if args.vcd_out:
        os.makedirs(args.vcd_out, exist_ok=True)
        for role, trace in (
            ("golden", outcome.golden),
            ("variant", outcome.variant),
        ):
            path = os.path.join(
                args.vcd_out, "%s_%s.vcd" % (args.bug_id, role)
            )
            trace.save_vcd(
                path, comment="wavediff %s %s (%s)"
                % (args.bug_id, role, trace.label)
            )
            print("wrote %s" % path)
    return EXIT_FAILURE if outcome.diverged else EXIT_OK


def _cmd_repair(args):
    import os

    from . import obs
    from .repair import (
        RepairConfig,
        render_repair_report,
        render_repair_summary,
        run_repair,
        unified_patch,
        write_repair_report,
    )

    if args.budget <= 0:
        print("error: --budget must be positive", file=sys.stderr)
        return EXIT_USAGE
    from .repair import TEMPLATE_NAMES

    for name in args.template or ():
        if name not in TEMPLATE_NAMES:
            print(
                "error: unknown template %r (known: %s)"
                % (name, ", ".join(TEMPLATE_NAMES)),
                file=sys.stderr,
            )
            return EXIT_USAGE
    config = RepairConfig(
        bug_id=args.bug_id,
        budget=args.budget,
        watchdog=args.watchdog,
        journal_path=args.journal or "",
        fresh=args.fresh,
        templates=tuple(args.template or ()),
        use_faults=not args.no_faults,
        stop_after=args.stop_after,
    )
    obs.reset()
    with obs.observed():
        try:
            outcome = run_repair(config)
        except KeyError:
            raise
        except Exception as exc:
            print(
                "error (repair): %s: %s" % (type(exc).__name__, exc),
                file=sys.stderr,
            )
            return EXIT_TOOL
        if args.obs_report:
            obs.write_report(
                obs.build_report(
                    "repair:%s" % args.bug_id,
                    meta={
                        "bug": args.bug_id,
                        "repaired": outcome.repaired,
                    },
                ),
                args.obs_report,
            )
    report = outcome.report
    if args.json:
        if args.output:
            write_repair_report(report, args.output)
            print("wrote %s" % args.output)
        else:
            sys.stdout.write(render_repair_report(report))
    else:
        sys.stdout.write(render_repair_summary(report))
        if args.output:
            write_repair_report(report, args.output)
            print("wrote %s" % args.output)
    if args.emit_patch:
        os.makedirs(args.emit_patch, exist_ok=True)
        rank_by_id = {
            entry["candidate"]: entry["rank"]
            for entry in report["ranking"]
        }
        for candidate_id in sorted(
            outcome.patches, key=lambda c: rank_by_id.get(c, 10 ** 9)
        ):
            safe = candidate_id.replace(":", "_").replace("/", "_")
            path = os.path.join(
                args.emit_patch,
                "%s_rank%d_%s.patch"
                % (args.bug_id, rank_by_id.get(candidate_id, 0), safe),
            )
            with open(path, "w") as handle:
                handle.write(unified_patch(
                    args.bug_id, candidate_id,
                    outcome.patches[candidate_id],
                ))
            print("wrote %s" % path)
    return EXIT_OK if outcome.repaired else EXIT_FAILURE


def _cmd_serve(args):
    from .serve import ChaosConfig, ReproServer, ServeConfig

    if args.fabric_port is None and args.workers <= 0:
        print("error: --workers must be positive (or use --fabric-port "
              "and start workers with `repro worker --connect`)",
              file=sys.stderr)
        return EXIT_USAGE
    if args.resume and args.fresh:
        print("error: --resume and --fresh are mutually exclusive",
              file=sys.stderr)
        return EXIT_USAGE
    if args.fresh:
        import os

        if os.path.exists(args.journal):
            os.remove(args.journal)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        watchdog=args.watchdog,
        retries=args.retries,
        backoff=args.backoff,
        jitter=args.jitter,
        cache_dir=args.cache_dir,
        cache_mb=args.cache_mb,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        journal_path=args.journal,
        resume=args.resume,
        report_path=args.report,
        drain_timeout=args.drain_timeout,
        chaos=ChaosConfig(
            seed=args.chaos_seed,
            kill_prob=args.chaos_kill_prob,
            kill_delay=args.chaos_kill_delay,
            drop_prob=args.chaos_drop_prob,
            stall_prob=args.chaos_stall_prob,
            stall_duration=args.chaos_stall_duration,
            dup_prob=args.chaos_dup_prob,
            delay_prob=args.chaos_delay_prob,
        ),
        fabric_port=args.fabric_port,
        fabric_token=args.fabric_token,
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_misses=args.heartbeat_misses,
        straggler_after=args.straggler_after,
    )
    return ReproServer(config).run()


def _cmd_worker(args):
    from .serve.worker import main_tcp

    host, sep, port = args.connect.rpartition(":")
    if not sep or not port.isdigit():
        print("error: --connect expects HOST:PORT, got %r" % args.connect,
              file=sys.stderr)
        return EXIT_USAGE
    return main_tcp(
        host or "127.0.0.1",
        int(port),
        token=args.token,
        worker_id=args.name,
        max_reconnects=args.max_reconnects,
        reconnect_delay=args.reconnect_delay,
    )


def _parse_submit_params(pairs):
    """``key=value`` pairs; values parse as JSON with string fallback."""
    import json

    params = {}
    for pair in pairs or ():
        key, sep, value = pair.partition("=")
        if not sep:
            raise ValueError("--param expects key=value, got %r" % pair)
        try:
            params[key] = json.loads(value)
        except ValueError:
            params[key] = value
    return params


def _cmd_submit(args):
    import json

    from .serve import QuotaExceeded, ServeClient, ServeClientError
    from .serve.jobs import JOB_KINDS

    if args.kind not in JOB_KINDS:
        print(
            "error: unknown job kind %r (known: %s)"
            % (args.kind, ", ".join(JOB_KINDS)),
            file=sys.stderr,
        )
        return EXIT_USAGE
    try:
        params = _parse_submit_params(args.param)
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_USAGE
    if args.target:
        # One positional shorthand per kind: a bug id (or .v path for
        # `check`), instead of spelling out --param bug=....
        if args.kind == "check":
            params.setdefault("target", args.target)
        elif args.kind in ("profile", "wavediff", "repair"):
            params.setdefault("bug", args.target)
        elif args.kind == "faults":
            params.setdefault("bugs", [args.target])
    if args.source:
        with open(args.source, "r") as handle:
            params["source"] = handle.read()
        params.setdefault("filename", args.source)
    if args.shards is not None:
        params.setdefault("_shards", args.shards)
    client = ServeClient(
        args.url, client_id=args.client, max_retries=args.max_retries
    )
    try:
        if args.wait_ready:
            client.wait_ready(timeout=args.wait_ready)
        summary = client.submit(args.kind, params)
        if args.no_wait:
            detail = summary
        else:
            detail = (
                summary
                if summary["status"] in ("done", "failed", "quarantined")
                else client.wait(summary["id"], timeout=args.timeout)
            )
            if "result" not in detail:
                detail = client.job(summary["id"])
    except QuotaExceeded as exc:
        print(
            "error: quota exceeded; retry after %.1fs" % exc.retry_after,
            file=sys.stderr,
        )
        return EXIT_FAILURE
    except (ServeClientError, OSError, TimeoutError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_FAILURE
    rendered = json.dumps(detail, indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered)
        print("wrote %s" % args.output)
    if args.json and not args.output:
        sys.stdout.write(rendered)
    else:
        print(
            "job %s (%s): %s%s%s"
            % (
                detail["id"],
                detail["kind"],
                detail["status"],
                " [cached]" if detail.get("cached") else "",
                " — %s" % detail["error"] if detail.get("error") else "",
            )
        )
    if args.no_wait:
        return EXIT_OK
    return EXIT_OK if detail["status"] == "done" else EXIT_FAILURE


def build_parser():
    """The argparse command tree."""
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="ASPLOS'22 FPGA-debugging reproduction: testbed and tools",
    )
    parser.add_argument(
        "--version", action="version", version="repro %s" % __version__
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress stdout; rely on the exit status",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the 20 testbed bugs").set_defaults(
        func=_cmd_list
    )
    sub.add_parser("table1", help="regenerate Table 1").set_defaults(
        func=_cmd_table1
    )
    for name, func, help_text in [
        ("reproduce", _cmd_reproduce, "reproduce a bug push-button"),
        ("verify-fix", _cmd_verify_fix, "run the scenario on the fixed design"),
        ("losscheck", _cmd_losscheck, "run the LossCheck workflow on a loss bug"),
        ("fsms", _cmd_fsms, "FSM detection report for a bug's design"),
    ]:
        command = sub.add_parser(name, help=help_text)
        command.add_argument("bug_id", metavar="BUG", help="testbed id, e.g. D2")
        command.set_defaults(func=func)
    instrument = sub.add_parser(
        "instrument", help="emit the fully-instrumented Verilog for a bug"
    )
    instrument.add_argument("bug_id", metavar="BUG")
    instrument.add_argument(
        "--buffer", type=int, default=8192, help="recording buffer entries"
    )
    instrument.set_defaults(func=_cmd_instrument)
    profile = sub.add_parser(
        "profile",
        help="reproduce + instrument one bug with observability on; "
        "print the span tree and metrics, write a JSON run report",
    )
    profile.add_argument("bug_id", metavar="BUG")
    profile.add_argument(
        "--buffer", type=int, default=8192, help="recording buffer entries"
    )
    profile.add_argument(
        "-o",
        "--output",
        default=None,
        help="report path (default: results/profile_<BUG>.json)",
    )
    profile.set_defaults(func=_cmd_profile)
    fuzz = sub.add_parser(
        "fuzz",
        help="run a differential/metamorphic fuzz campaign over the stack",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default 0)"
    )
    fuzz.add_argument(
        "--cases", type=int, default=200, help="number of cases (default 200)"
    )
    fuzz.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default 1)"
    )
    fuzz.add_argument(
        "--cycles", type=int, default=48, help="simulated cycles per case"
    )
    fuzz.add_argument(
        "--time-budget",
        type=float,
        default=None,
        help="stop enqueueing cases after SECONDS of wall clock",
    )
    fuzz.add_argument(
        "--oracle",
        action="append",
        choices=[
            "roundtrip", "differential", "metamorphic", "lint", "flow",
            "absint",
        ],
        help="restrict to one oracle (repeatable; default: all six)",
    )
    fuzz.add_argument(
        "--output-dir",
        default=None,
        help="reproducer directory (default results/fuzz)",
    )
    fuzz.add_argument(
        "--report",
        default=None,
        help="run-report path (default <output-dir>/report_seed<SEED>.json)",
    )
    fuzz.set_defaults(func=_cmd_fuzz)
    faults = sub.add_parser(
        "faults",
        help="run a deterministic fault-injection campaign and score "
        "which debugging tools detect each fault",
    )
    faults.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default 0)"
    )
    faults.add_argument(
        "--bug",
        action="append",
        metavar="BUG",
        help="restrict to one testbed bug (repeatable; default: all 20)",
    )
    faults.add_argument(
        "--faults-per-bug",
        type=int,
        default=8,
        help="fault schedules per bug (default 8)",
    )
    faults.add_argument(
        "--events-per-fault",
        type=int,
        default=1,
        help="events per schedule (default 1: single-fault model)",
    )
    faults.add_argument(
        "--kind",
        action="append",
        choices=[
            "seu_reg", "seu_mem", "stuck0", "stuck1", "glitch",
            "fifo_drop", "fifo_dup", "ram_seu", "rec_overflow",
        ],
        help="restrict sampling to one fault kind (repeatable)",
    )
    faults.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-case wall-clock watchdog in seconds (default 30)",
    )
    faults.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retries (with backoff) per timed-out case (default 2)",
    )
    faults.add_argument(
        "--output-dir",
        default=None,
        help="journal/report directory (default results/faults)",
    )
    faults.add_argument(
        "--journal",
        default=None,
        help="journal path (default <output-dir>/journal_seed<SEED>.jsonl)",
    )
    faults.add_argument(
        "--fresh",
        action="store_true",
        help="ignore and discard an existing journal instead of resuming",
    )
    faults.add_argument(
        "--report",
        default=None,
        help="detection-report path "
        "(default <output-dir>/detection_seed<SEED>.json)",
    )
    faults.add_argument(
        "--obs-report",
        default=None,
        help="obs run-report path "
        "(default <output-dir>/report_seed<SEED>.json)",
    )
    faults.set_defaults(func=_cmd_faults)
    check = sub.add_parser(
        "check",
        help="recovering parse + lint + instrumentation passes over "
        "Verilog files or testbed bug IDs",
    )
    check.add_argument(
        "targets",
        metavar="TARGET",
        nargs="+",
        help="a .v file path or a testbed bug ID (e.g. D2)",
    )
    check.add_argument(
        "--json",
        action="store_true",
        help="emit the byte-deterministic repro.diag/v1 JSON report",
    )
    check.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the JSON report here instead of stdout",
    )
    check.add_argument(
        "--no-tools",
        action="store_true",
        help="skip the instrumentation passes (parse + lint only)",
    )
    check.add_argument(
        "--no-flow",
        action="store_true",
        help="skip the design-level flow checkers (L04xx + L05xx rules)",
    )
    check.add_argument(
        "--select",
        action="append",
        metavar="CODES",
        help="only report codes matching these comma-separated prefixes "
        "(e.g. --select L05 keeps just the value rules; repeatable)",
    )
    check.add_argument(
        "--ignore",
        action="append",
        metavar="CODES",
        help="drop codes matching these comma-separated prefixes "
        "(applied after --select; repeatable)",
    )
    check.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on warnings too (default: only errors fail the run)",
    )
    check.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also print per-module elaboration/pass status",
    )
    check.set_defaults(func=_cmd_check)
    wave = sub.add_parser(
        "wave", help="run a bug's scenario and dump a VCD waveform"
    )
    wave.add_argument("bug_id", metavar="BUG")
    wave.add_argument("output", help="VCD output path")
    wave.add_argument(
        "--fixed", action="store_true", help="use the fixed design variant"
    )
    wave.add_argument(
        "--signals",
        action="append",
        metavar="GLOB",
        help="only dump signals matching this glob, e.g. 'fifo_*' "
        "(repeatable; default: every scalar signal)",
    )
    wave.add_argument(
        "--last",
        type=int,
        default=None,
        metavar="N",
        help="only dump the final N cycles (the window a debugger "
        "looks at first)",
    )
    wave.set_defaults(func=_cmd_wave)
    wavediff = sub.add_parser(
        "wavediff",
        help="diff a golden vs variant trace of one bug: per-signal "
        "first divergences plus the OSDD localization metric",
    )
    wavediff.add_argument("bug_id", metavar="BUG")
    wavediff.add_argument(
        "--fault",
        metavar="SPEC",
        default=None,
        help="inject a fault and diff faulted vs fault-free instead of "
        "buggy vs fixed; SPEC is "
        "KIND:TARGET@CYCLE[:bit=N][:index=N][:duration=N], '+'-joined "
        "for multiple events (e.g. seu_reg:count@12:bit=3)",
    )
    wavediff.add_argument(
        "--fixed",
        action="store_true",
        help="with --fault: inject on the fixed design instead of the "
        "buggy one",
    )
    wavediff.add_argument(
        "--json",
        action="store_true",
        help="emit the byte-deterministic repro.wave/v1 JSON report",
    )
    wavediff.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the repro.wave/v1 report here (with or without --json)",
    )
    wavediff.add_argument(
        "--vcd-out",
        metavar="DIR",
        default=None,
        help="also write <BUG>_golden.vcd and <BUG>_variant.vcd into DIR",
    )
    wavediff.add_argument(
        "--signals",
        action="append",
        metavar="GLOB",
        help="restrict the comparison to signals matching this glob "
        "(repeatable)",
    )
    wavediff.add_argument(
        "--last",
        type=int,
        default=None,
        metavar="N",
        help="restrict the comparison to the final N cycles",
    )
    wavediff.add_argument(
        "--align",
        type=int,
        default=0,
        metavar="MAX",
        help="search cycle offsets in [-MAX, MAX] to absorb "
        "pipeline-latency skew (default 0: lockstep)",
    )
    wavediff.add_argument(
        "--obs-report",
        default=None,
        help="also write a repro.obs/v1 run report (spans + wave.* gauges)",
    )
    wavediff.set_defaults(func=_cmd_wavediff)
    repair = sub.add_parser(
        "repair",
        help="search for a template patch that makes the bug's scenario "
        "pass, ranked by waveform closeness to the fixed design",
    )
    repair.add_argument("bug_id", metavar="BUG")
    repair.add_argument(
        "--budget",
        type=int,
        default=400,
        metavar="N",
        help="maximum candidates to validate (default 400)",
    )
    repair.add_argument(
        "--watchdog",
        type=float,
        default=10,
        metavar="SECONDS",
        help="wall-clock bound per candidate simulation (default 10)",
    )
    repair.add_argument(
        "--stop-after",
        type=int,
        default=5,
        metavar="N",
        help="stop once N scenario-passing candidates are found "
        "(0: exhaust the budget; default 5)",
    )
    repair.add_argument(
        "--template",
        action="append",
        metavar="NAME",
        help="restrict to this repair template (repeatable)",
    )
    repair.add_argument(
        "--no-faults",
        action="store_true",
        help="skip the fault-sensitivity localization pass (faster, "
        "coarser site ranking)",
    )
    repair.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="crash-safe JSONL journal; an interrupted campaign resumes "
        "from it instead of re-simulating",
    )
    repair.add_argument(
        "--fresh",
        action="store_true",
        help="ignore (and overwrite) an existing journal",
    )
    repair.add_argument(
        "--json",
        action="store_true",
        help="emit the byte-deterministic repro.repair/v1 JSON report",
    )
    repair.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the repro.repair/v1 report here",
    )
    repair.add_argument(
        "--emit-patch",
        metavar="DIR",
        default=None,
        help="write unified diffs of the top-ranked passing candidates "
        "into DIR",
    )
    repair.add_argument(
        "--obs-report",
        default=None,
        help="also write a repro.obs/v1 run report (spans + repair.* "
        "gauges)",
    )
    repair.set_defaults(func=_cmd_repair)
    serve = sub.add_parser(
        "serve",
        help="run the fault-tolerant debugging-as-a-service job server "
        "(check/profile/wavediff/fuzz/faults/repair over JSON-HTTP)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8731,
        help="listen port (0 picks a free one; default 8731)",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="worker processes (default 2)",
    )
    serve.add_argument(
        "--watchdog", type=float, default=120.0, metavar="SECONDS",
        help="per-attempt deadline before the worker is killed "
        "(default 120)",
    )
    serve.add_argument(
        "--retries", type=int, default=2,
        help="requeues per job after a kill/crash (default 2)",
    )
    serve.add_argument(
        "--backoff", type=float, default=0.25, metavar="SECONDS",
        help="base retry backoff, doubled per attempt (default 0.25)",
    )
    serve.add_argument(
        "--jitter", type=float, default=0.1,
        help="retry jitter fraction (default 0.1)",
    )
    serve.add_argument(
        "--cache-dir", default="results/serve/cache",
        help="content-addressed artifact cache directory",
    )
    serve.add_argument(
        "--cache-mb", type=int, default=64,
        help="cache size bound in MiB before LRU eviction (default 64)",
    )
    serve.add_argument(
        "--quota-rate", type=float, default=20.0,
        help="per-client submissions/second (0 disables quotas; "
        "default 20)",
    )
    serve.add_argument(
        "--quota-burst", type=float, default=40.0,
        help="per-client burst bucket size (default 40)",
    )
    serve.add_argument(
        "--breaker-threshold", type=int, default=5,
        help="consecutive fatal failures before a job kind is "
        "quarantined (0 disables; default 5)",
    )
    serve.add_argument(
        "--breaker-cooldown", type=float, default=30.0, metavar="SECONDS",
        help="quarantine duration before a half-open probe (default 30)",
    )
    serve.add_argument(
        "--journal", default="results/serve/journal.jsonl",
        help="crash-safe job journal path",
    )
    serve.add_argument(
        "--resume", action="store_true",
        help="replay the journal: finished jobs keep their results, "
        "incomplete ones re-run",
    )
    serve.add_argument(
        "--fresh", action="store_true",
        help="discard an existing journal instead of resuming",
    )
    serve.add_argument(
        "--report", default=None,
        help="write the deterministic repro.serve/v1 final report here "
        "on graceful drain",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="bound on waiting for in-flight jobs at SIGTERM "
        "(default 30)",
    )
    serve.add_argument(
        "--chaos-kill-prob", type=float, default=0.0,
        help="harness fault injection: probability each job attempt's "
        "worker is SIGKILLed (default 0: off)",
    )
    serve.add_argument(
        "--chaos-kill-delay", type=float, default=0.05, metavar="SECONDS",
        help="upper bound on how far into an attempt a chaos kill lands",
    )
    serve.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for deterministic chaos decisions",
    )
    serve.add_argument(
        "--chaos-drop-prob", type=float, default=0.0,
        help="fabric chaos: probability a result frame is dropped and "
        "its connection cut (default 0: off)",
    )
    serve.add_argument(
        "--chaos-stall-prob", type=float, default=0.0,
        help="fabric chaos: probability a dispatch's heartbeats go "
        "unheard for --chaos-stall-duration seconds",
    )
    serve.add_argument(
        "--chaos-stall-duration", type=float, default=0.0,
        metavar="SECONDS",
        help="length of an injected heartbeat stall",
    )
    serve.add_argument(
        "--chaos-dup-prob", type=float, default=0.0,
        help="fabric chaos: probability a result frame is applied twice",
    )
    serve.add_argument(
        "--chaos-delay-prob", type=float, default=0.0,
        help="fabric chaos: probability a result frame is applied late",
    )
    serve.add_argument(
        "--fabric-port", type=int, default=None, metavar="PORT",
        help="listen for TCP workers on PORT (0 picks a free one) "
        "instead of spawning subprocess workers; start workers with "
        "`repro worker --connect HOST:PORT`",
    )
    serve.add_argument(
        "--fabric-token", default="",
        help="shared secret TCP workers must present at handshake",
    )
    serve.add_argument(
        "--heartbeat-interval", type=float, default=2.0, metavar="SECONDS",
        help="fabric worker heartbeat period (default 2)",
    )
    serve.add_argument(
        "--heartbeat-misses", type=int, default=3,
        help="missed heartbeat intervals before a fabric worker is "
        "declared suspect and its job requeued (default 3)",
    )
    serve.add_argument(
        "--straggler-after", type=float, default=0.0, metavar="SECONDS",
        help="re-dispatch a shard child still running this long after "
        "its first sibling finished (0 disables; the loser's stale "
        "result is fenced)",
    )
    serve.set_defaults(func=_cmd_serve)
    worker = sub.add_parser(
        "worker",
        help="run one TCP fabric worker process against a "
        "`repro serve --fabric-port` server",
    )
    worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="fabric address printed by the server at startup",
    )
    worker.add_argument(
        "--token", default="",
        help="shared secret matching the server's --fabric-token",
    )
    worker.add_argument(
        "--name", default=None,
        help="worker identity shown in server logs (default pid-based)",
    )
    worker.add_argument(
        "--max-reconnects", type=int, default=5,
        help="consecutive failed connection attempts before giving up "
        "(default 5)",
    )
    worker.add_argument(
        "--reconnect-delay", type=float, default=0.5, metavar="SECONDS",
        help="base delay between reconnect attempts (default 0.5)",
    )
    worker.set_defaults(func=_cmd_worker)
    submit = sub.add_parser(
        "submit",
        help="submit one job to a running `repro serve` instance and "
        "(by default) wait for its result",
    )
    submit.add_argument(
        "kind",
        help="job kind: check, profile, wavediff, fuzz, faults, repair",
    )
    submit.add_argument(
        "target", nargs="?", default=None,
        help="bug id (or .v path for `check`); optional for fuzz/faults",
    )
    submit.add_argument(
        "--url", default="http://127.0.0.1:8731",
        help="server base URL (default http://127.0.0.1:8731)",
    )
    submit.add_argument(
        "--client", default="anon",
        help="client identity for quota accounting (default anon)",
    )
    submit.add_argument(
        "--param", action="append", metavar="KEY=VALUE",
        help="job parameter; VALUE parses as JSON with string fallback "
        "(repeatable, e.g. --param cases=50)",
    )
    submit.add_argument(
        "--source", metavar="FILE", default=None,
        help="send FILE's text as the job's inline source (check jobs)",
    )
    submit.add_argument(
        "--no-wait", action="store_true",
        help="print the job id and return without waiting",
    )
    submit.add_argument(
        "--timeout", type=float, default=600.0,
        help="wait bound in seconds (default 600)",
    )
    submit.add_argument(
        "--wait-ready", type=float, default=0.0, metavar="SECONDS",
        help="poll /healthz up to SECONDS before submitting (for "
        "scripts that just booted the server)",
    )
    submit.add_argument(
        "--max-retries", type=int, default=3,
        help="reconnects with backoff when a status poll's connection "
        "resets (submissions never retry; default 3)",
    )
    submit.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="split a fuzz/faults/repair campaign across N workers "
        "(shorthand for --param _shards=N; the merged result is "
        "byte-identical to the unsharded run)",
    )
    submit.add_argument(
        "--json", action="store_true",
        help="print the full job detail (including the result payload) "
        "as JSON",
    )
    submit.add_argument(
        "-o", "--output", default=None,
        help="write the job detail JSON here",
    )
    submit.set_defaults(func=_cmd_submit)
    return parser


def main(argv=None):
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        if args.quiet:
            with contextlib.redirect_stdout(io.StringIO()):
                return args.func(args)
        return args.func(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPT
    except KeyError as exc:
        print("error: unknown bug id %s" % exc, file=sys.stderr)
        return EXIT_USAGE
    except ValueError as exc:
        code = classify_failure(exc)
        print(
            "error (%s): %s" % (_STAGE_NAMES[code], exc), file=sys.stderr
        )
        return code


if __name__ == "__main__":
    sys.exit(main())
