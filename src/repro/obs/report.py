"""Structured run reports: JSON serialization plus terminal rendering.

A run report bundles the tracer's span trees and the registry's metric
snapshots under a versioned schema, so benchmark artifacts, the
``profile`` CLI command and the testbed harness all speak one format::

    {
      "schema": "repro.obs/v1",
      "label": "profile:D1",
      "meta": {...},
      "spans": [...],
      "metrics": [...]
    }
"""

from __future__ import annotations

import json

from .tracing import walk

#: Version tag stamped on every serialized report/artifact.
SCHEMA = "repro.obs/v1"


def build_report(label, tracer, registry, meta=None):
    """Assemble one JSON-ready report dict from live collectors."""
    return {
        "schema": SCHEMA,
        "label": label,
        "meta": dict(meta) if meta else {},
        "spans": tracer.snapshot(),
        "metrics": registry.snapshot(),
    }


def write_report(report, path):
    """Serialize *report* to *path* as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def _format_duration(seconds):
    if seconds is None:
        return "?"
    if seconds >= 1.0:
        return "%.2f s" % seconds
    if seconds >= 1e-3:
        return "%.2f ms" % (seconds * 1e3)
    return "%.0f us" % (seconds * 1e6)


def render_span_tree(spans):
    """Indented span tree with wall-clock timings, one span per line."""
    if not spans:
        return "(no spans recorded)"
    rows = []
    for depth, node in walk(spans):
        attrs = node.get("attrs", {})
        note = (
            " (%s)" % ", ".join("%s=%s" % kv for kv in sorted(attrs.items()))
            if attrs
            else ""
        )
        rows.append(
            (
                "%s%s%s" % ("  " * depth, node["name"], note),
                _format_duration(node.get("duration_s")),
            )
        )
    width = max(len(label) for label, _ in rows)
    return "\n".join(
        "%-*s  %s" % (width, label, duration) for label, duration in rows
    )


def render_metrics_table(metrics):
    """Fixed-width metrics table: name, kind, value/summary."""
    if not metrics:
        return "(no metrics recorded)"
    rows = []
    for snap in metrics:
        if snap["kind"] == "histogram":
            value = "n=%d mean=%.2f min=%s max=%s" % (
                snap["count"],
                snap["mean"],
                snap["min"],
                snap["max"],
            )
        else:
            value = str(snap["value"])
        rows.append((snap["name"], snap["kind"], value))
    name_width = max(len(name) for name, _, _ in rows)
    lines = ["%-*s  %-9s %s" % (name_width, "metric", "kind", "value")]
    lines.append("-" * (name_width + 2 + 9 + 6))
    for name, kind, value in rows:
        lines.append("%-*s  %-9s %s" % (name_width, name, kind, value))
    return "\n".join(lines)
