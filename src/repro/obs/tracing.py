"""Hierarchical wall-clock tracing spans.

A span measures one phase of work (parse, elaborate, an instrumentation
pass, a simulation run). Spans nest: entering a span while another is
open makes it a child, so a ``reproduce()`` run yields a tree like::

    profile:D1
      reproduce
        load_design
          parse
          elaborate
        simulate

When :data:`repro.obs.enabled` is ``False`` the call sites hand out the
shared :data:`NULL_SPAN` instead, which swallows everything at zero
allocation cost.
"""

from __future__ import annotations

import time


class Span:
    """One timed phase; also its own context manager."""

    __slots__ = ("name", "attrs", "start", "duration", "children", "_tracer")

    def __init__(self, name, tracer, attrs=None):
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.start = None
        self.duration = None
        self.children = []
        self._tracer = tracer

    def set(self, **attrs):
        """Attach key/value annotations to this span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self):
        self._tracer._push(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.duration = time.perf_counter() - self.start
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    def snapshot(self):
        """This span (and its subtree) as a JSON-ready dict."""
        node = {
            "name": self.name,
            "duration_s": self.duration,
        }
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.children:
            node["children"] = [child.snapshot() for child in self.children]
        return node


class _NullSpan:
    """Do-nothing span handed out while observation is disabled."""

    __slots__ = ()

    def set(self, **attrs):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


#: Shared no-op span; ``with obs.span(...)`` resolves to this when disabled.
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects root spans and maintains the open-span stack."""

    def __init__(self):
        self.roots = []
        self._stack = []

    def span(self, name, **attrs):
        """A new span, parented under the currently open span (if any)."""
        return Span(name, self, attrs)

    def _push(self, span):
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span):
        # Tolerate out-of-order exits (a caller leaking an open span must
        # not corrupt every span recorded afterwards).
        if span in self._stack:
            while self._stack and self._stack.pop() is not span:
                pass

    @property
    def current(self):
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def snapshot(self):
        """All completed root spans as JSON-ready dicts."""
        return [root.snapshot() for root in self.roots]

    def reset(self):
        self.roots = []
        self._stack = []


def walk(snapshots):
    """Yield ``(depth, node)`` over span snapshot trees, pre-order."""
    stack = [(0, node) for node in reversed(snapshots)]
    while stack:
        depth, node = stack.pop()
        yield depth, node
        for child in reversed(node.get("children", ())):
            stack.append((depth + 1, child))


def max_depth(snapshots):
    """Deepest nesting level across the snapshot trees (roots are 1)."""
    deepest = 0
    for depth, _ in walk(snapshots):
        deepest = max(deepest, depth + 1)
    return deepest
