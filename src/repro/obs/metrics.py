"""Metric primitives: counters, gauges, and histograms.

The registry is deliberately tiny — the observability layer is compiled
into every hot path (simulator settle loop, instrumentation passes) and
must cost nothing when :data:`repro.obs.enabled` is ``False``, so all
the gating happens at the call sites; the primitives themselves stay
allocation-free on the update paths.
"""

from __future__ import annotations


class Counter:
    """Monotonically increasing count (cycles, events, evaluations)."""

    kind = "counter"

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def snapshot(self):
        return {"name": self.name, "kind": self.kind, "value": self.value}


class Gauge:
    """Last-written value (generated LoC, added registers, BRAM bits)."""

    kind = "gauge"

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value

    def inc(self, amount=1):
        self.value += amount

    def snapshot(self):
        return {"name": self.name, "kind": self.kind, "value": self.value}


class Histogram:
    """Distribution summary with power-of-two buckets.

    ``observe(n)`` files *n* under the bucket whose upper bound is the
    smallest power of two ``>= n`` (0 gets its own bucket) — cheap, and
    plenty of resolution for the distributions we care about (settle
    iterations per cycle, samples per recording window).
    """

    kind = "histogram"

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name):
        self.name = name
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.buckets = {}

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bound = 0 if value <= 0 else 1 << max(0, int(value - 1).bit_length())
        self.buckets[bound] = self.buckets.get(bound, 0) + 1

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def percentile(self, q):
        """Upper-bound estimate of the *q*-quantile (``0 <= q <= 1``).

        Walks the bucket histogram and returns the upper bound of the
        bucket containing the q-th observation — so the true value is
        at most the returned one. Resolution is the bucket width (a
        factor of two), which is enough for the latency dashboards this
        feeds (p50/p99 on ``serve.latency_ms``).
        """
        if not self.count:
            return 0.0
        rank = max(1, int(q * self.count + 0.999999))
        seen = 0
        for bound in sorted(self.buckets):
            seen += self.buckets[bound]
            if seen >= rank:
                return float(bound)
        return float(self.max if self.max is not None else 0.0)

    def snapshot(self):
        return {
            "name": self.name,
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Get-or-create store for all metrics of one process."""

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self):
        self._metrics = {}

    def _get(self, name, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name)
        elif not isinstance(metric, cls):
            raise TypeError(
                "metric %r already registered as %s, not %s"
                % (name, metric.kind, cls.kind)
            )
        return metric

    def counter(self, name):
        return self._get(name, Counter)

    def gauge(self, name):
        return self._get(name, Gauge)

    def histogram(self, name):
        return self._get(name, Histogram)

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self):
        return len(self._metrics)

    def __contains__(self, name):
        return name in self._metrics

    def get(self, name):
        """The registered metric named *name*, or None."""
        return self._metrics.get(name)

    def snapshot(self):
        """All metrics as JSON-ready dicts, in registration order."""
        return [metric.snapshot() for metric in self._metrics.values()]

    def reset(self):
        self._metrics.clear()
