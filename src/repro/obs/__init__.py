"""repro.obs: tracing, metrics, and run reports for the stack itself.

The paper's tools (SignalCat, the monitors, LossCheck) give a *design
under test* visibility into its runtime behavior; this package does the
same for the reproduction stack: where do cycles go in the simulator,
how long does each instrumentation pass take, how much logic does it
add. Every hook is compiled in permanently but gated on the module-level
:data:`enabled` flag, so the disabled cost is one attribute load and a
branch — cheap enough to leave in the simulator's settle loop.

Usage::

    from repro import obs

    obs.enabled = True            # or: with obs.observed(): ...
    with obs.span("simulate", bug="D1"):
        sim.step(1000)
    obs.counter("sim.cycles").inc(1000)
    print(obs.render_span_tree(obs.spans()))
    obs.write_report(obs.build_report("my-run"), "results/run.json")

Call sites inside hot loops must guard with ``if obs.enabled:`` before
touching any metric; ``obs.span(...)`` self-gates by returning the
shared no-op span when disabled.
"""

from __future__ import annotations

from contextlib import contextmanager

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracing import NULL_SPAN, Span, Tracer, max_depth, walk
from .report import (
    SCHEMA,
    build_report as _build_report,
    render_metrics_table,
    render_span_tree,
    write_report,
)

#: Master switch. False by default so tests and benchmarks measure the
#: uninstrumented stack; flipped by ``python -m repro profile`` and by
#: :func:`observed`.
enabled = False

#: Process-wide collectors. One registry/tracer per process keeps the
#: call sites trivial; :func:`reset` starts a fresh observation window.
registry = MetricsRegistry()
tracer = Tracer()


def counter(name):
    """Get-or-create the counter *name*."""
    return registry.counter(name)


def gauge(name):
    """Get-or-create the gauge *name*."""
    return registry.gauge(name)


def histogram(name):
    """Get-or-create the histogram *name*."""
    return registry.histogram(name)


def span(name, **attrs):
    """A context-managed tracing span (no-op while disabled)."""
    if not enabled:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def spans():
    """Snapshot of all completed root span trees."""
    return tracer.snapshot()


def metrics():
    """Snapshot of all registered metrics."""
    return registry.snapshot()


def reset():
    """Drop all collected spans and metrics (a fresh observation window)."""
    registry.reset()
    tracer.reset()


@contextmanager
def observed(flag=True):
    """Temporarily set :data:`enabled` (used by the CLI and tests)."""
    global enabled
    previous = enabled
    enabled = flag
    try:
        yield
    finally:
        enabled = previous


def build_report(label, meta=None):
    """One JSON-ready run report from the process-wide collectors."""
    return _build_report(label, tracer, registry, meta=meta)


__all__ = [
    "enabled",
    "observed",
    "reset",
    "counter",
    "gauge",
    "histogram",
    "span",
    "spans",
    "metrics",
    "registry",
    "tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "NULL_SPAN",
    "walk",
    "max_depth",
    "SCHEMA",
    "build_report",
    "write_report",
    "render_span_tree",
    "render_metrics_table",
]
