"""Shared instrumentation machinery for the debugging tools.

All five tools transform an elaborated design by appending generated
declarations, continuous assigns, clocked blocks and blackbox recorder
instances to a *copy* of the module (the input design is never mutated).
:class:`Instrumenter` tracks what was added so tools can report the
"lines of generated Verilog" metric from the paper's evaluation (§6.3).
"""

from __future__ import annotations

import copy

from .. import obs
from ..hdl import ast_nodes as ast
from ..hdl.codegen import generate_module, generate_statement, _generate_item
from ..hdl.elaborate import Design


def clone_module(module):
    """Deep copy of a module AST (instrumentation never mutates inputs)."""
    return copy.deepcopy(module)


def dominant_clock(module):
    """The most frequently used clock signal of *module* (default 'clk')."""
    counts = {}
    for item in module.items:
        if isinstance(item, ast.Always) and not item.is_combinational:
            for sens in item.sens:
                if sens.signal:
                    counts[sens.signal] = counts.get(sens.signal, 0) + 1
    if not counts:
        return "clk"
    return max(counts, key=lambda name: (counts[name], name))


def flat_name(name):
    """Make a dotted (flattened-hierarchy) name safe for generated signals."""
    return name.replace(".", "_")


class Instrumenter:
    """Accumulates generated logic onto a cloned module."""

    def __init__(self, design, prefix):
        if isinstance(design, Design):
            module = design.top
        else:
            module = design
        self.original = module
        self.module = clone_module(module)
        self.prefix = prefix
        self.generated_items = []
        self._taken = {decl.name for decl in self.module.declarations()}
        self.clock = dominant_clock(self.module)

    def fresh(self, suffix):
        """Unique generated signal name with the tool prefix."""
        base = "%s%s" % (self.prefix, flat_name(suffix))
        name = base
        counter = 0
        while name in self._taken:
            counter += 1
            name = "%s_%d" % (base, counter)
        self._taken.add(name)
        return name

    def add_reg(self, name, width=1):
        """Declare and return a generated register."""
        decl = ast.Declaration(
            kind=ast.NetKind.REG,
            name=name,
            width=(
                ast.Width(msb=ast.Number(value=width - 1), lsb=ast.Number(value=0))
                if width > 1
                else None
            ),
        )
        self._append(decl)
        return ast.Identifier(name=name)

    def add_wire(self, name, expr, width=1):
        """Declare a generated wire continuously assigned to *expr*."""
        decl = ast.Declaration(
            kind=ast.NetKind.WIRE,
            name=name,
            width=(
                ast.Width(msb=ast.Number(value=width - 1), lsb=ast.Number(value=0))
                if width > 1
                else None
            ),
        )
        self._append(decl)
        self._append(ast.ContinuousAssign(lhs=ast.Identifier(name=name), rhs=expr))
        return ast.Identifier(name=name)

    def add_clocked_block(self, statements, clock=None):
        """Append an ``always @(posedge clock)`` block with *statements*."""
        block = ast.Always(
            sens=[ast.SensItem(edge=ast.Edge.POSEDGE, signal=clock or self.clock)],
            body=ast.Block(statements=list(statements)),
        )
        self._append(block)
        return block

    def add_instance(self, module_name, instance_name, params, ports):
        """Append a blackbox instance (e.g. the recording IP)."""
        inst = ast.Instance(
            module_name=module_name,
            instance_name=instance_name,
            params=[
                ast.ParamOverride(name=key, value=ast.Number(value=value))
                for key, value in params.items()
            ],
            ports=[
                ast.PortConnection(port=key, expr=value)
                for key, value in ports.items()
            ],
        )
        self._append(inst)
        return inst

    def _append(self, item):
        self.module.items.append(item)
        self.generated_items.append(item)

    # -- reporting ------------------------------------------------------------

    def generated_verilog(self):
        """Render only the generated instrumentation as Verilog text."""
        lines = []
        for item in self.generated_items:
            lines.extend(_generate_item(item))
        return "\n".join(lines) + ("\n" if lines else "")

    def generated_line_count(self):
        """Number of generated Verilog lines (the paper's §6.3 metric)."""
        text = self.generated_verilog()
        return sum(1 for line in text.splitlines() if line.strip())

    def instrumented_verilog(self):
        """Render the full instrumented module."""
        return generate_module(self.module)


def record_pass_metrics(tool_name, instrumenter):
    """Publish one pass's generated-LoC and resource-overhead gauges.

    Called by each tool at the end of its instrumentation pass. The
    resource deltas reuse :mod:`repro.resources` estimates (instrumented
    module minus the original), so the gauges track the same
    registers/BRAM overheads the paper's Figure 2 reports. No-op (and
    free) unless :data:`repro.obs.enabled` is set, since estimation
    walks the whole AST.
    """
    if not obs.enabled:
        return
    from ..resources import estimate_resources

    prefix = "pass.%s" % tool_name
    obs.gauge(prefix + ".generated_loc").set(instrumenter.generated_line_count())
    delta = estimate_resources(instrumenter.module) - estimate_resources(
        instrumenter.original
    )
    obs.gauge(prefix + ".added_registers").set(delta.registers)
    obs.gauge(prefix + ".added_bram_bits").set(delta.bram_bits)
    obs.gauge(prefix + ".added_logic_cells").set(delta.logic_cells)


def display_statement(fmt, args, label=""):
    """Build a labeled ``$display`` statement node."""
    return ast.Display(format=fmt, args=list(args), label=label)


def guarded(condition, stmt):
    """Wrap *stmt* in ``if (condition)`` unless condition is None."""
    if condition is None:
        return stmt
    return ast.If(cond=condition, then_stmt=stmt)
