"""Statistics Monitor: event counters for anomaly spotting (§4.4).

A developer names events of interest — each a 1-bit Verilog condition over
design signals (e.g. ``in_valid``, ``out_valid && !stall``). The monitor
generates a counter register per event plus a ``$display`` that fires on
every change, so statistical anomalies ("more inputs than outputs
arrived") are visible in the unified SignalCat log without cycle-by-cycle
recording of wide data.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hdl import ast_nodes as ast
from ..hdl.parser import parse_expression
from .. import obs
from .instrument import Instrumenter, record_pass_metrics
from .signalcat import Mode, SignalCat

_LABEL_PREFIX = "stat:"
_COUNTER_WIDTH = 32


@dataclass
class StatEvent:
    """One observed counter change."""

    cycle: int
    event: str
    count: int


class StatisticsMonitor:
    """Counts developer-specified events in a design.

    Parameters
    ----------
    design:
        Elaborated design (or flat module).
    events:
        Mapping of event name to a Verilog condition string (or an
        expression node) that is counted on every cycle where it holds.
    """

    def __init__(self, design, events):
        with obs.span("pass:statistics_monitor"):
            self.instrumenter = Instrumenter(design, prefix="stat_")
            self.module = self.instrumenter.module
            self.events = {}
            for name, condition in events.items():
                if isinstance(condition, str):
                    condition = parse_expression(condition)
                self.events[name] = condition
            self._counters = {}
            self._instrument()
        record_pass_metrics("statistics_monitor", self.instrumenter)

    def _instrument(self):
        ins = self.instrumenter
        statements = []
        for name, condition in self.events.items():
            counter = ins.add_reg(ins.fresh(name), width=_COUNTER_WIDTH)
            self._counters[name] = counter.name
            new_count = ast.BinaryOp(
                op="+", left=counter, right=ast.Number(value=1)
            )
            display = ast.Display(
                format="StatisticsMonitor: %s = %%d" % name,
                args=[new_count],
                label=_LABEL_PREFIX + name,
            )
            statements.append(
                ast.If(
                    cond=condition,
                    then_stmt=ast.Block(
                        statements=[
                            ast.NonblockingAssign(lhs=counter, rhs=new_count),
                            display,
                        ]
                    ),
                )
            )
        if statements:
            ins.add_clocked_block(statements)

    # -- runtime ----------------------------------------------------------------

    def simulator(self, mode=Mode.SIMULATION, **kwargs):
        """SignalCat-wrapped simulator for the instrumented design."""
        self._signalcat = SignalCat(self.module, mode=mode, **kwargs)
        return self._signalcat.simulator()

    def counts(self, sim):
        """Final counter values, by event name."""
        return {name: sim[reg] for name, reg in self._counters.items()}

    def trace(self, sim):
        """All counter-change events from an execution."""
        signalcat = getattr(self, "_signalcat", None)
        if signalcat is not None:
            entries = signalcat.reconstruct(sim)
            triples = [(e.cycle, e.label, e.values) for e in entries]
        else:
            triples = [
                (e.cycle, e.label, e.values) for e in sim.display_events
            ]
        events = []
        for cycle, label, values in triples:
            if label.startswith(_LABEL_PREFIX):
                events.append(
                    StatEvent(
                        cycle=cycle, event=label[len(_LABEL_PREFIX):],
                        count=values[0],
                    )
                )
        return events

    def generated_line_count(self):
        """Lines of generated Verilog (§6.3 metric)."""
        return self.instrumenter.generated_line_count()


@dataclass
class StageDivergence:
    """Where a pipeline's counts first drop (§4.4 localization)."""

    upstream: str
    downstream: str
    upstream_count: int
    downstream_count: int

    @property
    def missing(self):
        return self.upstream_count - self.downstream_count

    def __str__(self):
        return (
            "%d events entered %s but only %d reached %s (%d missing)"
            % (
                self.upstream_count,
                self.upstream,
                self.downstream_count,
                self.downstream,
                self.missing,
            )
        )


class PipelineStatistics(StatisticsMonitor):
    """Ordered per-stage counters that localize statistical anomalies.

    §4.4: "per-component (e.g. per pipeline stage) counters help a
    developer localize a statistical anomaly to a small region of a
    complex circuit." The developer lists the pipeline's stage events
    in flow order; :meth:`first_divergence` then names the first stage
    boundary where the downstream count falls behind.

    ``slack`` absorbs in-flight events (a downstream stage legitimately
    lags by the pipeline's latency).
    """

    def __init__(self, design, stages, slack=0):
        if len(stages) < 2:
            raise ValueError("a pipeline needs at least two stage events")
        self.stage_order = [name for name, _ in stages]
        self.slack = slack
        super().__init__(design, dict(stages))

    def first_divergence(self, sim):
        """The first stage boundary losing events, or None if balanced."""
        counts = self.counts(sim)
        for upstream, downstream in zip(self.stage_order, self.stage_order[1:]):
            if counts[downstream] + self.slack < counts[upstream]:
                return StageDivergence(
                    upstream=upstream,
                    downstream=downstream,
                    upstream_count=counts[upstream],
                    downstream_count=counts[downstream],
                )
        return None

    def report(self, sim):
        """Readable per-stage summary plus the divergence verdict."""
        counts = self.counts(sim)
        lines = ["%-24s %8d" % (name, counts[name]) for name in self.stage_order]
        divergence = self.first_divergence(sim)
        lines.append(
            "balanced (no loss between stages)"
            if divergence is None
            else str(divergence)
        )
        return "\n".join(lines)
