"""The paper's five debugging tools (§4).

* :class:`SignalCat` — unified simulation/on-FPGA logging (§4.1);
* :class:`FSMMonitor` — automatic FSM detection + transition traces (§4.2);
* :class:`DependencyMonitor` — provenance tracking for a variable (§4.3);
* :class:`StatisticsMonitor` — event counters (§4.4);
* :class:`LossCheck` — precise data-loss localization (§4.5).
"""

from .signalcat import DEFAULT_BUFFER_DEPTH, LogEntry, Mode, SignalCat
from .fsm_monitor import FSMMonitor, FSMTransitionEvent, MonitoredFSM
from .dependency_monitor import DependencyMonitor, UpdateEvent
from .statistics_monitor import (
    PipelineStatistics,
    StageDivergence,
    StatEvent,
    StatisticsMonitor,
)
from .losscheck import LossCheck, LossCheckResult, LossWarning
from .instrument import Instrumenter

__all__ = [
    "SignalCat",
    "Mode",
    "LogEntry",
    "DEFAULT_BUFFER_DEPTH",
    "FSMMonitor",
    "FSMTransitionEvent",
    "MonitoredFSM",
    "DependencyMonitor",
    "UpdateEvent",
    "StatisticsMonitor",
    "StatEvent",
    "PipelineStatistics",
    "StageDivergence",
    "LossCheck",
    "LossCheckResult",
    "LossWarning",
    "Instrumenter",
]
