"""Dependency Monitor: provenance tracking for a variable (§4.3).

Given a variable ``v`` and a window of ``k`` cycles, the monitor statically
finds every register that may propagate to ``v`` within ``k`` cycles
(data and/or control dependencies, traced through blackbox IPs via their
models), then instruments the design to log each update to each register
in the chain. Backtracing an incorrect output then becomes reading the
unified log instead of re-synthesizing with hand-picked probes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hdl import ast_nodes as ast
from ..analysis.assignments import analyze_module
from ..analysis.depgraph import dependency_chain
from .. import obs
from .instrument import Instrumenter, record_pass_metrics
from .signalcat import Mode, SignalCat

_LABEL_PREFIX = "dep:"


@dataclass
class UpdateEvent:
    """One observed update to a dependency-chain register."""

    cycle: int
    register: str
    value: int


class DependencyMonitor:
    """Tracks the dependency chain of one variable.

    Parameters
    ----------
    design:
        Elaborated design (or flat module).
    target:
        The variable whose provenance is being traced.
    depth:
        How many cycles back the dependency chain extends (the paper's
        ``k``).
    include_control:
        Analyze control dependencies as well as data dependencies
        (default True, configurable per §4.3).
    ip_models:
        Extra :class:`~repro.analysis.ip_models.IPAnalysisModel` entries
        for blackbox IPs not in the default registry.
    """

    def __init__(self, design, target, depth, include_control=True, ip_models=None):
        with obs.span("pass:dependency_monitor"):
            self.instrumenter = Instrumenter(design, prefix="dep_")
            self.module = self.instrumenter.module
            self.target = target
            self.depth = depth
            self.chain = dependency_chain(
                self.instrumenter.original,
                target,
                depth,
                include_control=include_control,
                ip_models=ip_models,
            )
            self._instrument()
        record_pass_metrics("dependency_monitor", self.instrumenter)

    @property
    def tracked_registers(self):
        """Chain registers that receive update logging."""
        return self._tracked

    def _instrument(self):
        ins = self.instrumenter
        view = analyze_module(ins.original)
        self._tracked = []
        for name in self.chain.registers:
            records = view.assignments_to(name)
            if not records or not any(r.sequential for r in records):
                continue  # inputs and wires change only via their drivers
            decl = ins.original.find_declaration(name)
            if decl is not None and decl.array is not None:
                # Whole memories are too wide to shadow-compare; their
                # per-element updates are visible through the registers
                # that feed them, which are also in the chain.
                continue
            self._tracked.append(name)
            width = decl.bit_width if decl else 1
            current = ast.Identifier(name=name)
            prev = ins.add_reg(ins.fresh("prev_" + name), width=width)
            display = ast.Display(
                format="DependencyMonitor: %s = %%h" % name,
                args=[current],
                label=_LABEL_PREFIX + name,
            )
            clock = next((r.clock for r in records if r.clock), None)
            ins.add_clocked_block(
                [
                    ast.If(
                        cond=ast.BinaryOp(op="!=", left=prev, right=current),
                        then_stmt=ast.Block(statements=[display]),
                    ),
                    ast.NonblockingAssign(lhs=prev, rhs=current),
                ],
                clock=clock,
            )

    # -- runtime -------------------------------------------------------------------

    def simulator(self, mode=Mode.SIMULATION, **kwargs):
        """SignalCat-wrapped simulator for the instrumented design."""
        self._signalcat = SignalCat(self.module, mode=mode, **kwargs)
        return self._signalcat.simulator()

    def trace(self, sim, register=None):
        """All observed updates, optionally filtered to one register."""
        signalcat = getattr(self, "_signalcat", None)
        if signalcat is not None:
            triples = [
                (e.cycle, e.label, e.values)
                for e in signalcat.reconstruct(sim)
            ]
        else:
            triples = [(e.cycle, e.label, e.values) for e in sim.display_events]
        events = []
        for cycle, label, values in triples:
            if not label.startswith(_LABEL_PREFIX):
                continue
            name = label[len(_LABEL_PREFIX):]
            if register is not None and name != register:
                continue
            events.append(UpdateEvent(cycle=cycle, register=name, value=values[0]))
        return events

    def report(self):
        """Static chain summary: register -> cycles back it can influence."""
        return dict(self.chain.distances)

    def generated_line_count(self):
        """Lines of generated Verilog (§6.3 metric)."""
        return self.instrumenter.generated_line_count()
