"""LossCheck: precise data-loss localization (§4.5).

A developer names a **Source** register, a **Sink** register, and the
Source's valid signal. LossCheck then:

1. statically extracts the propagation-relation table
   (:mod:`repro.analysis.propagation`) and the registers on any
   Source-to-Sink propagation sequence (§4.5.1);
2. instruments each such register R with shadow variables (§4.5.2):
   assignment status ``A(R)``, valid-assignment status ``V(R)``,
   propagation status ``P(R)``, and the needs-propagation flag ``N(R)``
   computed exactly per Equation 1 —
   ``N_k = V_{k-1} | (N_{k-1} & ~P_{k-1})`` — flagging loss per
   Equation 2 — ``Loss = A_k & ~P_k & N_k``;
3. at runtime reports ``LossCheck: potential data loss at R`` through
   SignalCat, and filters false positives (intentional drops) using a
   developer-provided ground-truth test program (§4.5.3).

The documented limitation (§4.5.4) holds here too: an unintentional loss
at a register that also drops data intentionally in the ground-truth test
is mis-filtered (the testbed's bug D11 reproduces this false negative).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl import ast_nodes as ast
from ..analysis.assignments import analyze_module
from ..analysis.propagation import build_propagation_table
from ..sim.simulator import Simulator
from .. import obs
from .instrument import Instrumenter, flat_name, record_pass_metrics
from .signalcat import Mode, SignalCat

_LABEL_PREFIX = "losscheck:"


@dataclass
class LossWarning:
    """One runtime loss report."""

    cycle: int
    location: str

    def __str__(self):
        return "[%6d] LossCheck: potential data loss at %s" % (
            self.cycle,
            self.location,
        )


@dataclass
class LossCheckResult:
    """Outcome of one LossCheck analysis run."""

    #: All raw warnings, in cycle order.
    warnings: list = field(default_factory=list)
    #: Locations suppressed by ground-truth filtering (§4.5.3).
    filtered: set = field(default_factory=set)
    #: Locations still reported after filtering, ordered by first warning.
    localized: list = field(default_factory=list)

    @property
    def found_loss(self):
        return bool(self.localized)

    def first_warning_cycle(self, location):
        """Cycle of the first warning at *location* (None if never)."""
        for warning in self.warnings:
            if warning.location == location:
                return warning.cycle
        return None

    def report(self):
        """Readable multi-line summary of the analysis."""
        lines = []
        if not self.warnings:
            lines.append("no potential data loss observed")
        for location in self.localized:
            count = sum(1 for w in self.warnings if w.location == location)
            lines.append(
                "potential data loss at %s (first at cycle %d, %d warnings)"
                % (location, self.first_warning_cycle(location), count)
            )
        suppressed = sorted(
            {w.location for w in self.warnings} & self.filtered
        )
        for location in suppressed:
            lines.append(
                "suppressed %s (intentional drop per ground-truth test)"
                % location
            )
        return "\n".join(lines)


def _or_conditions(conditions):
    """OR a list of (possibly None == always-true) conditions."""
    result = None
    for condition in conditions:
        if condition is None:
            return ast.Number(value=1, width=1)
        if result is None:
            result = condition
        else:
            result = ast.BinaryOp(op="||", left=result, right=condition)
    return result


class LossCheck:
    """Instruments a design to localize data loss between Source and Sink.

    Parameters
    ----------
    design:
        Elaborated design (or flat module).
    source / sink:
        Register (or input/output port) names bounding the suspected
        lossy path.
    source_valid:
        Name (or expression text) of the Source's valid signal; when
        omitted, every Source value is treated as valid.
    ip_models:
        Extra blackbox IP models beyond the default registry.
    prune:
        When set, restrict shadow-variable instrumentation to registers
        on an actual payload-carrying Source→Sink dataflow slice
        (:func:`repro.flow.payload_slice`) instead of every register on
        any propagation sequence. Verdict-only registers (comparison
        results, handshake flags the propagation table conservatively
        keeps) are skipped, cutting generated LoC and shadow registers,
        and registers the abstract interpreter
        (:func:`repro.flow.compute_facts`) proves constant are dropped
        too — a register that only ever holds one value cannot drop
        payload. Pruning errs toward reporting: a dropped register's validity is
        treated as always-true downstream, so kept registers warn at
        least as often as before. Falls back to the full monitored set
        when the payload slice misses either endpoint (e.g. the Source
        is a control signal whose influence on the Sink is all through
        conditions or indices).
    """

    def __init__(
        self,
        design,
        source,
        sink,
        source_valid=None,
        ip_models=None,
        prune=False,
    ):
        with obs.span("pass:losscheck"):
            self.instrumenter = Instrumenter(design, prefix="lc_")
            self.module = self.instrumenter.module
            self.source = source
            self.sink = sink
            self.source_valid = source_valid
            self.table = build_propagation_table(
                self.instrumenter.original, ip_models=ip_models
            )
            self.path = self.table.path_registers(source, sink)
            if sink not in self.path or source not in self.path:
                raise ValueError(
                    "no propagation path from %r to %r" % (source, sink)
                )
            self._view = analyze_module(self.instrumenter.original)
            self.prune = prune
            self.monitored = self._select_monitored()
            #: Path registers dropped by pruning (empty without prune).
            self.pruned_out = []
            if prune:
                self._apply_prune(ip_models)
            self._valid_regs = {}
            self.filtered = set()
            self._instrument()
        record_pass_metrics("losscheck", self.instrumenter)
        self._record_prune_metrics()

    # -- static selection ---------------------------------------------------

    def _select_monitored(self):
        """Path registers that can lose data: sequentially assigned, not sink."""
        monitored = []
        for name in sorted(self.path):
            if name == self.sink:
                continue
            records = self._view.assignments_to(name)
            if any(r.sequential for r in records):
                monitored.append(name)
        return monitored

    def _apply_prune(self, ip_models):
        """Intersect the monitored set with the payload dataflow slice.

        Conservative in both directions: when the slice is empty or
        omits the Source/Sink endpoints (the payload tracer gave up on
        the design), the full propagation-path set is kept unchanged.

        A second cut intersects with the abstract-interpretation facts
        (:func:`repro.flow.compute_facts`): a monitored register proven
        to hold a single constant value in every reachable state cannot
        lose payload data — its shadow variable would never record a
        drop — so it is pruned too. Registers with X taint or
        non-converged fact tables are kept (facts would be unusable).
        """
        from ..flow.defuse import payload_slice

        slice_regs = set(
            payload_slice(
                self.instrumenter.original,
                self.source,
                self.sink,
                view=self._view,
                ip_models=ip_models,
            )
        )
        if self.source in slice_regs and self.sink in slice_regs:
            kept = [name for name in self.monitored if name in slice_regs]
            if kept:
                self.pruned_out = [
                    name for name in self.monitored if name not in slice_regs
                ]
                self.monitored = kept
        self._prune_constants(ip_models)

    def _prune_constants(self, ip_models):
        """Drop monitored registers the abstract facts prove constant."""
        from ..flow.absint import compute_facts

        try:
            facts = compute_facts(
                self.instrumenter.original, ip_models=ip_models
            )
        except Exception:
            return
        if not facts.converged:
            return
        constants = facts.constants()
        protected = {self.source, self.sink}
        dropped = [
            name
            for name in self.monitored
            if name in constants and name not in protected
        ]
        if not dropped:
            return
        kept = [name for name in self.monitored if name not in dropped]
        if not kept:
            return
        self.pruned_out.extend(dropped)
        self.monitored = kept

    def _record_prune_metrics(self):
        if not obs.enabled:
            return
        obs.gauge("pass.losscheck.monitored").set(len(self.monitored))
        obs.gauge("pass.losscheck.pruned_out").set(len(self.pruned_out))

    def _is_array(self, name):
        decl = self.instrumenter.original.find_declaration(name)
        return decl is not None and decl.array is not None

    # -- instrumentation (§4.5.2) ----------------------------------------------

    def _source_valid_expr(self):
        if self.source_valid is None:
            return ast.Number(value=1, width=1)
        from ..hdl.parser import parse_expression

        return parse_expression(self.source_valid)

    def _validity_of(self, name):
        """Expression for 'the value currently held by *name* is valid'.

        Untracked on-path nodes (IP outputs, memories, input ports other
        than the Source) are conservatively treated as always-valid; the
        ground-truth filtering pass absorbs any resulting false alarms
        (§4.5.3).
        """
        if name == self.source:
            return self._source_valid_expr()
        reg = self._valid_regs.get(name)
        if reg is None:
            return ast.Number(value=1, width=1)
        return ast.Identifier(name=reg)

    def _instrument(self):
        ins = self.instrumenter
        scalars = [n for n in self.monitored if not self._is_array(n)]
        arrays = [n for n in self.monitored if self._is_array(n)]
        # Validity-tracking registers must exist before V-expressions
        # reference them.
        for name in scalars:
            self._valid_regs[name] = ins.add_reg(
                ins.fresh("valid_" + name)
            ).name
        for name in scalars:
            self._instrument_register(name)
        for name in arrays:
            self._instrument_array(name)
        self._instrument_ip_loss_points()

    def _assignment_condition(self, name):
        """A(R): any non-hold assignment to R fires this cycle."""
        conditions = []
        for record in self._view.assignments_to(name):
            if not record.sequential:
                continue
            if (
                isinstance(record.rhs, ast.Identifier)
                and record.rhs.name == name
            ):
                continue  # explicit hold (r <= r) keeps the value
            conditions.append(record.condition)
        return _or_conditions(conditions) or ast.Number(value=0, width=1)

    def _valid_condition(self, name):
        """V(R): R is assigned a valid value from the path this cycle."""
        terms = []
        for relation in self.table.into(name):
            if relation.identity_hold or relation.src not in self.path:
                continue
            validity = self._validity_of(relation.src)
            if validity is None:
                continue
            if relation.condition is None:
                terms.append(validity)
            else:
                terms.append(
                    ast.BinaryOp(op="&&", left=relation.condition, right=validity)
                )
        return _or_conditions(terms) or ast.Number(value=0, width=1)

    def _propagation_condition(self, name):
        """P(R): R's value propagates to some register this cycle."""
        conditions = []
        for relation in self.table.out_of(name):
            if relation.identity_hold:
                continue
            conditions.append(relation.condition)
        return _or_conditions(conditions) or ast.Number(value=0, width=1)

    def _instrument_register(self, name):
        ins = self.instrumenter
        safe = flat_name(name)
        a_wire = ins.add_wire(ins.fresh("A_" + safe), self._assignment_condition(name))
        v_wire = ins.add_wire(ins.fresh("V_" + safe), self._valid_condition(name))
        p_wire = ins.add_wire(
            ins.fresh("P_" + safe), self._propagation_condition(name)
        )
        a_reg = ins.add_reg(ins.fresh("Ar_" + safe))
        v_reg = ins.add_reg(ins.fresh("Vr_" + safe))
        p_reg = ins.add_reg(ins.fresh("Pr_" + safe))
        n_reg = ins.add_reg(ins.fresh("N_" + safe))
        valid_reg = ast.Identifier(name=self._valid_regs[name])
        display = ast.Display(
            format="LossCheck: potential data loss at %s" % name,
            args=[],
            label=_LABEL_PREFIX + name,
        )
        statements = [
            # Shadow statuses of the current cycle, registered (§4.5.2).
            ast.NonblockingAssign(lhs=a_reg, rhs=a_wire),
            ast.NonblockingAssign(lhs=v_reg, rhs=v_wire),
            ast.NonblockingAssign(lhs=p_reg, rhs=p_wire),
            # Equation 1: N_k = V_{k-1} | (N_{k-1} & ~P_{k-1}).
            ast.NonblockingAssign(
                lhs=n_reg,
                rhs=ast.BinaryOp(
                    op="|",
                    left=v_reg,
                    right=ast.BinaryOp(
                        op="&",
                        left=n_reg,
                        right=ast.UnaryOp(op="~", operand=p_reg),
                    ),
                ),
            ),
            # Validity of the value now stored in R.
            ast.NonblockingAssign(
                lhs=valid_reg,
                rhs=ast.Ternary(
                    cond=v_wire,
                    iftrue=ast.Number(value=1, width=1),
                    iffalse=ast.Ternary(
                        cond=a_wire,
                        iftrue=ast.Number(value=0, width=1),
                        iffalse=valid_reg,
                    ),
                ),
            ),
            # Equation 2: Loss = A & ~P & N (one cycle delayed report).
            ast.If(
                cond=ast.BinaryOp(
                    op="&",
                    left=a_reg,
                    right=ast.BinaryOp(
                        op="&",
                        left=ast.UnaryOp(op="~", operand=p_reg),
                        right=n_reg,
                    ),
                ),
                then_stmt=ast.Block(statements=[display]),
            ),
        ]
        clock = self._clock_of(name)
        ins.add_clocked_block(statements, clock=clock)

    def _instrument_array(self, name):
        """Bounds-check instrumentation for a memory on the path (§3.2.1).

        Whole-array A/V/P/N tracking would flood with false positives, so
        memories are checked for the hardware buffer-overflow semantics
        instead: any write whose index can exceed the depth is monitored,
        catching both dropped writes (non-power-of-two depths) and
        index-truncation overwrites (power-of-two depths).
        """
        from ..sim.values import SymbolTable, self_width

        ins = self.instrumenter
        decl = self.instrumenter.original.find_declaration(name)
        depth = decl.array_depth
        symbols = SymbolTable(self.instrumenter.original)
        checks = []
        for record in self._view.assignments_to(name):
            if not record.sequential:
                continue
            lhs = record.lhs
            if not isinstance(lhs, ast.Index):
                continue
            index_expr = lhs.index
            index_width = self_width(index_expr, symbols)
            if (1 << index_width) <= depth:
                continue  # index cannot address past the end
            overflow = ast.BinaryOp(
                op=">=", left=index_expr, right=ast.Number(value=depth)
            )
            condition = (
                overflow
                if record.condition is None
                else ast.BinaryOp(op="&&", left=record.condition, right=overflow)
            )
            checks.append(condition)
        if not checks:
            return
        display = ast.Display(
            format="LossCheck: potential data loss at %s" % name,
            args=[],
            label=_LABEL_PREFIX + name,
        )
        condition = _or_conditions(checks)
        ins.add_clocked_block(
            [ast.If(cond=condition, then_stmt=ast.Block(statements=[display]))],
            clock=self._clock_of(name),
        )

    def _clock_of(self, name):
        for record in self._view.assignments_to(name):
            if record.clock:
                return record.clock
        return None

    def _instrument_ip_loss_points(self):
        ins = self.instrumenter
        for point in self.table.ip_loss_points:
            if not any(src in self.path for src in point.sources):
                continue
            location = "%s.%s" % (point.instance, point.port)
            display = ast.Display(
                format="LossCheck: potential data loss at %s (%s)"
                % (location, point.description),
                args=[],
                label=_LABEL_PREFIX + location,
            )
            condition = point.condition or ast.Number(value=1, width=1)
            ins.add_clocked_block(
                [ast.If(cond=condition, then_stmt=ast.Block(statements=[display]))]
            )

    # -- runtime (§4.5.3) -------------------------------------------------------

    def simulator(self, mode=Mode.SIMULATION, **kwargs):
        """SignalCat-wrapped simulator for the instrumented design."""
        self._signalcat = SignalCat(self.module, mode=mode, **kwargs)
        return self._signalcat.simulator()

    def _warnings_from(self, sim):
        signalcat = getattr(self, "_signalcat", None)
        if signalcat is not None:
            pairs = [(e.cycle, e.label) for e in signalcat.reconstruct(sim)]
        else:
            pairs = [(e.cycle, e.label) for e in sim.display_events]
        return [
            LossWarning(cycle=cycle, location=label[len(_LABEL_PREFIX):])
            for cycle, label in pairs
            if label.startswith(_LABEL_PREFIX)
        ]

    def calibrate(self, ground_truth, mode=Mode.SIMULATION, **kwargs):
        """Run a *passing* test program and learn intentional-drop sites.

        Any location that reports loss during the ground-truth run is an
        intentional data drop; its warnings are suppressed in subsequent
        analyses (§4.5.3). Returns the set of filtered locations.
        """
        sim = self.simulator(mode=mode, **kwargs)
        ground_truth(sim)
        self.filtered = {w.location for w in self._warnings_from(sim)}
        return self.filtered

    def analyze(self, drive, mode=Mode.SIMULATION, **kwargs):
        """Run the failure scenario *drive(sim)* and localize the loss."""
        sim = self.simulator(mode=mode, **kwargs)
        drive(sim)
        warnings = self._warnings_from(sim)
        localized = []
        for warning in warnings:
            if warning.location in self.filtered:
                continue
            if warning.location not in localized:
                localized.append(warning.location)
        return LossCheckResult(
            warnings=warnings, filtered=set(self.filtered), localized=localized
        )

    # -- reporting -----------------------------------------------------------------

    def relation_table(self):
        """The static propagation relations, for inspection/reports."""
        return self.table

    def generated_line_count(self):
        """Lines of generated Verilog (§6.3 metric)."""
        return self.instrumenter.generated_line_count()

    def generated_verilog(self):
        """The generated instrumentation as Verilog text."""
        return self.instrumenter.generated_verilog()
