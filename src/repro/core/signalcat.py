"""SignalCat: unified logging for simulation and on-FPGA debugging (§4.1).

SignalCat gives a hardware design a single ``$display``-based logging
interface that works in both execution contexts:

* in **simulation mode** the statements execute natively and the log is
  the simulator's display stream;
* in **on-FPGA mode** SignalCat statically analyzes each ``$display``'s
  arguments and *path constraint* (the condition under which the
  statement executes), removes the statements (no console exists on an
  FPGA), and synthesizes an instance of a vendor-style data-recording IP
  that samples all arguments plus one path-constraint bit per statement
  on every cycle where at least one constraint holds. After execution,
  :meth:`SignalCat.reconstruct` decodes the recording buffer back into
  the very same textual log.

All other tools (FSM/Dependency/Statistics Monitor, LossCheck) emit
``$display`` statements and inherit both modes through SignalCat.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..hdl import ast_nodes as ast
from ..hdl.elaborate import Design
from ..hdl.parser import parse_expression
from ..hdl.transform import map_statement
from ..analysis.assignments import analyze_module
from ..sim.simulator import Simulator, verilog_format
from ..sim.values import SymbolTable, mask, self_width
from .. import obs
from .instrument import Instrumenter, record_pass_metrics

#: Paper default recording-buffer size (§6.1): 8,192 entries.
DEFAULT_BUFFER_DEPTH = 8192


class Mode(enum.Enum):
    """Execution context SignalCat targets."""

    SIMULATION = "simulation"
    ON_FPGA = "on_fpga"


@dataclass
class LogEntry:
    """One reconstructed log line."""

    cycle: int
    text: str
    statement_index: int
    values: list = field(default_factory=list)
    label: str = ""

    def __str__(self):
        return "[%6d] %s" % (self.cycle, self.text)


@dataclass
class _StatementLayout:
    """Bit layout of one $display inside the recording word."""

    index: int
    fmt: str
    label: str
    flag_bit: int
    arg_fields: list  # (offset, width) per argument


def _drop_displays(module):
    """Remove every $display from the module's always blocks."""
    for item in module.items:
        if isinstance(item, ast.Always):
            item.body = map_statement(
                item.body,
                lambda e: e,
                lambda s: None if isinstance(s, ast.Display) else s,
            )
    return module


class SignalCat:
    """Unified logging over one elaborated design.

    Parameters
    ----------
    design:
        Elaborated design (or flat module) containing ``$display``
        statements.
    mode:
        :class:`Mode` — native simulation displays, or synthesized
        recording-IP logic.
    buffer_depth:
        Recording-IP buffer entries (on-FPGA mode; paper default 8192).
    start_event / stop_event:
        Optional Verilog condition strings; recording is active from the
        cycle *start_event* first holds until *stop_event* holds
        (inclusive), modeling the recording IP's trigger configuration.
    """

    RECORDER_INSTANCE = "signalcat_recorder"

    def __init__(
        self,
        design,
        mode=Mode.SIMULATION,
        buffer_depth=DEFAULT_BUFFER_DEPTH,
        start_event=None,
        stop_event=None,
        stop_delay=0,
        dedup=False,
    ):
        with obs.span("pass:signalcat"):
            self.mode = mode
            self.buffer_depth = buffer_depth
            self.stop_delay = stop_delay
            self.dedup = dedup
            self.instrumenter = Instrumenter(design, prefix="sc_")
            self.module = self.instrumenter.module
            self._layouts = []
            self.word_width = 0
            base_module = (
                design.top if isinstance(design, Design) else design
            )
            self.displays = analyze_module(base_module).displays
            if mode is Mode.ON_FPGA:
                self._start = parse_expression(start_event) if start_event else None
                self._stop = parse_expression(stop_event) if stop_event else None
                self._synthesize()
            else:
                self._start = self._stop = None
        record_pass_metrics("signalcat", self.instrumenter)

    @property
    def layouts(self):
        """Recording-word bit layouts, one per instrumented ``$display``.

        Populated in ON_FPGA mode only; :meth:`repro.wave.Trace.from_recorder`
        uses these to decode captured recorder words back into per-signal
        traces.
        """
        return tuple(self._layouts)

    # -- static synthesis (on-FPGA mode) ------------------------------------

    def _synthesize(self):
        ins = self.instrumenter
        symbols = SymbolTable(self.module)
        flag_count = len(self.displays)
        offset = flag_count
        flag_exprs = []
        arg_parts = []
        for record in self.displays:
            fields = []
            for arg in record.stmt.args:
                width = self_width(arg, symbols)
                fields.append((offset, width))
                arg_parts.append((arg, width))
                offset += width
            self._layouts.append(
                _StatementLayout(
                    index=record.index,
                    fmt=record.stmt.format,
                    label=record.stmt.label,
                    flag_bit=record.index,
                    arg_fields=fields,
                )
            )
            condition = record.condition
            flag_exprs.append(
                condition if condition is not None else ast.Number(value=1, width=1)
            )
        self.word_width = max(offset, 1)
        _drop_displays(self.module)
        if not self.displays:
            return
        flag_wires = []
        for index, expr in enumerate(flag_exprs):
            flag_wires.append(ins.add_wire(ins.fresh("flag_%d" % index), expr))
        # Data word: {argN ... arg0, flags[n-1] ... flags[0]} (LSB = flag 0).
        parts = [arg for arg, _ in reversed(arg_parts)]
        parts.extend(ast.Identifier(name=w.name) for w in reversed(flag_wires))
        data_expr = parts[0] if len(parts) == 1 else ast.Concat(parts=parts)
        data = ins.add_wire(ins.fresh("data"), data_expr, width=self.word_width)
        any_flag = flag_wires[0]
        for wire in flag_wires[1:]:
            any_flag = ast.BinaryOp(op="||", left=any_flag, right=wire)
        gate = self._recording_gate(ins)
        enable_expr = (
            any_flag if gate is None else ast.BinaryOp(op="&&", left=gate, right=any_flag)
        )
        enable = ins.add_wire(ins.fresh("enable"), enable_expr)
        params = {"WIDTH": self.word_width, "DEPTH": self.buffer_depth}
        if self.dedup:
            params["DEDUP"] = 1
        ins.add_instance(
            "signal_recorder",
            self.RECORDER_INSTANCE,
            params=params,
            ports={
                "clock": ast.Identifier(name=ins.clock),
                "enable": enable,
                "data": data,
            },
        )

    def _recording_gate(self, ins):
        if self._start is None and self._stop is None:
            return None
        active = ins.add_reg(ins.fresh("active"))
        start_cond = self._start if self._start is not None else ast.Number(value=1)
        statements = []
        post = None
        stopped = None
        arming = start_cond
        if self._stop is not None:
            # The window is [first start, first stop): a sticky `stopped`
            # latch prevents an always-true start event from re-arming.
            stopped = ins.add_reg(ins.fresh("stopped"))
            arming = ast.BinaryOp(
                op="&&",
                left=start_cond,
                right=ast.UnaryOp(op="!", operand=stopped),
            )
            if self.stop_delay > 0:
                # Post-trigger window (§4.1: "capture a fixed interval
                # ... after the user-provided event"): a countdown keeps
                # the recorder enabled for stop_delay cycles past it.
                width = max(1, self.stop_delay.bit_length())
                post = ins.add_reg(ins.fresh("post"), width=width)
                statements.append(
                    ast.If(
                        cond=ast.BinaryOp(
                            op="&&",
                            left=self._stop,
                            right=ast.UnaryOp(op="!", operand=stopped),
                        ),
                        then_stmt=ast.NonblockingAssign(
                            lhs=post, rhs=ast.Number(value=self.stop_delay)
                        ),
                        else_stmt=ast.If(
                            cond=ast.BinaryOp(
                                op="!=", left=post, right=ast.Number(value=0)
                            ),
                            then_stmt=ast.NonblockingAssign(
                                lhs=post,
                                rhs=ast.BinaryOp(
                                    op="-", left=post, right=ast.Number(value=1)
                                ),
                            ),
                        ),
                    )
                )
            statements.append(
                ast.If(
                    cond=self._stop,
                    then_stmt=ast.Block(
                        statements=[
                            ast.NonblockingAssign(
                                lhs=active, rhs=ast.Number(value=0)
                            ),
                            ast.NonblockingAssign(
                                lhs=stopped, rhs=ast.Number(value=1)
                            ),
                        ]
                    ),
                    else_stmt=ast.If(
                        cond=arming,
                        then_stmt=ast.NonblockingAssign(
                            lhs=active, rhs=ast.Number(value=1)
                        ),
                    ),
                )
            )
        else:
            statements.append(
                ast.If(
                    cond=arming,
                    then_stmt=ast.NonblockingAssign(
                        lhs=active, rhs=ast.Number(value=1)
                    ),
                )
            )
        ins.add_clocked_block(statements)
        # Record from the cycle the start event first holds (inclusive)
        # until the stop event holds (exclusive, unless a post-trigger
        # window extends it).
        gate = ast.BinaryOp(op="||", left=active, right=arming)
        if self._stop is not None:
            if post is not None:
                gate = ast.BinaryOp(
                    op="||",
                    left=gate,
                    right=ast.BinaryOp(
                        op="!=", left=post, right=ast.Number(value=0)
                    ),
                )
            else:
                gate = ast.BinaryOp(
                    op="&&",
                    left=gate,
                    right=ast.UnaryOp(op="!", operand=self._stop),
                )
        return gate

    # -- execution helpers ----------------------------------------------------

    def simulator(self, **kwargs):
        """A :class:`Simulator` over the (possibly instrumented) design."""
        return Simulator(self.module, **kwargs)

    def reconstruct(self, sim):
        """Reconstruct the textual log after an execution.

        In simulation mode this reads the simulator's native display
        events; in on-FPGA mode it decodes the recording IP buffer —
        producing the same format either way (§4.1).
        """
        if self.mode is Mode.SIMULATION:
            index_of = {
                (record.stmt.format, record.stmt.label): record.index
                for record in self.displays
            }
            return [
                LogEntry(
                    cycle=event.cycle,
                    text=event.text,
                    statement_index=index_of.get((event.format, event.label), -1),
                    values=event.values,
                    label=event.label,
                )
                for event in sim.display_events
            ]
        entries = []
        if not self._layouts:
            return entries
        recorder = sim.ip_model(self.RECORDER_INSTANCE)
        for cycle, word in recorder.samples:
            for layout in self._layouts:
                if not (word >> layout.flag_bit) & 1:
                    continue
                values = [
                    (word >> offset) & mask(width)
                    for offset, width in layout.arg_fields
                ]
                entries.append(
                    LogEntry(
                        cycle=cycle,
                        text=verilog_format(layout.fmt, values),
                        statement_index=layout.index,
                        values=values,
                        label=layout.label,
                    )
                )
        return entries

    def run(self, drive, max_cycles=10000, **sim_kwargs):
        """Convenience: build a simulator, run *drive(sim)*, reconstruct.

        *drive* receives the simulator and performs stimulus; returns
        the reconstructed log.
        """
        sim = self.simulator(**sim_kwargs)
        drive(sim)
        return self.reconstruct(sim)

    # -- reporting ------------------------------------------------------------

    def generated_line_count(self):
        """Lines of generated Verilog (§6.3 metric)."""
        return self.instrumenter.generated_line_count()

    def generated_verilog(self):
        """The generated instrumentation as Verilog text."""
        return self.instrumenter.generated_verilog()

    def format_log(self, entries):
        """Render reconstructed entries as the familiar simulator text."""
        return "\n".join(str(entry) for entry in entries)
