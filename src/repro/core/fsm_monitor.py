"""FSM Monitor: automatic state-machine tracing (§4.2).

Statically detects FSM registers (:mod:`repro.analysis.fsm_detect`),
then instruments the design with generated Verilog that logs every state
transition through SignalCat-compatible ``$display`` statements. After an
execution, :meth:`FSMMonitor.trace` reconstructs a state-transition trace —
the "user-friendly abstraction for circuit execution" the paper contrasts
with raw waveforms.

Per the paper, detection heuristics may miss FSMs (false negatives) or
flag irrelevant ones; :meth:`FSMMonitor.add_register` and the ``exclude``
parameter let a developer patch the detected set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..hdl import ast_nodes as ast
from ..analysis.fsm_detect import DetectedFSM, detect_fsms
from .. import obs
from .instrument import Instrumenter, flat_name, record_pass_metrics
from .signalcat import Mode, SignalCat

_LABEL_PREFIX = "fsm:"


@dataclass
class FSMTransitionEvent:
    """One observed state transition."""

    cycle: int
    fsm: str
    from_state: int
    to_state: int

    def describe(self, names=None):
        """Readable rendering, using *names* (state value -> label) if given."""
        names = names or {}
        return "%s: %s -> %s" % (
            self.fsm,
            names.get(self.from_state, self.from_state),
            names.get(self.to_state, self.to_state),
        )


@dataclass
class MonitoredFSM:
    """A detected-or-added FSM register under monitoring."""

    info: DetectedFSM
    state_names: dict = field(default_factory=dict)
    manually_added: bool = False


class FSMMonitor:
    """Detects FSMs in a design and instruments transition logging.

    Parameters
    ----------
    design:
        Elaborated design (or flat module).
    state_names:
        Optional ``{fsm_register: {value: name}}`` labels for readability.
    exclude:
        FSM register names to skip (developer filtering, §4.2).
    extra:
        Register names to monitor even though detection missed them.
    """

    def __init__(self, design, state_names=None, exclude=(), extra=()):
        with obs.span("pass:fsm_monitor"):
            self.instrumenter = Instrumenter(design, prefix="fsmmon_")
            self.module = self.instrumenter.module
            state_names = state_names or {}
            excluded = set(exclude)
            self.fsms = []
            for info in detect_fsms(self.instrumenter.original):
                if info.name in excluded:
                    continue
                self.fsms.append(
                    MonitoredFSM(
                        info=info, state_names=state_names.get(info.name, {})
                    )
                )
            for name in extra:
                self.add_register(name, state_names.get(name, {}))
            self._instrument()
        record_pass_metrics("fsm_monitor", self.instrumenter)

    def add_register(self, name, state_names=None):
        """Monitor *name* even though the heuristics did not flag it."""
        decl = self.instrumenter.original.find_declaration(name)
        if decl is None:
            raise KeyError("unknown register %r" % name)
        info = DetectedFSM(name=name, width=decl.bit_width, states=set())
        self.fsms.append(
            MonitoredFSM(
                info=info, state_names=dict(state_names or {}), manually_added=True
            )
        )
        return info

    def _instrument(self):
        ins = self.instrumenter
        for monitored in self.fsms:
            info = monitored.info
            state = ast.Identifier(name=info.name)
            prev = ins.add_reg(ins.fresh("prev_" + info.name), width=info.width)
            display = ast.Display(
                format="FSMMonitor: %s %%d -> %%d" % info.name,
                args=[prev, state],
                label=_LABEL_PREFIX + info.name,
            )
            ins.add_clocked_block(
                [
                    ast.If(
                        cond=ast.BinaryOp(op="!=", left=prev, right=state),
                        then_stmt=ast.Block(statements=[display]),
                    ),
                    ast.NonblockingAssign(lhs=prev, rhs=state),
                ],
                clock=info.clock,
            )

    # -- runtime ---------------------------------------------------------------

    def simulator(self, mode=Mode.SIMULATION, **kwargs):
        """SignalCat-wrapped simulator for the instrumented design."""
        self._signalcat = SignalCat(self.module, mode=mode, **kwargs)
        return self._signalcat.simulator()

    def trace(self, sim, fsm=None):
        """Reconstruct the state-transition trace from an execution."""
        signalcat = getattr(self, "_signalcat", None)
        if signalcat is not None:
            entries = signalcat.reconstruct(sim)
        else:
            entries = [
                _EntryShim(e.cycle, e.label, e.values) for e in sim.display_events
            ]
        events = []
        for entry in entries:
            if not entry.label.startswith(_LABEL_PREFIX):
                continue
            name = entry.label[len(_LABEL_PREFIX):]
            if fsm is not None and name != fsm:
                continue
            events.append(
                FSMTransitionEvent(
                    cycle=entry.cycle,
                    fsm=name,
                    from_state=entry.values[0],
                    to_state=entry.values[1],
                )
            )
        return events

    def final_states(self, sim):
        """Current state value of every monitored FSM."""
        return {m.info.name: sim[m.info.name] for m in self.fsms}

    def describe_trace(self, sim):
        """Readable multi-line trace with state names substituted."""
        names = {m.info.name: m.state_names for m in self.fsms}
        return "\n".join(
            "[%6d] %s" % (e.cycle, e.describe(names.get(e.fsm)))
            for e in self.trace(sim)
        )

    def generated_line_count(self):
        """Lines of generated Verilog (§6.3 metric)."""
        return self.instrumenter.generated_line_count()


@dataclass
class _EntryShim:
    cycle: int
    label: str
    values: list
