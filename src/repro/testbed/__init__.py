"""The testbed of 20 reliably-reproducible FPGA bugs (Table 2, §6.1).

Push-button usage::

    from repro.testbed import reproduce, verify_fix

    result = reproduce("D1")       # raises unless the bug shows itself
    verify_fix("D1")               # raises unless the fix is clean
"""

from .metadata import (
    BUG_IDS,
    FIGURE3_HARP,
    FIGURE3_KC705,
    HARP_BUGS,
    KC705_BUGS,
    SPECS,
    BugClass,
    BugSpec,
    BugSubclass,
    LossCheckSpec,
    Platform,
    Symptom,
    Tool,
)
from .harness import (
    LossCheckOutcome,
    Reproduction,
    ReproductionError,
    ScenarioHang,
    load_design,
    load_source,
    reproduce,
    reproduce_all,
    run_losscheck,
    run_scenario,
    verify_fix,
)
from .scenarios import GROUND_TRUTH, SCENARIOS, Observation

__all__ = [
    "BUG_IDS",
    "SPECS",
    "HARP_BUGS",
    "KC705_BUGS",
    "FIGURE3_HARP",
    "FIGURE3_KC705",
    "BugClass",
    "BugSubclass",
    "BugSpec",
    "LossCheckSpec",
    "Platform",
    "Symptom",
    "Tool",
    "Observation",
    "SCENARIOS",
    "GROUND_TRUTH",
    "load_design",
    "load_source",
    "run_scenario",
    "reproduce",
    "reproduce_all",
    "verify_fix",
    "run_losscheck",
    "Reproduction",
    "ReproductionError",
    "ScenarioHang",
    "LossCheckOutcome",
]
