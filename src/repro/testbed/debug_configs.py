"""Per-bug debugging configurations for the §6.3/§6.4 evaluation.

For the "SignalCat + monitors" use case the paper instruments each buggy
design with the full toolchain: FSM Monitor on every detected FSM,
Statistics Monitor on the events the developer suspects, and Dependency
Monitor on the suspicious variable. :func:`instrument_for_debugging`
composes the tools in that order and finishes with SignalCat in on-FPGA
mode, exactly as a developer debugging on real hardware would.

The configurations mirror the debugging narratives of §6.3: counters on
the producer/consumer valid signals, dependency tracking on the register
the symptom points at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .. import obs
from ..core.dependency_monitor import DependencyMonitor
from ..core.fsm_monitor import FSMMonitor
from ..core.signalcat import Mode, SignalCat
from ..core.statistics_monitor import StatisticsMonitor
from .harness import load_design
from .metadata import SPECS


@dataclass
class DebugConfig:
    """What the developer asks the monitors to watch for one bug."""

    #: Statistics Monitor events: name -> condition text.
    stat_events: dict = field(default_factory=dict)
    #: Dependency Monitor target variable (None to skip).
    dep_target: Optional[str] = None
    dep_depth: int = 3


CONFIGS = {
    "D1": DebugConfig(
        stat_events={"symbols_in": "in_valid", "symbols_out": "out_valid"},
    ),
    "D2": DebugConfig(
        stat_events={"pixels_read": "rd_rsp_valid", "pixels_written": "wr_req"},
    ),
    "D3": DebugConfig(
        stat_events={"replies_in": "rsp_valid", "replies_polled": "poll_valid"},
        dep_target="poll_data",
        dep_depth=3,
    ),
    "D4": DebugConfig(
        stat_events={"words_in": "in_valid", "words_out": "out_valid"},
        dep_target="out_data",
        dep_depth=2,
    ),
    "D5": DebugConfig(
        stat_events={"lines_requested": "rd_req", "lines_received": "rd_rsp_valid"},
        dep_target="blocks_left",
        dep_depth=2,
    ),
    "D6": DebugConfig(
        stat_events={"pairs_in": "in_valid", "values_out": "out_valid"},
        dep_target="out_data",
        dep_depth=3,
    ),
    "D7": DebugConfig(
        stat_events={"operations": "start"},
        dep_target="result",
        dep_depth=4,
    ),
    "D8": DebugConfig(
        stat_events={
            "port0_words": "out0_valid",
            "port1_words": "out1_valid",
        },
    ),
    "D9": DebugConfig(
        stat_events={"bytes_in": "byte_valid", "responses": "resp_valid"},
        dep_target="resp",
        dep_depth=2,
    ),
    "D10": DebugConfig(
        stat_events={"requests": "start", "completions": "done"},
        dep_target="blocks_left",
        dep_depth=2,
    ),
    "D11": DebugConfig(
        stat_events={
            "words_in": "in_valid",
            "words_out": "out_valid",
            "aborts": "in_abort",
        },
    ),
    "D12": DebugConfig(
        stat_events={"headers": "hdr_valid", "words_in": "in_valid"},
        dep_target="hdr_len",
        dep_depth=2,
    ),
    "D13": DebugConfig(
        stat_events={"frames": "len_valid", "words": "in_valid"},
        dep_target="len_out",
        dep_depth=2,
    ),
    "C1": DebugConfig(
        stat_events={"card_bytes": "card_valid"},
        dep_target="done",
        dep_depth=3,
    ),
    "C2": DebugConfig(
        stat_events={
            "a_messages": "a_valid",
            "b_messages": "b_valid",
            "delivered_msgs": "out_valid",
        },
        dep_target="out_data",
        dep_depth=3,
    ),
    "C3": DebugConfig(
        stat_events={"requests": "request", "responses": "final_response_valid"},
        dep_target="final_response",
        dep_depth=2,
    ),
    "C4": DebugConfig(
        stat_events={"words_in": "in_valid", "beats_out": "tvalid && tready"},
    ),
    "S1": DebugConfig(
        stat_events={
            "writes_accepted": "awvalid && wvalid",
            "responses_sent": "bvalid && bready",
        },
    ),
    "S2": DebugConfig(
        stat_events={"beats": "tvalid && tready", "stalls": "tvalid && !tready"},
    ),
    "S3": DebugConfig(
        stat_events={"beats_in": "in_valid && in_ready", "bytes_out": "out_valid"},
        dep_target="out_data",
        dep_depth=2,
    ),
}


@dataclass
class DebugInstrumentation:
    """The fully-instrumented design plus bookkeeping for the evaluation."""

    bug_id: str
    module: object
    signalcat: SignalCat
    fsm_monitor: FSMMonitor
    statistics_monitor: StatisticsMonitor
    dependency_monitor: Optional[DependencyMonitor]
    generated_lines: int

    @property
    def recorder_width(self):
        """Sample width of the synthesized recording IP."""
        return self.signalcat.word_width


def instrument_for_debugging(bug_id, buffer_depth=8192, fixed=False):
    """Apply the full SignalCat+monitors toolchain to one testbed bug."""
    spec = SPECS[bug_id]
    config = CONFIGS[bug_id]
    design = load_design(bug_id, fixed=fixed)
    with obs.span("instrument", bug=bug_id):
        fsm_monitor = FSMMonitor(design, state_names=spec.state_names)
        module = fsm_monitor.module
        statistics_monitor = StatisticsMonitor(module, config.stat_events)
        module = statistics_monitor.module
        dependency_monitor = None
        if config.dep_target is not None:
            dependency_monitor = DependencyMonitor(
                module, config.dep_target, config.dep_depth
            )
            module = dependency_monitor.module
        signalcat = SignalCat(
            module, mode=Mode.ON_FPGA, buffer_depth=buffer_depth
        )
    generated = (
        fsm_monitor.generated_line_count()
        + statistics_monitor.generated_line_count()
        + (dependency_monitor.generated_line_count() if dependency_monitor else 0)
        + signalcat.generated_line_count()
    )
    if obs.enabled:
        from ..resources import estimate_resources

        obs.gauge("instrument.generated_loc").set(generated)
        delta = estimate_resources(signalcat.module) - estimate_resources(design)
        obs.gauge("instrument.added_registers").set(delta.registers)
        obs.gauge("instrument.added_bram_bits").set(delta.bram_bits)
    return DebugInstrumentation(
        bug_id=bug_id,
        module=signalcat.module,
        signalcat=signalcat,
        fsm_monitor=fsm_monitor,
        statistics_monitor=statistics_monitor,
        dependency_monitor=dependency_monitor,
        generated_lines=generated,
    )
