"""Push-button reproduction scenarios for the 20 testbed bugs.

Each scenario drives one design (buggy or fixed — the same stimulus is
applied to both) through a :class:`~repro.sim.simulator.Simulator` and
returns an :class:`Observation` recording which Table 2 symptoms were
observed: Stuck, Loss, Incor. (incorrect output) and Ext. (external
monitor error).

``GROUND_TRUTH`` holds the "shipped test program" for each loss bug —
a stimulus that passes even on the buggy design — which LossCheck uses
for false-positive filtering (§4.5.3).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from .metadata import Symptom
from .monitors import (
    AxiLiteWriteChecker,
    AxiStreamChecker,
    ShellAddressMonitor,
)


@dataclass
class Observation:
    """Symptoms observed while reproducing a bug."""

    stuck: bool = False
    loss: bool = False
    incorrect: bool = False
    external: bool = False
    details: dict = field(default_factory=dict)

    @property
    def symptoms(self):
        """The set of observed :class:`Symptom` values."""
        result = set()
        if self.stuck:
            result.add(Symptom.STUCK)
        if self.loss:
            result.add(Symptom.LOSS)
        if self.incorrect:
            result.add(Symptom.INCORRECT)
        if self.external:
            result.add(Symptom.EXTERNAL)
        return frozenset(result)

    @property
    def failed(self):
        """True if any symptom was observed."""
        return bool(self.symptoms)


def _reset(sim, cycles=2):
    sim["rst"] = 1
    sim.step(cycles)
    sim["rst"] = 0
    sim.step(1)


def _float_bits(value):
    return struct.unpack("<I", struct.pack("<f", value))[0]


def _bits_float(bits):
    return struct.unpack("<f", struct.pack("<I", bits))[0]


# ---------------------------------------------------------------------------
# D1 -- RSD buffer overflow
# ---------------------------------------------------------------------------


def _rsd_codeword(length):
    """Header + data symbols + XOR parity for an N-symbol codeword."""
    data = [(17 * i + 3) & 0xFF for i in range(length - 1)]
    parity = 0
    for value in data:
        parity ^= value
    return [length] + data + [parity], data


def _rsd_drive(sim, length, extra_stream=False, max_cycles=300):
    _reset(sim)
    words, data = _rsd_codeword(length)
    outputs = []

    def pump(word):
        sim["in_data"] = word
        sim["in_valid"] = 1
        sim.step()
        if sim["out_valid"]:
            outputs.append(sim["out_data"])

    for word in words:
        pump(word)
    sim["in_valid"] = 0
    idle = 0
    next_words = _rsd_codeword(length)[0] if extra_stream else []
    position = 0
    while not sim["done"] and idle < max_cycles:
        if extra_stream and position < len(next_words):
            pump(next_words[position])
            position += 1
        else:
            sim["in_valid"] = 0
            sim.step()
            if sim["out_valid"]:
                outputs.append(sim["out_data"])
        idle += 1
    return outputs, data


def scenario_d1(sim):
    """Full-length codeword: overflows the 14-entry buffer."""
    outputs, data = _rsd_drive(sim, length=15, extra_stream=True)
    stuck = not sim["done"]
    return Observation(
        stuck=stuck,
        loss=len(outputs) < len(data),
        incorrect=outputs != data,
        details={
            "outputs": outputs,
            "expected": data,
            "error_flag": sim["error"],
        },
    )


def ground_truth_d1(sim):
    """The shipped test: a short codeword, which decodes fine."""
    _rsd_drive(sim, length=8)


# ---------------------------------------------------------------------------
# D2 -- Grayscale FIFO overflow (the case-study bug)
# ---------------------------------------------------------------------------


def _grayscale_pixels(count):
    # Component values kept small so the 8-bit luma sum cannot overflow.
    return [((3 * i + 11) << 16 | (2 * i + 3) << 8 | (i + 1)) & 0xFFFFFF
            for i in range(count)]


def _gray_reference(pixel):
    r = (pixel >> 16) & 0xFF
    g = (pixel >> 8) & 0xFF
    b = pixel & 0xFF
    return ((r + (g << 1) + b) >> 2) & 0xFF


def _grayscale_drive(sim, num_pixels, max_cycles=400):
    _reset(sim)
    pixels = _grayscale_pixels(num_pixels)
    writes = {}
    pending = []
    sim["num_pixels"] = num_pixels
    sim["start"] = 1
    sim.step()
    sim["start"] = 0
    for _ in range(max_cycles):
        # Host read channel: one-cycle response latency.
        if pending:
            addr = pending.pop(0)
            sim["rd_rsp_data"] = pixels[addr]
            sim["rd_rsp_valid"] = 1
        else:
            sim["rd_rsp_valid"] = 0
        sim["wr_ack"] = 1
        sim.step()
        if sim["rd_req"]:
            pending.append(sim["rd_addr"])
        if sim["wr_req"]:
            writes[sim["wr_addr"]] = sim["wr_data"]
        if sim["done"]:
            break
    return pixels, writes


def scenario_d2(sim):
    """16-pixel image: the read burst overruns the 8-entry FIFO."""
    pixels, writes = _grayscale_drive(sim, num_pixels=16)
    expected = {i: _gray_reference(p) for i, p in enumerate(pixels)}
    return Observation(
        stuck=not sim["done"],
        loss=len(writes) < len(pixels),
        incorrect=writes != expected,
        details={
            "writes": len(writes),
            "expected_writes": len(pixels),
            "rd_state": sim["rd_state"],
            "wr_state": sim["wr_state"],
        },
    )


def ground_truth_d2(sim):
    """The shipped test: a 4-pixel image, which never fills the FIFO."""
    _grayscale_drive(sim, num_pixels=4)


# ---------------------------------------------------------------------------
# D3 -- Optimus reply-ring overflow
# ---------------------------------------------------------------------------


def _optimus_drive(sim, replies, poll_every, max_cycles=400):
    _reset(sim)
    received = []
    queue = list(replies)
    cycle = 0
    while cycle < max_cycles and (queue or len(received) < len(replies)):
        if queue and sim["rsp_ready"]:
            sim["rsp_data"] = queue.pop(0)
            sim["rsp_valid"] = 1
        else:
            sim["rsp_valid"] = 0
        sim["poll"] = 1 if cycle % poll_every == poll_every - 1 else 0
        sim.step()
        if sim["poll_valid"]:
            received.append(sim["poll_data"])
        cycle += 1
    return received


def scenario_d3(sim):
    """12 back-to-back replies against a slow (1-in-8 cycles) poller."""
    replies = [0x100 + i for i in range(12)]
    received = _optimus_drive(sim, replies, poll_every=8)
    missing = [tag for tag in replies if tag not in received]
    return Observation(
        stuck=bool(missing),  # the guest waits forever for missing tags
        loss=bool(missing),
        details={"missing": missing, "received": received},
    )


def ground_truth_d3(sim):
    """The shipped test: 4 replies with a prompt poller."""
    _optimus_drive(sim, [0x200 + i for i in range(4)], poll_every=2)


# ---------------------------------------------------------------------------
# D4 -- Frame FIFO overflow
# ---------------------------------------------------------------------------


def _frame_fifo_drive(sim, frame, max_cycles=200):
    _reset(sim)
    received = []
    sim["out_ready"] = 1
    for position, word in enumerate(frame):
        sim["in_data"] = word
        sim["in_last"] = 1 if position == len(frame) - 1 else 0
        sim["in_valid"] = 1
        sim.step()
        if sim["out_valid"]:
            received.append(sim["out_data"])
    sim["in_valid"] = 0
    sim["in_last"] = 0
    for _ in range(max_cycles):
        sim.step()
        if sim["out_valid"]:
            received.append(sim["out_data"])
        if len(received) >= len(frame):
            break
    return received


def scenario_d4(sim):
    """A 20-word frame against a 16-entry ring: the head is overwritten."""
    frame = [100 + i for i in range(20)]
    received = _frame_fifo_drive(sim, frame)
    too_big = sim["frame_too_big"]
    corrupted = bool(received) and received != frame
    silently_lost = (not too_big) and (corrupted or len(received) < len(frame))
    return Observation(
        loss=silently_lost,
        details={
            "sent": frame,
            "received": received,
            "frame_too_big": too_big,
        },
    )


# ---------------------------------------------------------------------------
# D5 -- SHA512 cast-before-shift truncation
# ---------------------------------------------------------------------------

_SHA_SEED = 0x6A09E667F3BCC908
_MASK64 = (1 << 64) - 1


def _ror64(value, amount):
    return ((value >> amount) | (value << (64 - amount))) & _MASK64


def _sha_reference(blocks):
    acc = _SHA_SEED
    for block in blocks:
        acc = (acc + block) & _MASK64
        for _ in range(4):
            acc = _ror64(acc, 1) ^ _ror64(acc, 8)
    return acc


def _sha_blocks(count):
    return [(i * 0x9E3779B97F4A7C15 + 0x1234567) & _MASK64 for i in range(count)]


def _sha512_drive(sim, shell, byte_addr=None, base_line=None, num_blocks=3,
                  max_cycles=400, reset=True):
    if reset:
        _reset(sim)
    blocks = _sha_blocks(num_blocks)
    if byte_addr is not None:
        sim["byte_addr"] = byte_addr
        base = byte_addr >> 6
    else:
        sim["base_line"] = base_line
        base = base_line
    memory = {base + i: blocks[i] for i in range(num_blocks)}
    sim["num_blocks"] = num_blocks
    sim["start"] = 1
    sim.step()
    sim["start"] = 0
    latency = []
    for _ in range(max_cycles):
        sim["rd_rsp_valid"] = 0
        if latency and latency[0][0] == 0:
            _, line = latency.pop(0)
            sim["rd_rsp_data"] = memory.get(line, 0xDEADBEEFDEADBEEF)
            sim["rd_rsp_valid"] = 1
        latency = [(t - 1, line) for t, line in latency]
        sim.step()
        if shell is not None:
            shell.check(sim)
        if sim["rd_req"]:
            latency.append((6, sim["rd_line"]))
        if sim["done"]:
            break
    return blocks


def scenario_d5(sim):
    """A message buffer above 4 TiB: bits [47:42] matter."""
    byte_addr = (1 << 46) | 0x4000
    base = byte_addr >> 6
    shell = ShellAddressMonitor("rd_req", "rd_line", base, base + 3)
    blocks = _sha512_drive(sim, shell, byte_addr=byte_addr)
    expected = _sha_reference(blocks)
    return Observation(
        stuck=not sim["done"],
        incorrect=sim["digest"] != expected,
        external=shell.error,
        details={
            "digest": sim["digest"],
            "expected": expected,
            "violations": [str(v.message) for v in shell.violations[:3]],
        },
    )


# ---------------------------------------------------------------------------
# D6 -- FFT butterfly truncation
# ---------------------------------------------------------------------------


def scenario_d6(sim):
    """Large-amplitude pair: the sum needs its 13th bit."""
    _reset(sim)
    pairs = [(100, 40), (3000, 2000), (2500, 2200)]
    outputs = []
    for a, b in pairs:
        sim["in_a"] = a
        sim["in_b"] = b
        sim["in_valid"] = 1
        sim.step()
        sim["in_valid"] = 0
        for _ in range(4):
            sim.step()
            if sim["out_valid"]:
                outputs.append(sim["out_data"])
    expected = []
    for a, b in pairs:
        expected.extend([a + b, a - b])
    return Observation(
        incorrect=outputs != expected,
        details={"outputs": outputs, "expected": expected},
    )


# ---------------------------------------------------------------------------
# D7 -- FADD misindexing
# ---------------------------------------------------------------------------


def scenario_d7(sim):
    """Exact-sum vectors; odd exponents expose the stray bit."""
    _reset(sim)
    vectors = [(1.5, 2.25), (1.0, 1.0), (2.5, 0.25)]
    results = []
    for a, b in vectors:
        sim["op_a"] = _float_bits(a)
        sim["op_b"] = _float_bits(b)
        sim["start"] = 1
        sim.step()
        sim["start"] = 0
        for _ in range(10):
            sim.step()
            if sim["done"]:
                break
        results.append(sim["result"])
    expected = [_float_bits(a + b) for a, b in vectors]
    return Observation(
        incorrect=results != expected,
        details={
            "results": [_bits_float(r) for r in results],
            "expected": [a + b for a, b in vectors],
        },
    )


# ---------------------------------------------------------------------------
# D8 -- AXI-Stream switch misindexing
# ---------------------------------------------------------------------------


def scenario_d8(sim):
    """One packet for port 1, one for port 0."""
    _reset(sim)
    packets = [(1, [0xA1, 0xA2]), (0, [0xB1, 0xB2])]
    out0 = []
    out1 = []

    def pump(word, last):
        sim["in_data"] = word
        sim["in_last"] = last
        sim["in_valid"] = 1
        sim.step()
        if sim["out0_valid"]:
            out0.append(sim["out0_data"])
        if sim["out1_valid"]:
            out1.append(sim["out1_data"])

    for dest, payload in packets:
        pump(dest, 0)
        for position, word in enumerate(payload):
            pump(word, 1 if position == len(payload) - 1 else 0)
    sim["in_valid"] = 0
    for _ in range(4):
        sim.step()
        if sim["out0_valid"]:
            out0.append(sim["out0_data"])
        if sim["out1_valid"]:
            out1.append(sim["out1_data"])
    return Observation(
        incorrect=(out0 != [0xB1, 0xB2]) or (out1 != [0xA1, 0xA2]),
        details={"out0": out0, "out1": out1},
    )


# ---------------------------------------------------------------------------
# D9 -- SDSPI endianness
# ---------------------------------------------------------------------------


def scenario_d9(sim):
    """A 0x1234 response with its order-sensitive checksum."""
    _reset(sim)
    first, second = 0x12, 0x34
    crc = ((first << 1) + second) & 0xFF
    sim["crc_in"] = crc
    for byte in (first, second, 0x00):
        sim["byte_in"] = byte
        sim["byte_valid"] = 1
        sim.step()
    sim["byte_valid"] = 0
    sim.step()
    return Observation(
        incorrect=(sim["resp"] != 0x1234) or (not sim["crc_ok"]),
        details={"resp": sim["resp"], "crc_ok": sim["crc_ok"]},
    )


# ---------------------------------------------------------------------------
# D10 -- SHA512 missing accumulator reset
# ---------------------------------------------------------------------------


def scenario_d10(sim):
    """Two back-to-back hash requests; the second inherits state."""
    _reset(sim)
    digests = []
    for request in range(2):
        _sha512_drive(
            sim,
            shell=None,
            base_line=0x100 * (request + 1),
            num_blocks=3,
            reset=request == 0,
        )
        digests.append(sim["digest"])
    expected = _sha_reference(_sha_blocks(3))
    return Observation(
        stuck=not sim["done"],
        incorrect=digests != [expected, expected],
        details={"digests": digests, "expected": expected},
    )


# ---------------------------------------------------------------------------
# D11 -- Frame FIFO sticky drop flag
# ---------------------------------------------------------------------------


def _frame_drop_drive(sim, frames, max_cycles=200):
    """frames: list of (words, abort_position or None)."""
    _reset(sim)
    received = []
    sim["out_ready"] = 1

    def collect():
        if sim["out_valid"]:
            received.append(sim["out_data"])

    for words, abort_position in frames:
        for position, word in enumerate(words):
            sim["in_data"] = word
            sim["in_last"] = 1 if position == len(words) - 1 else 0
            sim["in_abort"] = 1 if position == abort_position else 0
            sim["in_valid"] = 1
            sim.step()
            collect()
        sim["in_valid"] = 0
        sim["in_abort"] = 0
        sim["in_last"] = 0
        sim.step(2)
        collect()
    for _ in range(max_cycles):
        sim.step()
        collect()
        if not sim["out_valid"]:
            break
    return received


def scenario_d11(sim):
    """Good frame, aborted frame, good frame: the third must survive."""
    frames = [
        ([1, 2, 3], None),
        ([4, 5, 6], 1),  # aborted mid-frame (intentional drop)
        ([7, 8, 9], None),
    ]
    received = _frame_drop_drive(sim, frames)
    return Observation(
        loss=received != [1, 2, 3, 7, 8, 9],
        details={"received": received},
    )


def ground_truth_d11(sim):
    """The shipped test: one good and one aborted frame -- passes."""
    _frame_drop_drive(sim, [([1, 2, 3], None), ([4, 5, 6], 1)])


# ---------------------------------------------------------------------------
# D12 -- Frame FIFO length header not reset
# ---------------------------------------------------------------------------


def scenario_d12(sim):
    """Two frames; the second header must say 2, not 5."""
    _reset(sim)
    headers = []

    def tick():
        sim.step()
        if sim["hdr_valid"]:
            headers.append(sim["hdr_len"])

    frames = [[1, 2, 3], [4, 5]]
    for frame in frames:
        for position, word in enumerate(frame):
            sim["in_data"] = word
            sim["in_last"] = 1 if position == len(frame) - 1 else 0
            sim["in_valid"] = 1
            tick()
        sim["in_valid"] = 0
        sim["in_last"] = 0
        for _ in range(4):
            tick()
    return Observation(
        incorrect=headers != [3, 2],
        details={"headers": headers},
    )


# ---------------------------------------------------------------------------
# D13 -- Frame length measurer (back-to-back frames)
# ---------------------------------------------------------------------------


def scenario_d13(sim):
    """A 3-word frame immediately followed by a 2-word frame."""
    _reset(sim)
    lengths = []
    stream = [
        (1, 0), (2, 0), (3, 1),  # frame 1
        (4, 0), (5, 1),          # frame 2, back-to-back
    ]
    for word, last in stream:
        sim["in_data"] = word
        sim["in_last"] = last
        sim["in_valid"] = 1
        sim.step()
        if sim["len_valid"]:
            lengths.append(sim["len_out"])
    sim["in_valid"] = 0
    for _ in range(3):
        sim.step()
        if sim["len_valid"]:
            lengths.append(sim["len_out"])
    return Observation(
        incorrect=lengths != [3, 2],
        details={"lengths": lengths, "frames_seen": sim["frames_seen"]},
    )


# ---------------------------------------------------------------------------
# C1 -- SDSPI deadlock
# ---------------------------------------------------------------------------


def scenario_c1(sim):
    """One command; the card answers; the handshake must complete."""
    _reset(sim)
    sim["cmd"] = 0x40
    sim["start"] = 1
    sim.step()
    sim["start"] = 0
    for _ in range(100):
        sim["card_valid"] = 1 if sim["cmd_sent"] else 0
        sim["card_data"] = 0x5A
        sim.step()
        if sim["done"]:
            break
    return Observation(
        stuck=not sim["done"],
        incorrect=bool(sim["done"]) and sim["response"] != 0x5A,
        details={"cm_state": sim["cm_state"], "done": sim["done"]},
    )


# ---------------------------------------------------------------------------
# C2 -- Optimus producer-consumer mismatch
# ---------------------------------------------------------------------------


def _merge_drive(sim, a_messages, b_events, max_cycles=120):
    """b_events: list of (cycle, tag); sent when b_ready allows."""
    _reset(sim)
    received = []
    b_queue = list(b_events)
    a_queue = list(a_messages)
    for cycle in range(max_cycles):
        sim["a_valid"] = 0
        sim["b_valid"] = 0
        if a_queue:
            sim["a_data"] = a_queue.pop(0)
            sim["a_valid"] = 1
        if b_queue and cycle >= b_queue[0][0] and sim["b_ready"]:
            sim["b_data"] = b_queue.pop(0)[1]
            sim["b_valid"] = 1
        sim.step()
        if sim["out_valid"]:
            received.append(sim["out_data"])
    return received


def scenario_c2(sim):
    """Six A completions streaming while two B timer events arrive."""
    a_messages = [0x100 + i for i in range(6)]
    b_events = [(2, 0x200), (4, 0x201)]
    received = _merge_drive(sim, a_messages, b_events)
    expected = set(a_messages) | {tag for _, tag in b_events}
    missing = sorted(expected - set(received))
    return Observation(
        stuck=bool(missing),  # the guest waits for every promised message
        loss=bool(missing),
        details={"missing": missing, "received": received},
    )


def ground_truth_c2(sim):
    """The shipped test: timer events with the accelerator idle."""
    _merge_drive(sim, [], [(1, 0x300), (5, 0x301)])


# ---------------------------------------------------------------------------
# C3 -- SDSPI response valid/data skew
# ---------------------------------------------------------------------------


def scenario_c3(sim):
    """Two requests; the host samples data when valid is high."""
    _reset(sim)
    samples = []
    for value in (5, 9):
        sim["input_data"] = value
        sim["request"] = 1
        sim.step()
        sim["request"] = 0
        for _ in range(6):
            sim.step()
            if sim["final_response_valid"]:
                samples.append(sim["final_response"])
                break
    return Observation(
        incorrect=samples != [6, 10],
        details={"samples": samples, "expected": [6, 10]},
    )


# ---------------------------------------------------------------------------
# C4 -- AXI-Stream FIFO output stage overwrite
# ---------------------------------------------------------------------------


def _axis_fifo_drive(sim, words, stall_cycles, max_cycles=150):
    _reset(sim)
    received = []

    def tick():
        # A beat completes at an edge where tvalid && tready held
        # BEFORE the edge — sample like the downstream flops do.
        sim.settle()
        beat = sim["tvalid"] and sim["tready"]
        data = sim["tdata"]
        sim.step()
        if beat:
            received.append(data)

    for word in words:
        sim["in_data"] = word
        sim["in_valid"] = 1
        tick()
    sim["in_valid"] = 0
    sim["tready"] = 0
    for _ in range(stall_cycles):
        tick()
    sim["tready"] = 1
    for _ in range(max_cycles):
        tick()
        if len(set(received)) >= len(words):
            break
    return received


def scenario_c4(sim):
    """Six words pushed while the consumer stalls for 12 cycles."""
    words = [0x50 + i for i in range(6)]
    received = _axis_fifo_drive(sim, words, stall_cycles=12)
    missing = sorted(set(words) - set(received))
    return Observation(
        loss=bool(missing),
        details={"missing": missing, "received": received},
    )


def ground_truth_c4(sim):
    """The shipped test: no backpressure."""
    _axis_fifo_drive(sim, [0x20, 0x21], stall_cycles=0)


# ---------------------------------------------------------------------------
# S1 -- AXI-Lite BVALID drop
# ---------------------------------------------------------------------------


def scenario_s1(sim):
    """Two writes; the first response sees BREADY backpressure."""
    _reset(sim)
    checker = AxiLiteWriteChecker()
    responses = 0

    def tick():
        # Sample the bus pre-edge, exactly like a hardware checker.
        nonlocal responses
        sim.settle()
        checker.check(sim)
        if sim["bvalid"] and sim["bready"]:
            responses += 1
            sim.step()
            return True
        sim.step()
        return False

    for index, (addr, data) in enumerate([(2, 0xAAAA), (3, 0xBBBB)]):
        sim["awaddr"] = addr
        sim["wdata"] = data
        sim["awvalid"] = 1
        sim["wvalid"] = 1
        sim["bready"] = 0 if index == 0 else 1
        tick()
        sim["awvalid"] = 0
        sim["wvalid"] = 0
        for wait in range(8):
            if wait >= 3:
                sim["bready"] = 1
            if tick():
                break
    # Read back address 2 to confirm the datapath.
    sim["araddr"] = 2
    sim["arvalid"] = 1
    sim["rready"] = 1
    sim.step()
    sim["arvalid"] = 0
    sim.step(2)
    return Observation(
        external=checker.error,
        stuck=responses < 2,
        details={
            "responses": responses,
            "violations": [v.message for v in checker.violations],
            "readback": sim["rdata"],
        },
    )


# ---------------------------------------------------------------------------
# S2 -- AXI-Stream master TVALID drop
# ---------------------------------------------------------------------------


def scenario_s2(sim):
    """A 4-word burst against an alternating-ready consumer."""
    _reset(sim)
    checker = AxiStreamChecker()
    received = []
    sim["burst_len"] = 4
    sim["start"] = 1
    sim["tready"] = 0
    sim.step()
    sim["start"] = 0
    for cycle in range(60):
        sim["tready"] = 1 if cycle % 2 == 0 else 0
        # Sample the stream pre-edge, like a hardware protocol checker.
        sim.settle()
        checker.check(sim)
        if sim["tvalid"] and sim["tready"]:
            received.append(sim["tdata"])
        sim.step()
        if sim["done"]:
            break
    return Observation(
        external=checker.error,
        details={
            "received": received,
            "violations": [v.message for v in checker.violations[:3]],
        },
    )


# ---------------------------------------------------------------------------
# S3 -- AXI-Stream width adapter missing tkeep case
# ---------------------------------------------------------------------------


def scenario_s3(sim):
    """A 3-byte frame: the final 16-bit beat keeps only its low byte."""
    _reset(sim)
    beats = [
        (0x2211, 0b11, 0),
        (0x0033, 0b01, 1),
    ]
    received = []
    for data, keep, last in beats:
        while not sim["in_ready"]:
            sim["in_valid"] = 0
            sim.step()
            if sim["out_valid"]:
                received.append((sim["out_data"], sim["out_last"]))
        sim["in_data"] = data
        sim["in_keep"] = keep
        sim["in_last"] = last
        sim["in_valid"] = 1
        sim.step()
        if sim["out_valid"]:
            received.append((sim["out_data"], sim["out_last"]))
        sim["in_valid"] = 0
    for _ in range(8):
        sim.step()
        if sim["out_valid"]:
            received.append((sim["out_data"], sim["out_last"]))
    expected = [(0x11, 0), (0x22, 0), (0x33, 1)]
    return Observation(
        incorrect=received != expected,
        details={"received": received, "expected": expected},
    )


SCENARIOS = {
    "D1": scenario_d1,
    "D2": scenario_d2,
    "D3": scenario_d3,
    "D4": scenario_d4,
    "D5": scenario_d5,
    "D6": scenario_d6,
    "D7": scenario_d7,
    "D8": scenario_d8,
    "D9": scenario_d9,
    "D10": scenario_d10,
    "D11": scenario_d11,
    "D12": scenario_d12,
    "D13": scenario_d13,
    "C1": scenario_c1,
    "C2": scenario_c2,
    "C3": scenario_c3,
    "C4": scenario_c4,
    "S1": scenario_s1,
    "S2": scenario_s2,
    "S3": scenario_s3,
}

#: "Shipped" passing tests used for LossCheck's FP filtering (§4.5.3).
GROUND_TRUTH = {
    "D1": ground_truth_d1,
    "D2": ground_truth_d2,
    "D3": ground_truth_d3,
    "D11": ground_truth_d11,
    "C2": ground_truth_c2,
    "C4": ground_truth_c4,
}
