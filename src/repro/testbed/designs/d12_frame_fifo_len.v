// Bug D12 -- Failure-to-Update -- Frame FIFO length header
// (generic platform).
//
// A store-and-forward frame FIFO that prefixes every outgoing frame
// with a length word (as NIC receive queues do): words are buffered, a
// counter tracks the frame's length, and on commit the length is
// written to a side queue the reader consults before draining.
//
// ROOT CAUSE: the length counter is initialized at reset but never
// cleared when a frame commits (paper section 3.2.5's
// forgotten-reset pattern). The first frame reports the right length;
// every later frame reports the running total of all frames so far.
//
// SYMPTOM: invalid output -- the reader mis-frames everything after
// the first frame (length header wrong).
//
// FIX: zero the counter on commit (frame_fifo_len_fixed).

module frame_fifo_len (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [7:0] in_data,
    input wire in_last,
    output reg hdr_valid,
    output reg [5:0] hdr_len,
    output reg out_valid,
    output reg [7:0] out_data
);
    localparam WR_FRAME = 0;
    localparam WR_COMMIT = 1;

    reg [7:0] mem [0:31];
    reg [5:0] wr_ptr;
    reg [5:0] commit_ptr;
    reg [5:0] rd_ptr;
    reg [5:0] len;

    reg wr_state;

    always @(posedge clk) begin
        if (rst) begin
            wr_ptr <= 0;
            commit_ptr <= 0;
            len <= 0;
            wr_state <= WR_FRAME;
            hdr_valid <= 0;
        end else begin
            hdr_valid <= 0;
            case (wr_state)
                WR_FRAME: if (in_valid) begin
                    mem[wr_ptr[4:0]] <= in_data;
                    wr_ptr <= wr_ptr + 1;
                    len <= len + 1;
                    if (in_last) wr_state <= WR_COMMIT;
                end
                WR_COMMIT: begin
                    commit_ptr <= wr_ptr;
                    hdr_len <= len;
                    hdr_valid <= 1;
                    // BUG: len is not cleared for the next frame.
                    wr_state <= WR_FRAME;
                end
            endcase
        end
    end

    always @(posedge clk) begin
        if (rst) begin
            rd_ptr <= 0;
            out_valid <= 0;
        end else begin
            out_valid <= 0;
            if (rd_ptr != commit_ptr) begin
                out_data <= mem[rd_ptr[4:0]];
                out_valid <= 1;
                rd_ptr <= rd_ptr + 1;
            end
        end
    end
endmodule

module frame_fifo_len_fixed (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [7:0] in_data,
    input wire in_last,
    output reg hdr_valid,
    output reg [5:0] hdr_len,
    output reg out_valid,
    output reg [7:0] out_data
);
    localparam WR_FRAME = 0;
    localparam WR_COMMIT = 1;

    reg [7:0] mem [0:31];
    reg [5:0] wr_ptr;
    reg [5:0] commit_ptr;
    reg [5:0] rd_ptr;
    reg [5:0] len;

    reg wr_state;

    always @(posedge clk) begin
        if (rst) begin
            wr_ptr <= 0;
            commit_ptr <= 0;
            len <= 0;
            wr_state <= WR_FRAME;
            hdr_valid <= 0;
        end else begin
            hdr_valid <= 0;
            case (wr_state)
                WR_FRAME: if (in_valid) begin
                    mem[wr_ptr[4:0]] <= in_data;
                    wr_ptr <= wr_ptr + 1;
                    len <= len + 1;
                    if (in_last) wr_state <= WR_COMMIT;
                end
                WR_COMMIT: begin
                    commit_ptr <= wr_ptr;
                    hdr_len <= len;
                    hdr_valid <= 1;
                    // FIX: each frame's length starts from zero.
                    len <= 0;
                    wr_state <= WR_FRAME;
                end
            endcase
        end
    end

    always @(posedge clk) begin
        if (rst) begin
            rd_ptr <= 0;
            out_valid <= 0;
        end else begin
            out_valid <= 0;
            if (rd_ptr != commit_ptr) begin
                out_data <= mem[rd_ptr[4:0]];
                out_valid <= 1;
                rd_ptr <= rd_ptr + 1;
            end
        end
    end
endmodule
