// Bug C2 -- Producer-Consumer Mismatch -- Optimus hypervisor
// (Intel HARP).
//
// The interrupt/response merge point of the Optimus hypervisor: two
// producer channels (accelerator completions and timer events) each
// deliver tagged messages for the guest, and a single consumer register
// feeds the guest notification queue, draining one message per cycle.
//
// ROOT CAUSE: both producers can present a valid message in the same
// cycle, but the merge consumes only one (an if/else-if priority
// chain), and the losing producer's staging register is overwritten on
// its next message -- the paper's section 3.3.2 bounded-buffer
// mismatch:
//     if (x_valid) out <= x;
//     else if (y_valid) out <= y;
//
// SYMPTOMS: lost messages; the guest, which waits for every completion
// it was promised, stalls forever.
//
// FIX: queue the lower-priority producer while the merge is busy
// (optimus_merge_fixed holds channel B with backpressure).

module optimus_merge (
    input wire clk,
    input wire rst,
    // producer A: accelerator completions
    input wire a_valid,
    input wire [15:0] a_data,
    // producer B: timer events
    input wire b_valid,
    input wire [15:0] b_data,
    output wire b_ready,
    // consumer: guest notification register
    output reg out_valid,
    output reg [15:0] out_data,
    output reg [7:0] delivered
);
    localparam MG_RUN = 0;
    localparam MG_FLUSH = 1;
    localparam SC_A = 0;
    localparam SC_B = 1;

    reg mg_state;
    reg [15:0] a_buf;
    reg a_pend;
    reg [15:0] b_buf;
    reg b_pend;

    reg sc_state;
    reg sc_next;

    // BUG: channel B is never backpressured.
    assign b_ready = 1;

    // Producer staging.
    always @(posedge clk) begin
        if (rst) begin
            a_pend <= 0;
            b_pend <= 0;
        end else begin
            if (a_valid) begin
                a_buf <= a_data;
                a_pend <= 1;
            end else if (a_pend && mg_state == MG_RUN) a_pend <= 0;
            if (b_valid) begin
                // BUG: overwrites a pending timer event that lost
                // arbitration to channel A.
                b_buf <= b_data;
                b_pend <= 1;
            end else if (b_pend && !a_pend && mg_state == MG_RUN) b_pend <= 0;
        end
    end

    // Merge: priority if/else-if -- only one message per cycle.
    always @(posedge clk) begin
        if (rst) begin
            mg_state <= MG_RUN;
            out_valid <= 0;
            delivered <= 0;
        end else begin
            out_valid <= 0;
            case (mg_state)
                MG_RUN: begin
                    if (a_pend) begin
                        out_valid <= 1;
                        out_data <= a_buf;
                        delivered <= delivered + 1;
                    end else if (b_pend) begin
                        out_valid <= 1;
                        out_data <= b_buf;
                        delivered <= delivered + 1;
                    end
                end
                MG_FLUSH: mg_state <= MG_RUN;
            endcase
        end
    end

    // Producer scheduler (two-process FSM; undetectable pattern).
    always @(*) begin
        sc_next = sc_state;
        case (sc_state)
            SC_A: if (b_pend) sc_next = SC_B;
            SC_B: if (a_pend) sc_next = SC_A;
        endcase
    end

    always @(posedge clk) begin
        if (rst) sc_state <= SC_A;
        else sc_state <= sc_next;
    end
endmodule

module optimus_merge_fixed (
    input wire clk,
    input wire rst,
    input wire a_valid,
    input wire [15:0] a_data,
    input wire b_valid,
    input wire [15:0] b_data,
    output wire b_ready,
    output reg out_valid,
    output reg [15:0] out_data,
    output reg [7:0] delivered
);
    localparam MG_RUN = 0;
    localparam MG_FLUSH = 1;
    localparam SC_A = 0;
    localparam SC_B = 1;

    reg mg_state;
    reg [15:0] a_buf;
    reg a_pend;
    reg [15:0] b_buf;
    reg b_pend;

    reg sc_state;
    reg sc_next;

    // FIX: stall producer B while its staging register is occupied.
    assign b_ready = !b_pend;

    always @(posedge clk) begin
        if (rst) begin
            a_pend <= 0;
            b_pend <= 0;
        end else begin
            if (a_valid) begin
                a_buf <= a_data;
                a_pend <= 1;
            end else if (a_pend && mg_state == MG_RUN) a_pend <= 0;
            if (b_valid && !b_pend) begin
                b_buf <= b_data;
                b_pend <= 1;
            end else if (b_pend && !a_pend && mg_state == MG_RUN) b_pend <= 0;
        end
    end

    always @(posedge clk) begin
        if (rst) begin
            mg_state <= MG_RUN;
            out_valid <= 0;
            delivered <= 0;
        end else begin
            out_valid <= 0;
            case (mg_state)
                MG_RUN: begin
                    if (a_pend) begin
                        out_valid <= 1;
                        out_data <= a_buf;
                        delivered <= delivered + 1;
                    end else if (b_pend) begin
                        out_valid <= 1;
                        out_data <= b_buf;
                        delivered <= delivered + 1;
                    end
                end
                MG_FLUSH: mg_state <= MG_RUN;
            endcase
        end
    end

    always @(*) begin
        sc_next = sc_state;
        case (sc_state)
            SC_A: if (b_pend) sc_next = SC_B;
            SC_B: if (a_pend) sc_next = SC_A;
        endcase
    end

    always @(posedge clk) begin
        if (rst) sc_state <= SC_A;
        else sc_state <= sc_next;
    end
endmodule
