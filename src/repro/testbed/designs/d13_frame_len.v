// Bug D13 -- Failure-to-Update -- Frame length measurer
// (generic platform).
//
// A frame-length measurement block (modeled on the axis frame-length
// monitors in verilog-axis): it watches a streaming interface, counts
// the words of each frame, and reports the length when the frame's
// last word passes.
//
// ROOT CAUSE: the counter is only cleared during IDLE gap cycles
// between frames; the first word of a frame does not restart it (the
// forgotten-update pattern of paper section 3.2.5). Under back-to-back
// frames there is no gap cycle, so the counter keeps accumulating and
// every report after the first is a running total. Test traffic with
// idle gaps passes, which is how the bug escaped testing.
//
// SYMPTOM: incorrect output (cumulative lengths under back-to-back
// traffic).
//
// FIX: load the counter with 1 on each frame's first word
// (frame_len_fixed).

module frame_len (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [7:0] in_data,
    input wire in_last,
    output reg len_valid,
    output reg [7:0] len_out,
    output reg [7:0] frames_seen
);
    localparam FL_IDLE = 0;
    localparam FL_FRAME = 1;
    localparam MT_RUN = 0;
    localparam MT_HOLD = 1;

    reg fl_state;
    reg [7:0] count;
    reg mt_state;

    always @(posedge clk) begin
        if (rst) begin
            fl_state <= FL_IDLE;
            count <= 0;
            len_valid <= 0;
            frames_seen <= 0;
        end else begin
            len_valid <= 0;
            // BUG: the counter restarts only when the link goes idle;
            // a back-to-back frame inherits the previous total.
            if (!in_valid && fl_state == FL_IDLE) count <= 0;
            case (fl_state)
                FL_IDLE: if (in_valid) begin
                    count <= count + 1;
                    if (in_last) begin
                        len_valid <= 1;
                        len_out <= count + 1;
                        frames_seen <= frames_seen + 1;
                    end else begin
                        fl_state <= FL_FRAME;
                    end
                end
                FL_FRAME: if (in_valid) begin
                    count <= count + 1;
                    if (in_last) begin
                        len_valid <= 1;
                        len_out <= count + 1;
                        frames_seen <= frames_seen + 1;
                        fl_state <= FL_IDLE;
                    end
                end
            endcase
        end
    end

    // Measurement gate FSM: pause reporting while the consumer reads.
    always @(posedge clk) begin
        if (rst) begin
            mt_state <= MT_RUN;
        end else begin
            case (mt_state)
                MT_RUN: if (len_valid) mt_state <= MT_HOLD;
                MT_HOLD: mt_state <= MT_RUN;
            endcase
        end
    end
endmodule

module frame_len_fixed (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [7:0] in_data,
    input wire in_last,
    output reg len_valid,
    output reg [7:0] len_out,
    output reg [7:0] frames_seen
);
    localparam FL_IDLE = 0;
    localparam FL_FRAME = 1;
    localparam MT_RUN = 0;
    localparam MT_HOLD = 1;

    reg fl_state;
    reg [7:0] count;
    reg mt_state;

    always @(posedge clk) begin
        if (rst) begin
            fl_state <= FL_IDLE;
            count <= 0;
            len_valid <= 0;
            frames_seen <= 0;
        end else begin
            len_valid <= 0;
            case (fl_state)
                FL_IDLE: if (in_valid) begin
                    // FIX: the first word restarts the count, gap or not.
                    count <= 1;
                    if (in_last) begin
                        len_valid <= 1;
                        len_out <= 1;
                        frames_seen <= frames_seen + 1;
                    end else begin
                        fl_state <= FL_FRAME;
                    end
                end
                FL_FRAME: if (in_valid) begin
                    count <= count + 1;
                    if (in_last) begin
                        len_valid <= 1;
                        len_out <= count + 1;
                        frames_seen <= frames_seen + 1;
                        fl_state <= FL_IDLE;
                    end
                end
            endcase
        end
    end

    always @(posedge clk) begin
        if (rst) begin
            mt_state <= MT_RUN;
        end else begin
            case (mt_state)
                MT_RUN: if (len_valid) mt_state <= MT_HOLD;
                MT_HOLD: mt_state <= MT_RUN;
            endcase
        end
    end
endmodule
