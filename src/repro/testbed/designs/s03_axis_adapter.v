// Bug S3 -- Incomplete Implementation -- AXI-Stream width adapter
// (generic platform).
//
// A 16-bit to 8-bit AXI-Stream width adapter (modeled on verilog-axis'
// axis_adapter): each 16-bit input beat carries a tkeep pair saying
// which bytes are meaningful; the adapter serializes the low byte then
// the high byte onto the 8-bit output.
//
// ROOT CAUSE: the adapter always emits both bytes of every beat. The
// final beat of an odd-length frame has tkeep == 2'b01 (only the low
// byte valid), a case the implementation simply does not handle
// (paper section 3.4.3) -- it emits the stale high byte and marks IT
// as the frame's last byte.
//
// SYMPTOM: incorrect output (odd-length frames gain a garbage byte
// and their tlast lands on the wrong byte).
//
// FIX: honour tkeep when deciding whether the high byte exists and
// where tlast falls (axis_adapter_fixed).

module axis_adapter (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [15:0] in_data,
    input wire [1:0] in_keep,
    input wire in_last,
    output wire in_ready,
    output reg out_valid,
    output reg [7:0] out_data,
    output reg out_last
);
    localparam AD_LOW = 0;
    localparam AD_HIGH = 1;
    localparam LD_EMPTY = 0;
    localparam LD_FULL = 1;

    reg ad_state;
    reg ld_state;
    reg [15:0] beat;
    reg beat_last;

    assign in_ready = ld_state == LD_EMPTY;

    // Beat loader FSM.
    always @(posedge clk) begin
        if (rst) begin
            ld_state <= LD_EMPTY;
        end else begin
            case (ld_state)
                LD_EMPTY: if (in_valid) begin
                    beat <= in_data;
                    beat_last <= in_last;
                    ld_state <= LD_FULL;
                end
                LD_FULL: if (ad_state == AD_HIGH) ld_state <= LD_EMPTY;
            endcase
        end
    end

    // Serializer FSM: low byte, then high byte.
    always @(posedge clk) begin
        if (rst) begin
            ad_state <= AD_LOW;
            out_valid <= 0;
        end else begin
            out_valid <= 0;
            out_last <= 0;
            case (ad_state)
                AD_LOW: if (ld_state == LD_FULL) begin
                    out_valid <= 1;
                    out_data <= beat[7:0];
                    ad_state <= AD_HIGH;
                end
                AD_HIGH: begin
                    // BUG: the tkeep == 2'b01 case (odd-length frame) is
                    // not implemented; the stale high byte is emitted
                    // and carries the frame's tlast.
                    out_valid <= 1;
                    out_data <= beat[15:8];
                    out_last <= beat_last;
                    ad_state <= AD_LOW;
                end
            endcase
        end
    end
endmodule

module axis_adapter_fixed (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [15:0] in_data,
    input wire [1:0] in_keep,
    input wire in_last,
    output wire in_ready,
    output reg out_valid,
    output reg [7:0] out_data,
    output reg out_last
);
    localparam AD_LOW = 0;
    localparam AD_HIGH = 1;
    localparam LD_EMPTY = 0;
    localparam LD_FULL = 1;

    reg ad_state;
    reg ld_state;
    reg [15:0] beat;
    reg [1:0] beat_keep;
    reg beat_last;

    assign in_ready = ld_state == LD_EMPTY;

    always @(posedge clk) begin
        if (rst) begin
            ld_state <= LD_EMPTY;
        end else begin
            case (ld_state)
                LD_EMPTY: if (in_valid) begin
                    beat <= in_data;
                    beat_keep <= in_keep;
                    beat_last <= in_last;
                    ld_state <= LD_FULL;
                end
                LD_FULL: begin
                    if (ad_state == AD_HIGH) ld_state <= LD_EMPTY;
                    if (ad_state == AD_LOW && beat_keep == 1) ld_state <= LD_EMPTY;
                end
            endcase
        end
    end

    always @(posedge clk) begin
        if (rst) begin
            ad_state <= AD_LOW;
            out_valid <= 0;
        end else begin
            out_valid <= 0;
            out_last <= 0;
            case (ad_state)
                AD_LOW: if (ld_state == LD_FULL) begin
                    out_valid <= 1;
                    out_data <= beat[7:0];
                    // FIX: a beat whose high byte is not kept ends here;
                    // tlast goes out with the low byte.
                    if (beat_keep == 1) begin
                        out_last <= beat_last;
                        ad_state <= AD_LOW;
                    end else begin
                        ad_state <= AD_HIGH;
                    end
                end
                AD_HIGH: begin
                    out_valid <= 1;
                    out_data <= beat[15:8];
                    out_last <= beat_last;
                    ad_state <= AD_LOW;
                end
            endcase
        end
    end
endmodule
