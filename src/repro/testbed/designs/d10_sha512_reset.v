// Bug D10 -- Failure-to-Update -- SHA512 accelerator (Intel HARP).
//
// The same HARP hashing accelerator as D5 (with the address math
// correct), processing back-to-back hash requests.
//
// ROOT CAUSE: when a new request starts, the block counter is reloaded
// but the digest accumulator is NOT re-initialized (a forgotten update
// on the start path -- paper section 3.2.5). The first request hashes
// correctly; every later request folds its blocks into the previous
// digest, producing garbage.
//
// SYMPTOM: incorrect output for every request after the first.
//
// FIX: re-seed the accumulator on start (sha512_multi_fixed).

module sha512_multi (
    input wire clk,
    input wire rst,
    input wire start,
    input wire [41:0] base_line,
    input wire [3:0] num_blocks,
    output reg rd_req,
    output reg [41:0] rd_line,
    input wire rd_rsp_valid,
    input wire [63:0] rd_rsp_data,
    output reg [63:0] digest,
    output reg done
);
    localparam FT_IDLE = 0;
    localparam FT_REQ = 1;
    localparam FT_WAIT = 2;
    localparam FT_DONE = 3;
    localparam HS_IDLE = 0;
    localparam HS_ROUND = 1;
    localparam HS_FLUSH = 2;

    reg [1:0] ft_state;
    reg [41:0] line_idx;
    reg [3:0] blocks_left;

    reg [1:0] hs_state;
    reg [63:0] acc;
    reg [3:0] rounds;

    always @(posedge clk) begin
        if (rst) begin
            ft_state <= FT_IDLE;
            rd_req <= 0;
        end else begin
            rd_req <= 0;
            case (ft_state)
                FT_IDLE: if (start) begin
                    line_idx <= base_line;
                    blocks_left <= num_blocks;
                    ft_state <= FT_REQ;
                end
                FT_REQ: begin
                    rd_req <= 1;
                    rd_line <= line_idx;
                    ft_state <= FT_WAIT;
                end
                FT_WAIT: if (rd_rsp_valid) begin
                    line_idx <= line_idx + 1;
                    blocks_left <= blocks_left - 1;
                    if (blocks_left == 1) ft_state <= FT_DONE;
                    else ft_state <= FT_REQ;
                end
                FT_DONE: if (start) begin
                    // Accept the next request.
                    // BUG: acc is not re-seeded here (see hash FSM), so
                    // this request reuses the previous digest state.
                    line_idx <= base_line;
                    blocks_left <= num_blocks;
                    ft_state <= FT_REQ;
                end
            endcase
        end
    end

    always @(posedge clk) begin
        if (rst) begin
            hs_state <= HS_IDLE;
            acc <= 64'h6a09e667f3bcc908;
            rounds <= 0;
            done <= 0;
        end else begin
            if (start) done <= 0;
            case (hs_state)
                HS_IDLE: if (rd_rsp_valid) begin
                    acc <= acc + rd_rsp_data;
                    hs_state <= HS_ROUND;
                    rounds <= 0;
                end
                HS_ROUND: begin
                    acc <= {acc[0], acc[63:1]} ^ {acc[7:0], acc[63:8]};
                    rounds <= rounds + 1;
                    if (rounds == 3) begin
                        if (ft_state == FT_DONE) hs_state <= HS_FLUSH;
                        else hs_state <= HS_IDLE;
                    end
                end
                HS_FLUSH: begin
                    digest <= acc;
                    done <= 1;
                    hs_state <= HS_IDLE;
                end
            endcase
        end
    end
endmodule

module sha512_multi_fixed (
    input wire clk,
    input wire rst,
    input wire start,
    input wire [41:0] base_line,
    input wire [3:0] num_blocks,
    output reg rd_req,
    output reg [41:0] rd_line,
    input wire rd_rsp_valid,
    input wire [63:0] rd_rsp_data,
    output reg [63:0] digest,
    output reg done
);
    localparam FT_IDLE = 0;
    localparam FT_REQ = 1;
    localparam FT_WAIT = 2;
    localparam FT_DONE = 3;
    localparam HS_IDLE = 0;
    localparam HS_ROUND = 1;
    localparam HS_FLUSH = 2;

    reg [1:0] ft_state;
    reg [41:0] line_idx;
    reg [3:0] blocks_left;

    reg [1:0] hs_state;
    reg [63:0] acc;
    reg [3:0] rounds;

    always @(posedge clk) begin
        if (rst) begin
            ft_state <= FT_IDLE;
            rd_req <= 0;
        end else begin
            rd_req <= 0;
            case (ft_state)
                FT_IDLE: if (start) begin
                    line_idx <= base_line;
                    blocks_left <= num_blocks;
                    ft_state <= FT_REQ;
                end
                FT_REQ: begin
                    rd_req <= 1;
                    rd_line <= line_idx;
                    ft_state <= FT_WAIT;
                end
                FT_WAIT: if (rd_rsp_valid) begin
                    line_idx <= line_idx + 1;
                    blocks_left <= blocks_left - 1;
                    if (blocks_left == 1) ft_state <= FT_DONE;
                    else ft_state <= FT_REQ;
                end
                FT_DONE: if (start) begin
                    line_idx <= base_line;
                    blocks_left <= num_blocks;
                    ft_state <= FT_REQ;
                end
            endcase
        end
    end

    always @(posedge clk) begin
        if (rst) begin
            hs_state <= HS_IDLE;
            acc <= 64'h6a09e667f3bcc908;
            rounds <= 0;
            done <= 0;
        end else begin
            if (start) begin
                done <= 0;
                // FIX: every request hashes from the initial seed.
                acc <= 64'h6a09e667f3bcc908;
            end
            case (hs_state)
                HS_IDLE: if (rd_rsp_valid) begin
                    acc <= acc + rd_rsp_data;
                    hs_state <= HS_ROUND;
                    rounds <= 0;
                end
                HS_ROUND: begin
                    acc <= {acc[0], acc[63:1]} ^ {acc[7:0], acc[63:8]};
                    rounds <= rounds + 1;
                    if (rounds == 3) begin
                        if (ft_state == FT_DONE) hs_state <= HS_FLUSH;
                        else hs_state <= HS_IDLE;
                    end
                end
                HS_FLUSH: begin
                    digest <= acc;
                    done <= 1;
                    hs_state <= HS_IDLE;
                end
            endcase
        end
    end
endmodule
