// Bug D7 -- Misindexing -- floating-point adder (generic platform).
//
// A sequential IEEE-754 single-precision adder (the "really simple
// fadd" a developer shared with the paper's authors). Operands are
// unpacked into sign/exponent/fraction, the smaller fraction is aligned,
// the fractions are added, and the result is renormalized and packed.
//
// ROOT CAUSE: IEEE-754 defines the fraction as bits [22:0] and the
// exponent as bits [30:23], but the unpack stage extracts the fraction
// as bits [23:0] -- one bit too many (the paper's section 3.2.3
// example). The stray exponent bit corrupts the significand, so sums
// come out wrong whenever the exponent is odd.
//
// SYMPTOM: incorrect output value.
//
// FIX: extract bits [22:0] (fadd_fixed).

module fadd (
    input wire clk,
    input wire rst,
    input wire start,
    input wire [31:0] op_a,
    input wire [31:0] op_b,
    output reg [31:0] result,
    output reg done
);
    localparam FA_IDLE = 0;
    localparam FA_ALIGN = 1;
    localparam FA_ADD = 2;
    localparam FA_NORM = 3;
    localparam FA_PACK = 4;

    reg [2:0] fa_state;
    reg [7:0] exp_a;
    reg [7:0] exp_b;
    reg [26:0] frac_a;
    reg [26:0] frac_b;
    reg [7:0] exp_r;
    reg [27:0] frac_r;

    always @(posedge clk) begin
        if (rst) begin
            fa_state <= FA_IDLE;
            done <= 0;
        end else begin
            case (fa_state)
                FA_IDLE: if (start) begin
                    done <= 0;
                    exp_a <= op_a[30:23];
                    exp_b <= op_b[30:23];
                    // BUG: fraction is [22:0]; [23:0] grabs an exponent bit
                    // and drops the implicit leading one's position.
                    frac_a <= {1'b1, op_a[23:0], 2'b00};
                    frac_b <= {1'b1, op_b[23:0], 2'b00};
                    fa_state <= FA_ALIGN;
                end
                FA_ALIGN: begin
                    if (exp_a > exp_b) begin
                        frac_b <= frac_b >> (exp_a - exp_b);
                        exp_r <= exp_a;
                    end else begin
                        frac_a <= frac_a >> (exp_b - exp_a);
                        exp_r <= exp_b;
                    end
                    fa_state <= FA_ADD;
                end
                FA_ADD: begin
                    frac_r <= {1'b0, frac_a} + {1'b0, frac_b};
                    fa_state <= FA_NORM;
                end
                FA_NORM: begin
                    if (frac_r[27]) begin
                        frac_r <= frac_r >> 1;
                        exp_r <= exp_r + 1;
                    end else begin
                        fa_state <= FA_PACK;
                    end
                    if (frac_r[27]) fa_state <= FA_PACK;
                end
                FA_PACK: begin
                    result <= {1'b0, exp_r, frac_r[24:2]};
                    done <= 1;
                    fa_state <= FA_IDLE;
                end
            endcase
        end
    end
endmodule

module fadd_fixed (
    input wire clk,
    input wire rst,
    input wire start,
    input wire [31:0] op_a,
    input wire [31:0] op_b,
    output reg [31:0] result,
    output reg done
);
    localparam FA_IDLE = 0;
    localparam FA_ALIGN = 1;
    localparam FA_ADD = 2;
    localparam FA_NORM = 3;
    localparam FA_PACK = 4;

    reg [2:0] fa_state;
    reg [7:0] exp_a;
    reg [7:0] exp_b;
    reg [26:0] frac_a;
    reg [26:0] frac_b;
    reg [7:0] exp_r;
    reg [27:0] frac_r;

    always @(posedge clk) begin
        if (rst) begin
            fa_state <= FA_IDLE;
            done <= 0;
        end else begin
            case (fa_state)
                FA_IDLE: if (start) begin
                    done <= 0;
                    exp_a <= op_a[30:23];
                    exp_b <= op_b[30:23];
                    // FIX: the IEEE-754 fraction is bits [22:0].
                    frac_a <= {1'b1, op_a[22:0], 3'b000};
                    frac_b <= {1'b1, op_b[22:0], 3'b000};
                    fa_state <= FA_ALIGN;
                end
                FA_ALIGN: begin
                    if (exp_a > exp_b) begin
                        frac_b <= frac_b >> (exp_a - exp_b);
                        exp_r <= exp_a;
                    end else begin
                        frac_a <= frac_a >> (exp_b - exp_a);
                        exp_r <= exp_b;
                    end
                    fa_state <= FA_ADD;
                end
                FA_ADD: begin
                    frac_r <= {1'b0, frac_a} + {1'b0, frac_b};
                    fa_state <= FA_NORM;
                end
                FA_NORM: begin
                    if (frac_r[27]) begin
                        frac_r <= frac_r >> 1;
                        exp_r <= exp_r + 1;
                    end
                    fa_state <= FA_PACK;
                end
                FA_PACK: begin
                    result <= {1'b0, exp_r, frac_r[25:3]};
                    done <= 1;
                    fa_state <= FA_IDLE;
                end
            endcase
        end
    end
endmodule
