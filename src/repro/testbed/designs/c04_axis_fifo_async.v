// Bug C4 -- Signal Asynchrony -- AXI-Stream FIFO output stage
// (generic platform).
//
// The output skid stage of an AXI-Stream FIFO (modeled on
// verilog-axis' axis_fifo): words popped from the internal queue are
// staged in an output register that presents tvalid/tdata to a
// downstream consumer with tready backpressure.
//
// ROOT CAUSE: the stage register is reloaded from the queue on every
// pop, but the pop logic checks only queue occupancy -- not whether
// the downstream consumer has actually taken the staged word. tvalid
// and the staged tdata fall out of sync with the handshake: when
// tready is low, the staged word is overwritten and is never seen by
// the consumer (data updated erroneously -- paper section 3.3.3).
//
// SYMPTOM: data loss whenever the consumer applies backpressure.
//
// FIX: pop only when the stage is empty or being consumed this cycle
// (axis_fifo_out_fixed).

module axis_fifo_out (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [7:0] in_data,
    output wire in_full,
    input wire tready,
    output reg tvalid,
    output reg [7:0] tdata,
    // Status CSR: the last word actually taken by the consumer.
    output reg [7:0] last_taken
);
    localparam OS_EMPTY = 0;
    localparam OS_HELD = 1;

    wire [7:0] fifo_q;
    wire fifo_empty;
    reg fifo_pop;
    reg pop_inflight;
    reg os_state;

    scfifo #(.LPM_WIDTH(8), .LPM_NUMWORDS(16)) queue (
        .clock(clk),
        .data(in_data),
        .wrreq(in_valid),
        .rdreq(fifo_pop),
        .q(fifo_q),
        .empty(fifo_empty),
        .full(in_full)
    );

    // Pop control.
    always @(posedge clk) begin
        if (rst) begin
            fifo_pop <= 0;
            pop_inflight <= 0;
        end else begin
            // BUG: pops whenever the queue has data, ignoring whether
            // the staged word was consumed (tvalid/tready handshake).
            fifo_pop <= !fifo_empty && !fifo_pop;
            pop_inflight <= fifo_pop;
        end
    end

    // Output stage FSM.
    always @(posedge clk) begin
        if (rst) begin
            os_state <= OS_EMPTY;
            tvalid <= 0;
        end else begin
            case (os_state)
                OS_EMPTY: if (pop_inflight) begin
                    tdata <= fifo_q;
                    tvalid <= 1;
                    os_state <= OS_HELD;
                end
                OS_HELD: begin
                    if (pop_inflight) begin
                        // BUG manifests here: a new word lands while the
                        // previous one is still waiting for tready.
                        tdata <= fifo_q;
                    end
                    if (tready) begin
                        if (!pop_inflight) begin
                            tvalid <= 0;
                            os_state <= OS_EMPTY;
                        end
                    end
                end
            endcase
        end
    end

    always @(posedge clk) begin
        if (tvalid && tready) last_taken <= tdata;
    end
endmodule

module axis_fifo_out_fixed (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [7:0] in_data,
    output wire in_full,
    input wire tready,
    output reg tvalid,
    output reg [7:0] tdata,
    // Status CSR: the last word actually taken by the consumer.
    output reg [7:0] last_taken
);
    localparam OS_EMPTY = 0;
    localparam OS_HELD = 1;

    wire [7:0] fifo_q;
    wire fifo_empty;
    reg fifo_pop;
    reg pop_inflight;
    reg os_state;

    scfifo #(.LPM_WIDTH(8), .LPM_NUMWORDS(16)) queue (
        .clock(clk),
        .data(in_data),
        .wrreq(in_valid),
        .rdreq(fifo_pop),
        .q(fifo_q),
        .empty(fifo_empty),
        .full(in_full)
    );

    // FIX: pop only when the staged word has been (or is being) taken.
    wire stage_free = (os_state == OS_EMPTY) || (tvalid && tready);

    always @(posedge clk) begin
        if (rst) begin
            fifo_pop <= 0;
            pop_inflight <= 0;
        end else begin
            fifo_pop <= !fifo_empty && !fifo_pop && !pop_inflight && stage_free;
            pop_inflight <= fifo_pop;
        end
    end

    always @(posedge clk) begin
        if (rst) begin
            os_state <= OS_EMPTY;
            tvalid <= 0;
        end else begin
            case (os_state)
                OS_EMPTY: if (pop_inflight) begin
                    tdata <= fifo_q;
                    tvalid <= 1;
                    os_state <= OS_HELD;
                end
                OS_HELD: begin
                    if (pop_inflight) begin
                        tdata <= fifo_q;
                    end
                    if (tready) begin
                        if (!pop_inflight) begin
                            tvalid <= 0;
                            os_state <= OS_EMPTY;
                        end
                    end
                end
            endcase
        end
    end

    always @(posedge clk) begin
        if (tvalid && tready) last_taken <= tdata;
    end
endmodule
