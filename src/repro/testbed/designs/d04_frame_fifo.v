// Bug D4 -- Buffer Overflow -- Frame FIFO (generic platform).
//
// A store-and-forward frame FIFO (modeled on verilog-ethernet's
// axis_fifo): words of a frame are written into a ring memory and the
// frame is released to the reader only once its last word has been
// committed, so a partially-received frame is never visible downstream.
//
// ROOT CAUSE: the write path never checks occupancy. A frame longer
// than the 16-entry memory wraps the write pointer (the pointer is
// wider than the address, so its high bit is truncated -- the
// power-of-two overflow of paper section 3.2.1) and the tail of the
// frame overwrites the head before the reader ever sees it.
//
// SYMPTOM: data loss -- the reader receives a corrupted frame whose
// first words have been replaced by its last words.
//
// FIX: detect the overflow and drop oversized frames whole, which is
// what real frame FIFOs do (frame_fifo_fixed raises frame_too_big).

module frame_fifo (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [7:0] in_data,
    input wire in_last,
    input wire out_ready,
    output reg out_valid,
    output reg [7:0] out_data,
    output reg out_last,
    output wire frame_too_big
);
    localparam WR_FRAME = 0;
    localparam WR_COMMIT = 1;

    reg [7:0] mem [0:15];
    reg lastflag [0:15];
    // BUG: 5-bit pointers with no full check; mem[wr_ptr] truncates.
    reg [4:0] wr_ptr;
    reg [4:0] commit_ptr;
    reg [4:0] rd_ptr;

    reg wr_state;

    assign frame_too_big = 0;

    // Write FSM: buffer the incoming frame, commit on its last word.
    always @(posedge clk) begin
        if (rst) begin
            wr_ptr <= 0;
            commit_ptr <= 0;
            wr_state <= WR_FRAME;
        end else begin
            case (wr_state)
                WR_FRAME: if (in_valid) begin
                    mem[wr_ptr] <= in_data;
                    lastflag[wr_ptr] <= in_last;
                    wr_ptr <= wr_ptr + 1;
                    if (in_last) wr_state <= WR_COMMIT;
                end
                WR_COMMIT: begin
                    commit_ptr <= wr_ptr;
                    wr_state <= WR_FRAME;
                end
            endcase
        end
    end

    // Read side: stream committed words out under out_ready.
    always @(posedge clk) begin
        if (rst) begin
            rd_ptr <= 0;
            out_valid <= 0;
        end else begin
            if (out_valid && out_ready) out_valid <= 0;
            if (!(out_valid && !out_ready) && rd_ptr != commit_ptr) begin
                out_data <= mem[rd_ptr[3:0]];
                out_last <= lastflag[rd_ptr[3:0]];
                out_valid <= 1;
                rd_ptr <= rd_ptr + 1;
            end
        end
    end
endmodule

module frame_fifo_fixed (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [7:0] in_data,
    input wire in_last,
    input wire out_ready,
    output reg out_valid,
    output reg [7:0] out_data,
    output reg out_last,
    output reg frame_too_big
);
    localparam WR_FRAME = 0;
    localparam WR_COMMIT = 1;
    localparam WR_DROP = 2;

    reg [7:0] mem [0:15];
    reg lastflag [0:15];
    reg [4:0] wr_ptr;
    reg [4:0] commit_ptr;
    reg [4:0] rd_ptr;

    reg [1:0] wr_state;
    wire [4:0] used = wr_ptr - rd_ptr;

    // Write FSM: buffer the frame; if it cannot fit, drop it whole and
    // flag the oversize condition instead of corrupting the ring.
    always @(posedge clk) begin
        if (rst) begin
            wr_ptr <= 0;
            commit_ptr <= 0;
            wr_state <= WR_FRAME;
            frame_too_big <= 0;
        end else begin
            case (wr_state)
                WR_FRAME: if (in_valid) begin
                    if (used == 16) begin
                        // FIX: abandon the frame instead of wrapping.
                        wr_ptr <= commit_ptr;
                        frame_too_big <= 1;
                        if (!in_last) wr_state <= WR_DROP;
                    end else begin
                        mem[wr_ptr[3:0]] <= in_data;
                        lastflag[wr_ptr[3:0]] <= in_last;
                        wr_ptr <= wr_ptr + 1;
                        if (in_last) wr_state <= WR_COMMIT;
                    end
                end
                WR_COMMIT: begin
                    commit_ptr <= wr_ptr;
                    wr_state <= WR_FRAME;
                end
                WR_DROP: if (in_valid && in_last) wr_state <= WR_FRAME;
            endcase
        end
    end

    always @(posedge clk) begin
        if (rst) begin
            rd_ptr <= 0;
            out_valid <= 0;
        end else begin
            if (out_valid && out_ready) out_valid <= 0;
            if (!(out_valid && !out_ready) && rd_ptr != commit_ptr) begin
                out_data <= mem[rd_ptr[3:0]];
                out_last <= lastflag[rd_ptr[3:0]];
                out_valid <= 1;
                rd_ptr <= rd_ptr + 1;
            end
        end
    end
endmodule
