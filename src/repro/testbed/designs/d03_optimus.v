// Bug D3 -- Buffer Overflow -- Optimus hypervisor (Intel HARP).
//
// A slice of the Optimus shared-memory FPGA hypervisor: the hypervisor
// multiplexes MMIO requests from a guest onto an accelerator and queues
// the accelerator's responses in a per-guest reply ring until the guest
// polls them out.
//
// ROOT CAUSE: the reply ring holds 8 entries but the write pointer is a
// free-running 4-bit counter used directly as the index, and nothing
// checks occupancy (the rsp_ready backpressure output is tied high).
// When more than 8 replies are outstanding (a guest that polls slowly),
// the index's high bit is truncated (power-of-two buffer, paper section
// 3.2.1) and new replies overwrite replies the guest has not read yet.
//
// SYMPTOMS: lost replies; the guest, which matches reply tags, waits
// forever for the overwritten ones (infinite stall).
//
// FIX: drive rsp_ready from the ring occupancy so the accelerator
// stalls while the ring is full (optimus_mmio_fixed).
//
// The reply-forwarding engine uses a two-process (next-state variable)
// FSM, which the paper notes is a pattern FSM-detection heuristics miss
// (a deliberate false-negative case for FSM Monitor).

module optimus_mmio (
    input wire clk,
    input wire rst,
    // guest request interface
    input wire req_valid,
    input wire [15:0] req_data,
    // accelerator response interface (one response per request)
    input wire rsp_valid,
    input wire [15:0] rsp_data,
    output wire rsp_ready,
    // guest poll interface
    input wire poll,
    output reg [15:0] poll_data,
    output reg poll_valid,
    output reg busy
);
    localparam DISP_IDLE = 0;
    localparam DISP_FORWARD = 1;
    localparam DISP_WAIT = 2;
    localparam FWD_IDLE = 0;
    localparam FWD_PUSH = 1;

    reg [15:0] ring [0:7];
    // BUG: 4-bit free-running pointer indexes an 8-entry ring with no
    // occupancy check; bit 3 is silently truncated on overflow.
    reg [3:0] wr_ptr;
    reg [3:0] rd_ptr;

    // BUG: backpressure is never asserted.
    assign rsp_ready = 1;

    reg [1:0] disp_state;
    reg [15:0] req_reg;

    reg fwd_state;
    reg fwd_next;
    reg [15:0] rsp_reg;
    reg rsp_pending;

    // Dispatcher FSM: accept a guest request, forward to accelerator.
    always @(posedge clk) begin
        if (rst) begin
            disp_state <= DISP_IDLE;
            busy <= 0;
        end else begin
            case (disp_state)
                DISP_IDLE: if (req_valid) begin
                    req_reg <= req_data;
                    busy <= 1;
                    disp_state <= DISP_FORWARD;
                end
                DISP_FORWARD: disp_state <= DISP_WAIT;
                DISP_WAIT: begin
                    busy <= 0;
                    disp_state <= DISP_IDLE;
                end
            endcase
        end
    end

    // Reply-forwarding engine: two-process FSM (state from a next-state
    // variable -- invisible to pattern-based FSM detection).
    always @(*) begin
        fwd_next = fwd_state;
        case (fwd_state)
            FWD_IDLE: if (rsp_valid) fwd_next = FWD_PUSH;
            FWD_PUSH: fwd_next = FWD_IDLE;
        endcase
    end

    always @(posedge clk) begin
        if (rst) begin
            fwd_state <= FWD_IDLE;
            rsp_pending <= 0;
            wr_ptr <= 0;
        end else begin
            fwd_state <= fwd_next;
            if (rsp_valid) begin
                rsp_reg <= rsp_data;
            end
            rsp_pending <= rsp_valid;
            if (rsp_pending) begin
                ring[wr_ptr] <= rsp_reg;
                wr_ptr <= wr_ptr + 1;
            end
        end
    end

    // Guest poll side: pop one queued reply per poll.
    always @(posedge clk) begin
        if (rst) begin
            rd_ptr <= 0;
            poll_valid <= 0;
        end else begin
            poll_valid <= 0;
            if (poll && rd_ptr != wr_ptr) begin
                poll_data <= ring[rd_ptr[2:0]];
                rd_ptr <= rd_ptr + 1;
                poll_valid <= 1;
            end
        end
    end
endmodule

module optimus_mmio_fixed (
    input wire clk,
    input wire rst,
    input wire req_valid,
    input wire [15:0] req_data,
    input wire rsp_valid,
    input wire [15:0] rsp_data,
    output wire rsp_ready,
    input wire poll,
    output reg [15:0] poll_data,
    output reg poll_valid,
    output reg busy
);
    localparam DISP_IDLE = 0;
    localparam DISP_FORWARD = 1;
    localparam DISP_WAIT = 2;
    localparam FWD_IDLE = 0;
    localparam FWD_PUSH = 1;

    reg [15:0] ring [0:7];
    reg [3:0] wr_ptr;
    reg [3:0] rd_ptr;

    // FIX: track occupancy and backpressure the accelerator while the
    // ring cannot absorb another reply.
    wire [3:0] level = wr_ptr - rd_ptr;
    assign rsp_ready = level < 7;

    reg [1:0] disp_state;
    reg [15:0] req_reg;

    reg fwd_state;
    reg fwd_next;
    reg [15:0] rsp_reg;
    reg rsp_pending;

    always @(posedge clk) begin
        if (rst) begin
            disp_state <= DISP_IDLE;
            busy <= 0;
        end else begin
            case (disp_state)
                DISP_IDLE: if (req_valid) begin
                    req_reg <= req_data;
                    busy <= 1;
                    disp_state <= DISP_FORWARD;
                end
                DISP_FORWARD: disp_state <= DISP_WAIT;
                DISP_WAIT: begin
                    busy <= 0;
                    disp_state <= DISP_IDLE;
                end
            endcase
        end
    end

    always @(*) begin
        fwd_next = fwd_state;
        case (fwd_state)
            FWD_IDLE: if (rsp_valid) fwd_next = FWD_PUSH;
            FWD_PUSH: fwd_next = FWD_IDLE;
        endcase
    end

    always @(posedge clk) begin
        if (rst) begin
            fwd_state <= FWD_IDLE;
            rsp_pending <= 0;
            wr_ptr <= 0;
        end else begin
            fwd_state <= fwd_next;
            if (rsp_valid) begin
                rsp_reg <= rsp_data;
            end
            rsp_pending <= rsp_valid;
            if (rsp_pending) begin
                ring[wr_ptr[2:0]] <= rsp_reg;
                wr_ptr <= wr_ptr + 1;
            end
        end
    end

    always @(posedge clk) begin
        if (rst) begin
            rd_ptr <= 0;
            poll_valid <= 0;
        end else begin
            poll_valid <= 0;
            if (poll && rd_ptr != wr_ptr) begin
                poll_data <= ring[rd_ptr[2:0]];
                rd_ptr <= rd_ptr + 1;
                poll_valid <= 1;
            end
        end
    end
endmodule
