// Bug D9 -- Endianness Mismatch -- SDSPI controller (generic platform).
//
// The response path of an SD-card SPI controller (modeled on ZipCPU's
// sdspi): the card answers a command with a 16-bit value delivered as
// two bytes, most-significant byte first (SD responses are big endian).
// The controller assembles the bytes into a register and hands the
// register to a checksum module that expects a big-endian layout, then
// publishes the value and the check result.
//
// ROOT CAUSE: the assembly stage stores the FIRST (most significant)
// byte into resp[7:0] and the second into resp[15:8] -- a little-endian
// layout -- before passing resp to the big-endian checksum module
// (paper section 3.2.4). The checksum rejects every well-formed
// response, and the published value is byte-swapped.
//
// SYMPTOM: a wrong value following assignment (response bytes swapped,
// checksum failure).
//
// FIX: store the first byte in the high half (sdspi_response_fixed).
//
// The byte de-serializer is a detectable FSM; the checksum lives in a
// child module, exercising hierarchy flattening.

module be_checksum (
    input wire [15:0] value,
    input wire [7:0] expected,
    output wire ok
);
    // Big-endian fold: the first byte on the wire (the high byte)
    // is weighted double, so the fold is order-sensitive.
    assign ok = (((value[15:8] << 1) + value[7:0]) & 8'hFF) == expected;
endmodule

module sdspi_response (
    input wire clk,
    input wire rst,
    input wire byte_valid,
    input wire [7:0] byte_in,
    input wire [7:0] crc_in,
    output reg [15:0] resp,
    output reg resp_valid,
    output wire crc_ok
);
    localparam RS_FIRST = 0;
    localparam RS_SECOND = 1;
    localparam RS_CRC = 2;

    reg [1:0] rs_state;

    be_checksum checker (
        .value(resp),
        .expected(crc_in),
        .ok(crc_ok)
    );

    always @(posedge clk) begin
        if (rst) begin
            rs_state <= RS_FIRST;
            resp_valid <= 0;
        end else begin
            resp_valid <= 0;
            case (rs_state)
                RS_FIRST: if (byte_valid) begin
                    // BUG: the first byte on the wire is the MSB; storing
                    // it in the low half builds a little-endian value.
                    resp[7:0] <= byte_in;
                    rs_state <= RS_SECOND;
                end
                RS_SECOND: if (byte_valid) begin
                    resp[15:8] <= byte_in;
                    rs_state <= RS_CRC;
                end
                RS_CRC: if (byte_valid) begin
                    resp_valid <= 1;
                    rs_state <= RS_FIRST;
                end
            endcase
        end
    end
endmodule

module sdspi_response_fixed (
    input wire clk,
    input wire rst,
    input wire byte_valid,
    input wire [7:0] byte_in,
    input wire [7:0] crc_in,
    output reg [15:0] resp,
    output reg resp_valid,
    output wire crc_ok
);
    localparam RS_FIRST = 0;
    localparam RS_SECOND = 1;
    localparam RS_CRC = 2;

    reg [1:0] rs_state;

    be_checksum checker (
        .value(resp),
        .expected(crc_in),
        .ok(crc_ok)
    );

    always @(posedge clk) begin
        if (rst) begin
            rs_state <= RS_FIRST;
            resp_valid <= 0;
        end else begin
            resp_valid <= 0;
            case (rs_state)
                RS_FIRST: if (byte_valid) begin
                    // FIX: first byte on the wire is the most significant.
                    resp[15:8] <= byte_in;
                    rs_state <= RS_SECOND;
                end
                RS_SECOND: if (byte_valid) begin
                    resp[7:0] <= byte_in;
                    rs_state <= RS_CRC;
                end
                RS_CRC: if (byte_valid) begin
                    resp_valid <= 1;
                    rs_state <= RS_FIRST;
                end
            endcase
        end
    end
endmodule
