// Bug C1 -- Deadlock -- SDSPI controller (generic platform).
//
// The command/response handshake of an SD-card SPI controller: the
// command FSM sends a command and then waits for the response unit to
// raise resp_ready; the response unit, in turn, waits for the command
// FSM to acknowledge with cmd_accept before it latches a response.
//
// ROOT CAUSE: a circular control dependency (paper section 3.3.1).
// cmd_accept is only set once resp_ready is high, and resp_ready is
// only set once cmd_accept is high. Both reset to 0, so neither
// condition can ever fire -- the paper's
//     if (a) b <= 1; if (b) a <= 1; if (a) out <= result;
// pattern embedded in a real controller.
//
// SYMPTOM: infinite stall (the command FSM never leaves its WAIT
// state, done never asserts).
//
// FIX: the response unit latches the response as soon as the card
// answers, without waiting for the acknowledgment
// (sdspi_cmd_fixed).
//
// The response unit is a two-process FSM (next-state variable), one of
// the paper's FSM-detection false-negative patterns.

module sdspi_cmd (
    input wire clk,
    input wire rst,
    input wire start,
    input wire [7:0] cmd,
    input wire card_valid,
    input wire [7:0] card_data,
    output reg [7:0] response,
    output reg done,
    output reg cmd_sent
);
    localparam CM_IDLE = 0;
    localparam CM_SEND = 1;
    localparam CM_WAIT = 2;
    localparam CM_DONE = 3;
    localparam RU_IDLE = 0;
    localparam RU_LATCHED = 1;

    reg [1:0] cm_state;
    reg cmd_accept;
    reg resp_ready;
    reg [7:0] resp_buf;

    reg ru_state;
    reg ru_next;

    // Command FSM.
    always @(posedge clk) begin
        if (rst) begin
            cm_state <= CM_IDLE;
            done <= 0;
            cmd_sent <= 0;
            cmd_accept <= 0;
        end else begin
            case (cm_state)
                CM_IDLE: if (start) begin
                    cmd_sent <= 1;
                    cm_state <= CM_SEND;
                end
                CM_SEND: cm_state <= CM_WAIT;
                CM_WAIT: begin
                    // BUG: waits for resp_ready, which itself waits for
                    // cmd_accept -- a circular dependency; neither side
                    // ever makes progress.
                    if (resp_ready) cmd_accept <= 1;
                    if (cmd_accept) begin
                        response <= resp_buf;
                        cm_state <= CM_DONE;
                    end
                end
                CM_DONE: done <= 1;
            endcase
        end
    end

    // Response unit (two-process FSM).
    always @(*) begin
        ru_next = ru_state;
        case (ru_state)
            RU_IDLE: if (card_valid && cmd_accept) ru_next = RU_LATCHED;
            RU_LATCHED: ru_next = RU_IDLE;
        endcase
    end

    always @(posedge clk) begin
        if (rst) begin
            ru_state <= RU_IDLE;
            resp_ready <= 0;
        end else begin
            ru_state <= ru_next;
            // BUG (other half of the cycle): the response is only
            // latched after cmd_accept, but cmd_accept waits for
            // resp_ready below.
            if (card_valid && cmd_accept) begin
                resp_buf <= card_data;
                resp_ready <= 1;
            end
        end
    end
endmodule

module sdspi_cmd_fixed (
    input wire clk,
    input wire rst,
    input wire start,
    input wire [7:0] cmd,
    input wire card_valid,
    input wire [7:0] card_data,
    output reg [7:0] response,
    output reg done,
    output reg cmd_sent
);
    localparam CM_IDLE = 0;
    localparam CM_SEND = 1;
    localparam CM_WAIT = 2;
    localparam CM_DONE = 3;
    localparam RU_IDLE = 0;
    localparam RU_LATCHED = 1;

    reg [1:0] cm_state;
    reg cmd_accept;
    reg resp_ready;
    reg [7:0] resp_buf;

    reg ru_state;
    reg ru_next;

    always @(posedge clk) begin
        if (rst) begin
            cm_state <= CM_IDLE;
            done <= 0;
            cmd_sent <= 0;
            cmd_accept <= 0;
        end else begin
            case (cm_state)
                CM_IDLE: if (start) begin
                    cmd_sent <= 1;
                    cm_state <= CM_SEND;
                end
                CM_SEND: cm_state <= CM_WAIT;
                CM_WAIT: begin
                    if (resp_ready) cmd_accept <= 1;
                    if (cmd_accept) begin
                        response <= resp_buf;
                        cm_state <= CM_DONE;
                    end
                end
                CM_DONE: done <= 1;
            endcase
        end
    end

    always @(*) begin
        ru_next = ru_state;
        case (ru_state)
            RU_IDLE: if (card_valid) ru_next = RU_LATCHED;
            RU_LATCHED: ru_next = RU_IDLE;
        endcase
    end

    always @(posedge clk) begin
        if (rst) begin
            ru_state <= RU_IDLE;
            resp_ready <= 0;
        end else begin
            ru_state <= ru_next;
            // FIX: latch the card's answer unconditionally; the command
            // FSM acknowledges afterwards, breaking the cycle.
            if (card_valid) begin
                resp_buf <= card_data;
                resp_ready <= 1;
            end
        end
    end
endmodule
