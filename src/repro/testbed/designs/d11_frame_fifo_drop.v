// Bug D11 -- Failure-to-Update -- Frame FIFO with bad-frame drop
// (generic platform).
//
// A store-and-forward frame FIFO that can abort a frame mid-stream: if
// the source flags the current frame bad (in_abort, e.g. a failed
// checksum), the FIFO INTENTIONALLY discards the rest of the frame and
// rewinds the write pointer -- a legitimate data drop.
//
// ROOT CAUSE: the dropping flag is set when a frame is aborted but is
// only cleared when a frame COMMITS; the clear on the abort-path's own
// last word is missing (a forgotten update, paper section 3.2.5). After
// one aborted frame, the flag stays set and every following good frame
// is silently discarded too.
//
// SYMPTOM: data loss (good frames vanish after any aborted frame).
//
// This is the paper's LossCheck false-negative case (section 4.5.4):
// the unintentional loss happens at the same register where data is
// dropped intentionally, so ground-truth filtering silences it.
//
// FIX: clear the dropping flag at the end of the aborted frame
// (frame_fifo_drop_fixed).

module frame_fifo_drop (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [7:0] in_data,
    input wire in_last,
    input wire in_abort,
    input wire out_ready,
    output reg out_valid,
    output reg [7:0] out_data,
    output reg out_last
);
    localparam WR_FRAME = 0;
    localparam WR_COMMIT = 1;
    localparam DP_PASS = 0;
    localparam DP_DROP = 1;

    reg [7:0] mem [0:31];
    reg lastflag [0:31];
    reg [5:0] wr_ptr;
    reg [5:0] commit_ptr;
    reg [5:0] frame_start;
    reg [5:0] rd_ptr;

    reg wr_state;
    reg dropping;
    reg [7:0] word_stage;
    reg stage_valid;
    reg stage_last;

    // Stage each incoming word; dropped words are overwritten here (the
    // intentional loss site).
    always @(posedge clk) begin
        if (rst) begin
            stage_valid <= 0;
        end else begin
            if (in_valid) begin
                word_stage <= in_data;
                stage_last <= in_last;
            end
            stage_valid <= in_valid && !dropping && !in_abort;
        end
    end

    // Drop control: a 2-state machine over the `dropping` flag.
    always @(posedge clk) begin
        if (rst) begin
            dropping <= DP_PASS;
        end else begin
            if (in_valid && in_abort && dropping == DP_PASS) begin
                dropping <= DP_DROP;
            end
            // BUG: the flag is never cleared when the aborted frame's
            // last word passes; only a commit clears it, and aborted
            // frames never commit.
            if (wr_state == WR_COMMIT) dropping <= DP_PASS;
        end
    end

    // Write FSM: buffer staged words, commit whole frames.
    always @(posedge clk) begin
        if (rst) begin
            wr_ptr <= 0;
            commit_ptr <= 0;
            frame_start <= 0;
            wr_state <= WR_FRAME;
        end else begin
            case (wr_state)
                WR_FRAME: if (stage_valid) begin
                    mem[wr_ptr[4:0]] <= word_stage;
                    lastflag[wr_ptr[4:0]] <= stage_last;
                    wr_ptr <= wr_ptr + 1;
                    if (stage_last) wr_state <= WR_COMMIT;
                end
                WR_COMMIT: begin
                    commit_ptr <= wr_ptr;
                    frame_start <= wr_ptr;
                    wr_state <= WR_FRAME;
                end
            endcase
            // An aborted frame rewinds its partially-buffered words.
            if (in_valid && in_abort) wr_ptr <= frame_start;
        end
    end

    // Read side: stream committed words out.
    always @(posedge clk) begin
        if (rst) begin
            rd_ptr <= 0;
            out_valid <= 0;
        end else begin
            if (out_valid && out_ready) out_valid <= 0;
            if (!(out_valid && !out_ready) && rd_ptr != commit_ptr) begin
                out_data <= mem[rd_ptr[4:0]];
                out_last <= lastflag[rd_ptr[4:0]];
                out_valid <= 1;
                rd_ptr <= rd_ptr + 1;
            end
        end
    end
endmodule

module frame_fifo_drop_fixed (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [7:0] in_data,
    input wire in_last,
    input wire in_abort,
    input wire out_ready,
    output reg out_valid,
    output reg [7:0] out_data,
    output reg out_last
);
    localparam WR_FRAME = 0;
    localparam WR_COMMIT = 1;
    localparam DP_PASS = 0;
    localparam DP_DROP = 1;

    reg [7:0] mem [0:31];
    reg lastflag [0:31];
    reg [5:0] wr_ptr;
    reg [5:0] commit_ptr;
    reg [5:0] frame_start;
    reg [5:0] rd_ptr;

    reg wr_state;
    reg dropping;
    reg [7:0] word_stage;
    reg stage_valid;
    reg stage_last;

    always @(posedge clk) begin
        if (rst) begin
            stage_valid <= 0;
        end else begin
            if (in_valid) begin
                word_stage <= in_data;
                stage_last <= in_last;
            end
            stage_valid <= in_valid && !dropping && !in_abort;
        end
    end

    always @(posedge clk) begin
        if (rst) begin
            dropping <= DP_PASS;
        end else begin
            if (in_valid && in_abort && dropping == DP_PASS) begin
                dropping <= DP_DROP;
            end
            // FIX: the aborted frame ends with its last word; resume
            // passing from the next frame on.
            if (in_valid && in_last && dropping == DP_DROP) begin
                dropping <= DP_PASS;
            end
            if (wr_state == WR_COMMIT) dropping <= DP_PASS;
        end
    end

    always @(posedge clk) begin
        if (rst) begin
            wr_ptr <= 0;
            commit_ptr <= 0;
            frame_start <= 0;
            wr_state <= WR_FRAME;
        end else begin
            case (wr_state)
                WR_FRAME: if (stage_valid) begin
                    mem[wr_ptr[4:0]] <= word_stage;
                    lastflag[wr_ptr[4:0]] <= stage_last;
                    wr_ptr <= wr_ptr + 1;
                    if (stage_last) wr_state <= WR_COMMIT;
                end
                WR_COMMIT: begin
                    commit_ptr <= wr_ptr;
                    frame_start <= wr_ptr;
                    wr_state <= WR_FRAME;
                end
            endcase
            // An aborted frame rewinds its partially-buffered words.
            if (in_valid && in_abort) wr_ptr <= frame_start;
        end
    end

    always @(posedge clk) begin
        if (rst) begin
            rd_ptr <= 0;
            out_valid <= 0;
        end else begin
            if (out_valid && out_ready) out_valid <= 0;
            if (!(out_valid && !out_ready) && rd_ptr != commit_ptr) begin
                out_data <= mem[rd_ptr[4:0]];
                out_last <= lastflag[rd_ptr[4:0]];
                out_valid <= 1;
                rd_ptr <= rd_ptr + 1;
            end
        end
    end
endmodule
